"""Shared helpers for the benchmark suite.

Each benchmark regenerates one table or figure of the paper's evaluation
(section 7).  Absolute times differ from the paper's (different hardware,
different substrate -- a Python VM instead of native x86 + Klee); the
*shapes* are what the benchmarks check and report: who finds the bug, who
times out, and how times scale.

Budgets are scaled: the paper caps baselines at 1 hour; we cap at
``KC_BUDGET_SECONDS`` (default 8 s, override via ESD_BENCH_KC_SECONDS) --
roughly the same ratio to ESD's synthesis times.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

from repro.api import ReproSession
from repro.baselines import kc_find_path
from repro.core import ESDConfig, SynthesisResult, extract_goal
from repro.obs import counters_delta, unified_registry
from repro.search import SearchBudget
from repro.workloads.base import Workload

KC_BUDGET_SECONDS = float(os.environ.get("ESD_BENCH_KC_SECONDS", "8"))
ESD_BUDGET_SECONDS = float(os.environ.get("ESD_BENCH_ESD_SECONDS", "120"))


# ---------------------------------------------------------------------------
# Unified metrics (the one sanctioned way to read pipeline counters).
#
# Benchmarks measure an interval by snapshotting a registry before and
# after the measured region and subtracting with ``interval_counters``.
# Never sample raw stats fields and reset them between phases: with two
# readers (a bench loop plus the report emitter) the reset runs twice and
# the second interval undercounts.  Snapshots never mutate the underlying
# counters, so any number of readers agree.
# ---------------------------------------------------------------------------


def pipeline_registry(*, solver=None, solver_cache=None, statics=None,
                      executor=None, prune=None):
    """A unified ``esd_*`` registry over the handles a benchmark owns."""
    return unified_registry(solver=solver, solver_cache=solver_cache,
                            statics=statics, executor=executor, prune=prune)


def interval_counters(after: dict, before: dict) -> dict:
    """Per-counter delta between two ``esd-metrics-v1`` snapshots."""
    return counters_delta(after, before)


def esd_budget() -> SearchBudget:
    return SearchBudget(
        max_seconds=ESD_BUDGET_SECONDS,
        max_instructions=50_000_000,
        max_states=1_000_000,
    )


def kc_budget() -> SearchBudget:
    return SearchBudget(
        max_seconds=KC_BUDGET_SECONDS,
        max_instructions=50_000_000,
        max_states=1_000_000,
    )


def session_for(workload: Workload) -> ReproSession:
    """A warm-capable session for benchmarks that exercise the service model
    (bench_session); the paper-figure benches use run_esd instead."""
    return ReproSession(workload.compile())


def run_esd(workload: Workload) -> SynthesisResult:
    # A fresh session per run: the paper benchmarks (Table 1, Figures 2-4)
    # time the *cold* pipeline including the static phase, so no static
    # artifacts may leak between benchmark files.  Amortization is measured
    # explicitly in bench_session.py.
    report = workload.make_report()
    return session_for(workload).synthesize(
        report, ESDConfig(budget=esd_budget())
    )


def run_kc(workload: Workload, strategy: str):
    module = workload.compile()
    report = workload.make_report()
    goal = extract_goal(module, report)
    return kc_find_path(
        module, goal.matches, strategy=strategy, budget=kc_budget()
    )


@dataclass(slots=True)
class Row:
    name: str
    esd_seconds: Optional[float] = None
    kc_dfs_seconds: Optional[float] = None
    kc_rp_seconds: Optional[float] = None

    @staticmethod
    def fmt(value: Optional[float]) -> str:
        if value is None:
            return f">{KC_BUDGET_SECONDS:.0f} (timeout)"
        return f"{value:.2f}s"


_collected: dict[str, list[str]] = {}


def report_line(section: str, line: str) -> None:
    """Accumulate human-readable result lines, printed at session end (and
    visible with pytest -s)."""
    _collected.setdefault(section, []).append(line)
    print(line)


def collected_report() -> str:
    parts = []
    for section, lines in _collected.items():
        parts.append(f"## {section}")
        parts.extend(lines)
        parts.append("")
    return "\n".join(parts)
