"""Figure 3: synthesizing a bug-bound path for BPF programs of growing
branch count, ESD vs KC.

Paper's setup: two threads, two locks, every branch (directly or indirectly)
input-dependent, one deadlock per program; branch count swept from 2^4 to
2^11.  Paper's result: ESD stays under ~2 minutes across the sweep (roughly
increasing with size); KC-RandPath finds a path "within one hour only for
the two simplest benchmark-generated programs", KC-DFS for none.

Shape checks: ESD succeeds at every size; time grows from the smallest to
the largest size; KC-RandPath fails beyond the small end of the sweep.
"""

import pytest

from repro.bpf import BPFParams, generate
from repro.core import ESDConfig, esd_synthesize, extract_goal
from repro.baselines import kc_find_path
from repro.playback import play_back

from _support import esd_budget, kc_budget, report_line

_SECTION = "Figure 3: BPF sweep, synthesis time vs number of branches"

BRANCH_COUNTS = [2**k for k in range(4, 12)]  # 16 .. 2048

_esd_times: dict[int, float] = {}


def _program(branches: int):
    params = BPFParams(
        num_inputs=max(8, branches // 16),
        num_branches=branches,
        num_input_branches=branches,
        num_threads=2,
        num_locks=2,
        seed=7,
    )
    return generate(params)


@pytest.mark.parametrize("branches", BRANCH_COUNTS)
def test_fig3_esd_series(benchmark, branches):
    program = _program(branches)
    workload = program.workload
    module = workload.compile()
    report = workload.make_report()
    holder = {}

    def synthesize():
        holder["result"] = esd_synthesize(
            module, report, ESDConfig(budget=esd_budget())
        )
        return holder["result"]

    result = benchmark.pedantic(synthesize, rounds=1, iterations=1)
    assert result.found, f"BPF {branches} branches: {result.reason}"
    playback = play_back(module, result.execution_file, mode="strict")
    assert playback.bug_reproduced
    _esd_times[branches] = result.total_seconds
    report_line(
        _SECTION,
        f"branches={branches:5d} ({program.kloc:5.2f} KLOC): "
        f"ESD {result.total_seconds:7.2f}s "
        f"[{result.instructions} instrs explored]",
    )


@pytest.mark.parametrize("branches", [BRANCH_COUNTS[0], BRANCH_COUNTS[-1]])
def test_fig3_kc_randpath_endpoints(branches):
    """KC-RandPath: may solve the smallest program, must not solve the
    largest at the scaled budget (the paper's fading bars)."""
    program = _program(branches)
    workload = program.workload
    module = workload.compile()
    goal = extract_goal(module, workload.make_report())
    kc = kc_find_path(module, goal.matches, strategy="random-path",
                      budget=kc_budget())
    status = f"{kc.outcome.stats.seconds:.2f}s" if kc.found else "timeout"
    report_line(_SECTION, f"branches={branches:5d}: KC-RandPath {status}")
    if branches == BRANCH_COUNTS[-1]:
        assert not kc.found, "KC-RandPath should time out on the largest program"


def test_fig3_times_grow_with_size():
    if len(_esd_times) < 2:
        pytest.skip("series not populated (run the whole file)")
    smallest = _esd_times[min(_esd_times)]
    largest = _esd_times[max(_esd_times)]
    assert largest > smallest, (
        f"expected growth across the sweep: {smallest:.3f}s .. {largest:.3f}s"
    )
