"""Figure 2: time to find a path to the bug, ESD vs the two KC variants.

Paper's claim: on ls1-ls4 (the injected null dereferences) and the eight
real bugs, ESD is one to several orders of magnitude faster than KC; "bars
that fade at the top indicate KC did not find a path by the end of the
1-hour experiment" -- KC found paths only for the ls variants.

Shape checks here: ESD succeeds on every workload within its budget; KC
(both strategies) times out on the real-bug set at a budget where ESD
succeeds; where both finish, ESD is faster.
"""

import pytest

from repro.workloads import FIGURE2

from _support import KC_BUDGET_SECONDS, report_line, run_esd, run_kc

_SECTION = "Figure 2: time to find a path (ESD vs KC-DFS vs KC-RandPath)"

# The subset the paper's KC could solve inside its cap.
_KC_FEASIBLE = {"ls1", "ls2", "ls3", "ls4"}

# (esd_seconds, best_kc_seconds_or_None) per workload, for the aggregate
# shape assertions.
_rows: dict[str, tuple[float, float | None]] = {}


@pytest.mark.parametrize("workload", FIGURE2, ids=[w.name for w in FIGURE2])
def test_figure2_series(benchmark, workload):
    esd_result = None

    def run_all():
        nonlocal esd_result
        esd_result = run_esd(workload)
        return esd_result

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    assert esd_result.found, f"{workload.name}: ESD failed ({esd_result.reason})"
    esd_seconds = esd_result.total_seconds

    dfs = run_kc(workload, "dfs")
    rp = run_kc(workload, "random-path")

    def fmt(kc):
        if kc.found:
            return f"{kc.outcome.stats.seconds:7.2f}s"
        return f"  >{KC_BUDGET_SECONDS:.0f}s *"

    report_line(
        _SECTION,
        f"{workload.name:10s} ESD {esd_seconds:7.2f}s | KC-DFS {fmt(dfs)} | "
        f"KC-RandPath {fmt(rp)}",
    )

    # Per-workload: only record; the figure's claims are aggregate shapes
    # (see test_figure2_aggregate_shape).  At sub-second scales a lucky DFS
    # can win an individual race (e.g. a bug on DFS's first path), which is
    # noise the paper's 100-KLOC subjects did not exhibit; EXPERIMENTS.md
    # discusses the deviation.
    finished = [k.outcome.stats.seconds for k in (dfs, rp) if k.found]
    _rows[workload.name] = (esd_seconds, min(finished) if finished else None)


def test_figure2_aggregate_shape():
    if len(_rows) < len(FIGURE2):
        pytest.skip("series not populated (run the whole file)")
    # (a) ESD solved every workload (individual tests assert this too).
    assert len(_rows) == len(FIGURE2)
    # (b) KC timed out on at least a few workloads ESD solved -- the paper's
    # fading bars.
    timeouts = [name for name, (_, kc) in _rows.items() if kc is None]
    assert len(timeouts) >= 2, f"expected KC timeouts, got: {_rows}"
    # (c) Median advantage where KC finished: at least an order of magnitude
    # ("one to several orders of magnitude faster").
    ratios = sorted(
        kc / max(esd, 1e-3) for esd, kc in _rows.values() if kc is not None
    )
    if ratios:
        median = ratios[len(ratios) // 2]
        assert median >= 5.0, f"median ESD advantage only {median:.1f}x: {_rows}"
    report_line(
        _SECTION,
        f"aggregate: KC timed out on {len(timeouts)}/{len(_rows)} workloads "
        f"({', '.join(sorted(timeouts))}); median advantage where KC "
        f"finished: {ratios[len(ratios) // 2]:.0f}x" if ratios else "aggregate",
    )
