"""Section 7.1's playback claim: "We perceived no overhead during playback"
-- deterministic replay should cost about the same as a plain concrete run.

We time strict playback of a synthesized deadlock execution and compare it
with a plain concrete execution of the same program (which does not
deadlock), checking playback stays within a small factor.
"""

import pytest

from repro.core import ESDConfig, esd_synthesize
from repro.playback import play_back
from repro.symbex import ConcreteEnv, Executor, RecordedInputs
from repro.workloads import get

from _support import esd_budget, report_line

_SECTION = "Section 7.1: playback overhead"


@pytest.fixture(scope="module")
def synthesized_hawknl():
    workload = get("hawknl")
    module = workload.compile()
    result = esd_synthesize(
        module, workload.make_report(), ESDConfig(budget=esd_budget())
    )
    assert result.found
    return workload, module, result.execution_file


def test_strict_playback_speed(benchmark, synthesized_hawknl):
    workload, module, execution = synthesized_hawknl

    def replay():
        return play_back(module, execution, mode="strict")

    result = benchmark(replay)
    assert result.bug_reproduced
    report_line(
        _SECTION,
        f"hawknl strict playback: {result.steps} instructions per replay, "
        f"deterministic, bug reproduced",
    )


def test_happens_before_playback_speed(benchmark, synthesized_hawknl):
    workload, module, execution = synthesized_hawknl

    def replay():
        return play_back(module, execution, mode="happens-before")

    result = benchmark(replay)
    assert result.bug_reproduced


def test_native_run_baseline(benchmark, synthesized_hawknl):
    workload, module, _ = synthesized_hawknl

    def native():
        executor = Executor(module, env=ConcreteEnv(workload.trigger_inputs))
        return executor.run_to_completion(executor.initial_state())

    state = benchmark(native)
    assert state.terminated
