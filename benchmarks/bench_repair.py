"""Repair benchmark: localization accuracy + end-to-end repair wall-clock.

Runs the automated repair pipeline over the seeded-bug corpus -- workloads
whose ground-truth faulty statements are known -- and reports, per workload:

* **localization rank**: where the ground-truth statement lands in the
  Ochiai ranking (the acceptance bar is top 3);
* **repair outcome**: whether a validated patch was synthesized, with the
  template that produced it and the end-to-end wall-clock split into
  synthesis (failing + passing executions), localization, and patch
  search/validation.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_repair.py [--quick] [--json OUT]

``--quick`` runs the three fast workloads (tac, listing1, paste); the full
corpus adds mkdir, mkfifo, and minidb (the SQLite-#1672 lock-order fix).
Exit status is 0 when every workload localizes its ground truth in the top
3 *and* produces a validated patch.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import ESDConfig, esd_synthesize  # noqa: E402
from repro.repair import (  # noqa: E402
    RepairConfig,
    localize,
    repair,
    synthesize_passing_executions,
)
from repro.search import SearchBudget  # noqa: E402
from repro.workloads import get  # noqa: E402

RANK_TARGET = 3

# (workload, ground-truth faulty statements as (function, line) keys).
# Multiple keys when the fix site spans a statement window (listing1's
# unlock/relock pair) or the fault has two defensible anchors.
CORPUS = [
    ("tac", [("main", 29)]),            # unbounded backward scan
    ("listing1", [("critical_section", 11), ("critical_section", 12)]),
    ("paste", [("main", 72)]),          # invalid free of the static fallback
    ("mkdir", [("main", 67)]),          # NULL deref on the error path
    ("mkfifo", [("main", 54)]),         # NULL deref on the error path
    ("minidb", [("rl_enter", 34)]),     # lock-order bug (SQLite #1672)
]
QUICK = {"tac", "listing1", "paste"}


def bench_workload(name: str, truth: list[tuple[str, int]],
                   budget_seconds: float) -> dict:
    workload = get(name)
    module = workload.compile()
    report = workload.make_report()
    esd = ESDConfig(budget=SearchBudget(max_seconds=budget_seconds))

    started = time.perf_counter()
    synthesis = esd_synthesize(module, report, esd)
    if not synthesis.found:
        return {"workload": name, "error": f"synthesis: {synthesis.reason}"}
    passing = synthesize_passing_executions(module, count=4)
    synth_seconds = time.perf_counter() - started

    loc_started = time.perf_counter()
    ranking = localize(module, [synthesis.execution_file], passing)
    loc_seconds = time.perf_counter() - loc_started
    rank = ranking.best_rank(truth)

    repair_started = time.perf_counter()
    result = repair(
        module, report, config=RepairConfig(esd=esd),
        failing=synthesis.execution_file, passing=passing,
    )
    repair_seconds = time.perf_counter() - repair_started

    return {
        "workload": name,
        "ground_truth": [f"{fn}:{line}" for fn, line in truth],
        "localization_rank": rank,
        "rank_ok": rank is not None and rank <= RANK_TARGET,
        "repaired": result.found,
        "template": result.patch.candidate.kind if result.found else None,
        "patch": result.patch.description if result.found else None,
        "candidates_tried": result.candidates_tried,
        "identical_replays": (
            result.patch.validation.identical_replays if result.found else 0
        ),
        "passing_executions": len(passing),
        "seconds": {
            "synthesis": round(synth_seconds, 3),
            "localization": round(loc_seconds, 3),
            "repair": round(repair_seconds, 3),
            "total": round(synth_seconds + loc_seconds + repair_seconds, 3),
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="fast subset of the corpus (tac, listing1, paste)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write machine-readable results to PATH")
    parser.add_argument("--budget", type=float, default=120.0,
                        help="per-ESD-run wall-clock budget (default: 120s)")
    args = parser.parse_args(argv)

    corpus = [(n, t) for n, t in CORPUS if not args.quick or n in QUICK]
    results = []
    for name, truth in corpus:
        print(f"bench_repair: {name} ...", flush=True)
        row = bench_workload(name, truth, args.budget)
        results.append(row)
        if "error" in row:
            print(f"bench_repair:   ERROR {row['error']}")
            continue
        print(f"bench_repair:   ground truth {row['ground_truth']} "
              f"ranked #{row['localization_rank']} "
              f"({'ok' if row['rank_ok'] else 'MISSED top ' + str(RANK_TARGET)})")
        print(f"bench_repair:   "
              + (f"patched via {row['template']} "
                 f"({row['candidates_tried']} candidate(s), "
                 f"{row['identical_replays']}/{row['passing_executions']} "
                 f"byte-identical replays)"
                 if row["repaired"] else "NO validated patch"))
        seconds = row["seconds"]
        print(f"bench_repair:   wall: synth {seconds['synthesis']}s, "
              f"localize {seconds['localization']}s, "
              f"repair {seconds['repair']}s "
              f"(total {seconds['total']}s)")

    ok = all(
        "error" not in row and row["rank_ok"] and row["repaired"]
        for row in results
    )
    repaired = sum(1 for r in results if r.get("repaired"))
    ranked = sum(1 for r in results if r.get("rank_ok"))
    print(f"bench_repair: {repaired}/{len(results)} repaired, "
          f"{ranked}/{len(results)} ground truths in top {RANK_TARGET} "
          f"-> {'PASS' if ok else 'FAIL'}")

    if args.json:
        payload = {
            "corpus": [name for name, _ in corpus],
            "rank_target": RANK_TARGET,
            "ok": ok,
            "results": results,
        }
        Path(args.json).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"bench_repair: wrote {args.json}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
