"""Distributed exploration benchmark: serial vs. sharded wall-clock.

Measures end-to-end synthesis wall time for the serial engine against the
:class:`~repro.distrib.ParallelExplorer` pool at 2 and 4 workers on two
workloads where the path search dominates:

* ``ghttpd-hard`` -- the ghttpd log overflow behind a header-parsing
  distance plateau: a large, near-uniform-priority frontier that banded
  sharding sweeps concurrently (crash synthesis).
* ``hawknl-bfs``  -- the HawkNL nl_close/nl_shutdown lock-order inversion
  searched with the KC breadth-first baseline strategy: a wide schedule
  tree (deadlock synthesis).  The ESD-guided search cuts this workload to
  well under a second, so the BFS baseline stands in for programs whose
  guided frontier is genuinely wide.

Every parallel run is checked against the serial run's synthesized
artifact: same bug, same inputs/schedule fingerprint (modulo first-win
nondeterminism on the deadlock workload, where any matching schedule is a
valid reproduction -- there the artifact is validated by playback instead).

Speedup depends on physical cores: on a single-core container the pool
degrades gracefully to ~1x (quantum overhead only); the ≥1.5x wall-clock
target at 4 workers is expected on hosts with >= 4 cores.  The exit status
reflects *correctness* (all runs found the bug, artifacts validated);
``--require-speedup X`` additionally gates on the measured 4-worker
speedup for use on suitably provisioned machines.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_distrib.py [--quick] [--json OUT]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import ESDConfig, esd_synthesize  # noqa: E402
from repro.distrib import ParallelExplorer, parallel_supported  # noqa: E402
from repro.obs import counters_delta, unified_registry  # noqa: E402
from repro.playback import play_back  # noqa: E402
from repro.solver import Solver  # noqa: E402
from repro.workloads import get  # noqa: E402
from repro.workloads.ghttpd import hard_workload  # noqa: E402

SPEEDUP_TARGET = 1.5


def _config(strategy: str, max_seconds: float) -> ESDConfig:
    config = ESDConfig(strategy=strategy)
    config.budget.max_seconds = max_seconds
    return config


def bench_workload(name, workload, strategy, max_seconds, worker_counts,
                   exact_artifact):
    """Serial run + one pool run per worker count; returns the record."""
    module = workload.compile()
    report = workload.make_report()

    # Explicit solvers so each run's query counters are read through the
    # unified registry (snapshot deltas; the pool merges worker solver
    # deltas into the master solver, so its counters cover the whole run).
    serial_solver = Solver()
    serial_registry = unified_registry(solver=serial_solver)
    serial_before = serial_registry.snapshot()
    started = time.perf_counter()
    serial = esd_synthesize(module, report, _config(strategy, max_seconds),
                            solver=serial_solver)
    serial_wall = time.perf_counter() - started
    serial_counters = counters_delta(serial_registry.snapshot(),
                                     serial_before)
    record = {
        "workload": name,
        "strategy": strategy,
        "serial": {
            "wall_seconds": serial_wall,
            "found": serial.found,
            "instructions": serial.instructions,
            "states": serial.states_explored,
            "solver_queries": serial_counters.get(
                "esd_solver_queries_total", 0),
            "metrics": serial_registry.snapshot(
                meta={"tool": "bench_distrib", "run": "serial"}),
        },
        "parallel": {},
        "ok": serial.found,
    }
    for workers in worker_counts:
        pool_solver = Solver()
        pool_registry = unified_registry(solver=pool_solver)
        pool_before = pool_registry.snapshot()
        pool = ParallelExplorer(
            module, report, _config(strategy, max_seconds), workers=workers,
            solver=pool_solver,
        )
        started = time.perf_counter()
        result = pool.run()
        wall = time.perf_counter() - started
        pool_counters = counters_delta(pool_registry.snapshot(), pool_before)
        valid = result.found
        if valid:
            if exact_artifact:
                valid = (result.execution_file.fingerprint()
                         == serial.execution_file.fingerprint())
            else:
                # Deadlock first-win may land on a different (equally valid)
                # schedule: validate by deterministic playback instead.
                valid = play_back(
                    module, result.execution_file
                ).bug_reproduced
        record["parallel"][str(workers)] = {
            "wall_seconds": wall,
            "found": result.found,
            "instructions": result.instructions,
            "states": result.states_explored,
            "steals": pool.steals,
            "speedup": serial_wall / wall if wall > 0 else None,
            "artifact_valid": valid,
            "solver_queries": pool_counters.get(
                "esd_solver_queries_total", 0),
            "metrics": pool_registry.snapshot(
                meta={"tool": "bench_distrib", "run": f"workers-{workers}"}),
        }
        record["ok"] = record["ok"] and valid
    return record


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller plateau + shorter budgets (CI smoke)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write machine-readable results to PATH")
    parser.add_argument("--require-speedup", type=float, default=None,
                        metavar="X",
                        help="also fail unless some workload reaches X "
                             "speedup at the highest worker count")
    args = parser.parse_args(argv)

    if not parallel_supported():
        print("bench_distrib: fork unavailable; nothing to measure")
        return 0

    worker_counts = (2, 4)
    max_seconds = 60.0 if args.quick else 300.0
    plateau = 6 if args.quick else 8
    entries = [
        ("ghttpd-hard", hard_workload(plateau), "esd", True),
        ("hawknl-bfs", get("hawknl"), "bfs", False),
    ]

    records = []
    for name, workload, strategy, exact in entries:
        record = bench_workload(name, workload, strategy, max_seconds,
                                worker_counts, exact)
        records.append(record)
        serial = record["serial"]
        print(f"{name} [{strategy}]: serial {serial['wall_seconds']:.2f}s "
              f"({serial['instructions']} instrs, {serial['states']} states)")
        for workers, run in record["parallel"].items():
            print(f"  {workers} workers: {run['wall_seconds']:.2f}s "
                  f"(speedup {run['speedup']:.2f}x, {run['steals']} steals, "
                  f"artifact {'ok' if run['artifact_valid'] else 'MISMATCH'})")

    best = max(
        run["speedup"]
        for record in records
        for run in record["parallel"].values()
        if run["speedup"] is not None
    )
    top = str(worker_counts[-1])
    best_at_top = max(
        record["parallel"][top]["speedup"] for record in records
    )
    cores = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") \
        else os.cpu_count()
    print(f"best speedup {best:.2f}x (best at {top} workers: "
          f"{best_at_top:.2f}x) on {cores} core(s)")

    ok = all(record["ok"] for record in records)
    if args.require_speedup is not None:
        ok = ok and best_at_top >= args.require_speedup
    if args.json:
        Path(args.json).write_text(json.dumps({
            "benchmark": "distrib",
            "quick": args.quick,
            "cores": cores,
            "speedup_target": SPEEDUP_TARGET,
            "best_speedup": best,
            "best_speedup_at_max_workers": best_at_top,
            "workloads": records,
            "ok": ok,
        }, indent=2))
    print("OK" if ok else "FAILED")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
