"""Static-pruning benchmark: abstract interpretation + lockset narrowing.

Measures what the whole-module static analyses buy the dynamic phase, per
seeded workload, by running the identical synthesis twice:

* **pruning off** -- the seed pipeline: every feasibility probe (static
  phase and search phase) goes to the solver; schedule policies fork at
  every unlock site and every suspect access.
* **pruning on**  -- ``ESDConfig(use_static_pruning=True)``: the abstract
  interpreter's facts answer provably-decided queries with zero solver
  work (pinned-constant probes in the intermediate-goal derivation,
  one-sided branches, in-bounds accesses, nonzero divisors; counted in
  ``SolverStats.static_answers``), and the lockset analysis gates the
  deadlock policy's unlock forks and the race policy's preemption sites.

Workloads are measured under the mechanism that applies to them:

* ``IDENTITY_WORKLOADS`` exercise the abstract-interpretation path plus
  the goal-directed reachability layer (function summaries -> may-reach
  closure -> backward necessary preconditions).  The headline metrics are
  **solver queries avoided**, **states dropped at INF distance** (the
  searcher never expands a state whose block cannot reach the goal), and
  **feasibility probes refuted by necessary preconditions** (zero solver
  work).  The correctness gate is strict: the synthesized execution
  artifact must be *byte-identical* between the two runs, because the
  static answers are provably the answers the solver would have given --
  pruning may only change how the answer is computed, never the answer.
* ``SCHEDULE_WORKLOADS`` exercise lockset narrowing.  Suppressing forks
  changes which valid interleaving the search reaches first, so the
  artifacts legitimately differ; the metric is **states explored**, and
  the gate is that both runs still reproduce the bug.

Each run gets a fresh solver with the cross-query cache disabled, so the
query counts measure the pipeline, not cache luck.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_static.py [--quick] [--json OUT]

Exit status is 0 when every run reproduces its bug, every
identity-workload artifact pair is byte-identical, at least one identity
workload shows a measured reduction in solver queries, the goal-directed
layer shows activity (a state dropped at INF distance or a probe refuted
by a necessary precondition), and the aggregate pruning-on/off query
ratio across identity workloads stays below ``REACH_RATIO_GATE``.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import ESDConfig, esd_synthesize  # noqa: E402
from repro.obs import counters_delta, unified_registry  # noqa: E402
from repro.search import SearchBudget  # noqa: E402
from repro.solver import Solver  # noqa: E402
from repro.workloads import get  # noqa: E402

# Abstract interpretation: queries avoided, artifacts byte-identical.
QUICK_IDENTITY = ("tac", "mkdir", "paste")
FULL_IDENTITY = ("tac", "mkdir", "mkfifo", "paste", "listing1", "minidb")
# Lockset narrowing: states avoided, both runs must reproduce the bug.
QUICK_SCHEDULE = ("hawknl",)
FULL_SCHEDULE = ("hawknl",)

# Pruning-on runs must spend at most this fraction of the pruning-off
# solver queries, summed across the identity workloads.  The measured
# ratio sits around 0.85; the gate leaves headroom for search jitter
# while still failing if the reachability layer stops paying for itself.
REACH_RATIO_GATE = 0.97


def _config(pruning: bool) -> ESDConfig:
    return ESDConfig(
        budget=SearchBudget(
            max_seconds=120.0,
            max_instructions=20_000_000,
            max_states=500_000,
        ),
        use_static_pruning=pruning,
    )


def run_one(name: str, pruning: bool) -> dict:
    workload = get(name)
    module = workload.compile()
    report = workload.make_report()
    # Cache-free solver: measured queries are real solver work, and the
    # pruning-off run cannot borrow answers computed by the pruning-on run.
    solver = Solver(structural_keys=False, subset_reasoning=False)
    # Counters via unified-registry snapshots (never raw field reads): the
    # prune-stats object only exists after the run, so it gets its own
    # single post-run snapshot.
    registry = unified_registry(solver=solver)
    before = registry.snapshot()
    result = esd_synthesize(module, report, _config(pruning), solver=solver)
    delta = counters_delta(registry.snapshot(), before)
    artifact = (
        result.execution_file.canonical_bytes()
        if result.execution_file is not None else None
    )
    prune = result.static_prune
    wp = (unified_registry(prune=prune).snapshot()["metrics"]
          if prune is not None else {})

    def wp_counter(name: str):
        return wp.get(name, {}).get("value", 0)

    return {
        "found": result.found,
        "reason": result.reason,
        "artifact_sha256": (
            hashlib.sha256(artifact).hexdigest() if artifact is not None else None
        ),
        "solver_queries": delta.get("esd_solver_queries_total", 0),
        "static_answers": delta.get("esd_solver_static_answers_total", 0),
        "wp_refuted": delta.get("esd_solver_wp_refuted_total", 0),
        "states_pruned": result.states_pruned,
        "wp_checks": wp_counter("esd_wp_checks_total"),
        "wp_branch_prunes": wp_counter("esd_wp_branch_prunes_total"),
        "wp_state_kills": wp_counter("esd_wp_state_kills_total"),
        "wp_probes_avoided": wp_counter("esd_wp_probes_avoided_total"),
        "states_explored": result.states_explored,
        "instructions": result.instructions,
        "search_seconds": round(result.search_seconds, 6),
        "static_seconds": round(result.static_seconds, 6),
    }


def bench_workload(name: str, mechanism: str) -> dict:
    off = run_one(name, pruning=False)
    on = run_one(name, pruning=True)
    identical = (off["artifact_sha256"] is not None
                 and off["artifact_sha256"] == on["artifact_sha256"])
    row = {
        "workload": name,
        "mechanism": mechanism,
        "both_found": off["found"] and on["found"],
        "artifact_identical": identical,
        "artifact_off": off["artifact_sha256"],
        "artifact_on": on["artifact_sha256"],
        "queries_off": off["solver_queries"],
        "queries_on": on["solver_queries"],
        "queries_avoided": off["solver_queries"] - on["solver_queries"],
        "static_answers": on["static_answers"],
        # Goal-directed layer (pruning-on side): searcher drops at INF
        # distance, and necessary-precondition refutations at fork points.
        "states_pruned": on["states_pruned"],
        "wp_refuted": on["wp_refuted"],
        "wp_checks": on["wp_checks"],
        "wp_branch_prunes": on["wp_branch_prunes"],
        "wp_state_kills": on["wp_state_kills"],
        "wp_probes_avoided": on["wp_probes_avoided"],
        "states_off": off["states_explored"],
        "states_on": on["states_explored"],
        "states_delta": off["states_explored"] - on["states_explored"],
        "instructions_off": off["instructions"],
        "instructions_on": on["instructions"],
        "seconds_off": off["search_seconds"],
        "seconds_on": on["search_seconds"],
    }
    for side, record in (("off", off), ("on", on)):
        if not record["found"]:
            row[f"reason_{side}"] = record["reason"]
    return row


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="representative subset (CI smoke)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the result record as JSON")
    args = parser.parse_args(argv)

    identity = QUICK_IDENTITY if args.quick else FULL_IDENTITY
    schedule = QUICK_SCHEDULE if args.quick else FULL_SCHEDULE
    record: dict = {"quick": args.quick, "workloads": []}

    print(f"{'workload':10s} {'mech':8s} {'queries off->on':>16s} "
          f"{'states off->on':>16s} {'static':>6s} {'inf':>4s} {'wp':>4s}"
          f"  artifact")
    for name, mechanism in (
        [(n, "absint") for n in identity] + [(n, "schedule") for n in schedule]
    ):
        row = bench_workload(name, mechanism)
        record["workloads"].append(row)
        marker = "identical" if row["artifact_identical"] else "differs"
        print(f"{name:10s} {mechanism:8s} "
              f"{row['queries_off']:6d} -> {row['queries_on']:<6d} "
              f"{row['states_off']:6d} -> {row['states_on']:<6d} "
              f"{row['static_answers']:6d} {row['states_pruned']:4d} "
              f"{row['wp_refuted']:4d}  {marker}")

    rows = record["workloads"]
    absint_rows = [r for r in rows if r["mechanism"] == "absint"]
    schedule_rows = [r for r in rows if r["mechanism"] == "schedule"]
    record["all_found"] = all(r["both_found"] for r in rows)
    record["absint_identical"] = all(r["artifact_identical"] for r in absint_rows)
    record["absint_queries_avoided"] = sum(r["queries_avoided"] for r in absint_rows)
    record["schedule_states_avoided"] = sum(r["states_delta"] for r in schedule_rows)
    # Reachability-layer aggregates and the ratio gate.
    record["reach_states_pruned"] = sum(r["states_pruned"] for r in absint_rows)
    record["reach_wp_refuted"] = sum(r["wp_refuted"] for r in absint_rows)
    record["reach_probes_avoided"] = sum(
        r["wp_probes_avoided"] for r in absint_rows
    )
    queries_off = sum(r["queries_off"] for r in absint_rows)
    queries_on = sum(r["queries_on"] for r in absint_rows)
    record["reach_query_ratio"] = (
        round(queries_on / queries_off, 4) if queries_off else 1.0
    )
    record["reach_ratio_gate"] = REACH_RATIO_GATE
    record["passed"] = (
        record["all_found"]
        and record["absint_identical"]
        and any(r["queries_avoided"] > 0 for r in absint_rows)
        and (record["reach_states_pruned"] > 0
             or record["reach_wp_refuted"] > 0)
        and record["reach_query_ratio"] <= REACH_RATIO_GATE
    )

    if args.json:
        Path(args.json).write_text(json.dumps(record, indent=2) + "\n")
        print(f"wrote {args.json}")

    status = "PASS" if record["passed"] else "FAIL"
    print(f"{status}: {record['absint_queries_avoided']} solver queries avoided "
          f"(artifacts byte-identical: {record['absint_identical']}); "
          f"reachability layer: {record['reach_states_pruned']} state(s) "
          f"dropped at INF distance, {record['reach_wp_refuted']} probe(s) "
          f"refuted by necessary preconditions, on/off query ratio "
          f"{record['reach_query_ratio']} (gate {REACH_RATIO_GATE}); "
          f"{record['schedule_states_avoided']} states avoided by lockset "
          f"narrowing across {len(schedule_rows)} concurrency workload(s)")
    return 0 if record["passed"] else 1


if __name__ == "__main__":
    sys.exit(main())
