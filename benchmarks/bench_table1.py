"""Table 1: ESD applied to real bugs.

Paper's claim: starting from nothing but a coredump, ESD synthesizes a
bug-bound execution for each of the eight real bugs in seconds-to-minutes
(7 s ghttpd ... 150 s SQLite), "while other tools cannot find a path at all
in our experiments capped at 1 hour".

This benchmark times the full pipeline per workload -- coredump analysis,
static phase, guided search, constraint solving, execution-file emission --
and verifies the synthesized execution actually reproduces the bug under
deterministic playback.
"""

import pytest

from repro.playback import play_back
from repro.workloads import TABLE1

from _support import report_line, run_esd


@pytest.mark.parametrize("workload", TABLE1, ids=[w.name for w in TABLE1])
def test_table1_row(benchmark, workload):
    result_holder = {}

    def synthesize():
        result_holder["result"] = run_esd(workload)
        return result_holder["result"]

    result = benchmark.pedantic(synthesize, rounds=1, iterations=1)
    assert result.found, f"{workload.name}: synthesis failed ({result.reason})"

    module = workload.compile()
    playback = play_back(module, result.execution_file, mode="strict")
    assert playback.bug_reproduced, f"{workload.name}: playback mismatch"

    manifestation = "hang" if workload.bug_type == "deadlock" else "crash"
    paper = (
        f"{workload.paper_seconds:.0f}s" if workload.paper_seconds else "n/a"
    )
    report_line(
        "Table 1: ESD applied to real bugs",
        f"{workload.name:10s} {manifestation:6s} synthesized in "
        f"{result.total_seconds:8.2f}s (paper: {paper:>6s}) "
        f"[{result.instructions} instrs explored, playback ok]",
    )
