"""Job-service throughput benchmark: jobs/minute vs. sequential cold runs.

Simulates the service usage model the ROADMAP targets -- a stream of bug
reports arriving for the same program -- two ways:

* **sequential cold**: one fresh :class:`~repro.api.ReproSession` per
  report, the way a script without the service would handle a queue
  (static analysis and solver caches rebuilt every time);
* **service**: every report submitted as a job to one
  :class:`~repro.service.ReproService` with N scheduler workers, so all
  jobs share a single program context (one static pass, one structural
  counterexample cache).

Reported: wall-clock, jobs/minute, speedup, and the shared-statics
counter (``distance_builds`` must be 1 for the service run, N for the
cold baseline).  On a single-core container the speedup is dominated by
the static/solver amortization rather than parallelism; multicore hosts
add scheduler concurrency on top.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_service.py [--quick] [--json OUT]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import ReproSession  # noqa: E402
from repro.api.jobs import FOUND, JobSpec  # noqa: E402
from repro.core import ESDConfig  # noqa: E402
from repro.service import ReproService  # noqa: E402
from repro.workloads import get  # noqa: E402


def _config(max_seconds: float) -> ESDConfig:
    config = ESDConfig()
    config.budget.max_seconds = max_seconds
    return config


def bench(workload_name: str, jobs: int, workers: int,
          max_seconds: float) -> dict:
    workload = get(workload_name)
    reports = []
    for i in range(jobs):
        report = workload.make_report()
        report.description = f"bench job {i}"  # distinct spec digests
        reports.append(report)

    # Sequential cold baseline: a fresh session (fresh statics, fresh
    # solver cache) per report.
    cold_started = time.perf_counter()
    cold_found = 0
    cold_builds = 0
    for report in reports:
        session = ReproSession(workload.compile(), workers=1)
        result = session.synthesize(report, _config(max_seconds))
        cold_found += int(result.found)
        cold_builds += session.static_stats.distance_builds
    cold_wall = time.perf_counter() - cold_started

    # The service: all jobs queued at once on one shared program context.
    service = ReproService(max_workers=workers,
                           default_config=_config(max_seconds))
    try:
        service_started = time.perf_counter()
        records = [
            service.submit(JobSpec(workload=workload_name, report=report))
            for report in reports
        ]
        finals = [service.wait(r.job_id, timeout=max_seconds * jobs)
                  for r in records]
        service_wall = time.perf_counter() - service_started
        service_found = sum(1 for r in finals if r.state == FOUND)
        program = service.programs()[f"workload:{workload_name}"]
        service_builds = program.static_stats.distance_builds
    finally:
        service.shutdown(graceful=False, timeout=10.0)

    return {
        "workload": workload_name,
        "jobs": jobs,
        "service_workers": workers,
        "cold": {
            "wall_seconds": cold_wall,
            "jobs_per_minute": 60.0 * jobs / cold_wall if cold_wall else None,
            "found": cold_found,
            "distance_builds": cold_builds,
        },
        "service": {
            "wall_seconds": service_wall,
            "jobs_per_minute": (60.0 * jobs / service_wall
                                if service_wall else None),
            "found": service_found,
            "distance_builds": service_builds,
        },
        "speedup": cold_wall / service_wall if service_wall else None,
        "ok": (cold_found == jobs and service_found == jobs
               and service_builds == 1),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller job count for CI")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write machine-readable results to PATH")
    parser.add_argument("--workload", default="ls1",
                        help="heavier static phase shows the amortization "
                             "(default: ls1)")
    parser.add_argument("--jobs", type=int, default=None)
    parser.add_argument("--workers", type=int, default=4)
    args = parser.parse_args(argv)

    jobs = args.jobs if args.jobs is not None else (4 if args.quick else 8)
    max_seconds = 120.0
    result = bench(args.workload, jobs, args.workers, max_seconds)

    cold, svc = result["cold"], result["service"]
    print(f"bench_service: {jobs} '{args.workload}' jobs, "
          f"{args.workers} service workers")
    print(f"bench_service: sequential cold  {cold['wall_seconds']:7.2f}s "
          f"({cold['jobs_per_minute']:.1f} jobs/min, "
          f"{cold['distance_builds']} static builds)")
    print(f"bench_service: job service      {svc['wall_seconds']:7.2f}s "
          f"({svc['jobs_per_minute']:.1f} jobs/min, "
          f"{svc['distance_builds']} static build)")
    print(f"bench_service: speedup {result['speedup']:.2f}x "
          f"({'ok' if result['ok'] else 'FAILED'})")

    if args.json:
        Path(args.json).write_text(json.dumps({
            "benchmark": "service-throughput",
            "quick": args.quick,
            "result": result,
        }, indent=2))
        print(f"bench_service: wrote {args.json}")
    return 0 if result["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
