"""Solver acceleration benchmark: structural cache + model-reuse fast path.

Measures queries/sec on repeated-query workloads -- the access pattern the
ESD pipeline actually produces (the same branch conditions re-checked by
sibling states, re-run reports, and portfolio variants) -- for two solver
configurations:

* **baseline**: the seed solver's behavior -- per-solver exact cache keyed
  by expression uids, no subset/superset reasoning, no model reuse.
  Rebuilt expressions (new states, new sessions) never hit.
* **accelerated**: structural digest keys + the Klee-style counterexample
  cache (UNSAT-superset / SAT-subset answers) + the executor's model-reuse
  fast path.

Three workloads:

* ``rebuild``   -- a suite of constraint systems solved, then re-built from
                   scratch (fresh ``Var``/``Expr`` objects, as a new session
                   or recompiled module would) and re-solved N times.
* ``growth``    -- path conditions growing one constraint at a time, with
                   both-direction branch probes along the way, re-issued
                   across rebuilt expression sets.
* ``branches``  -- the real ``Executor._feasible`` driven over a long run
                   of branch-feasibility probes against one state (the fast
                   path's home turf).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_solver.py [--quick] [--json OUT]

Exit status is 0 when the accelerated configuration clears the 2x
queries/sec target on the repeated-query workloads.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.lang import compile_source  # noqa: E402
from repro.obs import counters_delta, unified_registry  # noqa: E402
from repro.solver import Solver, binop, make_var  # noqa: E402
from repro.symbex import ExecConfig, Executor  # noqa: E402

SPEEDUP_TARGET = 2.0


def baseline_solver() -> Solver:
    """The seed solver: uid-keyed exact cache, nothing else."""
    return Solver(structural_keys=False, subset_reasoning=False)


def accelerated_solver() -> Solver:
    return Solver()


# ---------------------------------------------------------------------------
# Workload definitions.  Each builder returns a *freshly constructed* list of
# constraints every call, so repeats present structurally identical but
# object-distinct queries -- the cross-state/cross-session pattern.
# ---------------------------------------------------------------------------


def _system(index: int) -> list:
    """One small mixed constraint system over fresh byte variables."""
    a = make_var(f"in{index}.a", 0, 255)
    b = make_var(f"in{index}.b", 0, 255)
    c = make_var(f"in{index}.c", 0, 255)
    return [
        binop("==", binop("+", a, b), 60 + (index % 40)),
        binop(">", a, index % 20),
        binop("<", b, 200),
        binop("!=", c, index % 256),
        binop(">=", binop("*", c, 2), 10),
    ]


def rebuild_queries(systems: int, repeats: int) -> list[list]:
    """Each system solved once, then the whole suite rebuilt and re-solved."""
    queries = []
    for _ in range(repeats + 1):
        for index in range(systems):
            queries.append(_system(index))
    return queries


def growth_queries(chains: int, depth: int, repeats: int) -> list[list]:
    """Growing path conditions with branch probes, re-issued from scratch.

    Mimics a path condition accumulating one branch constraint per step:
    at each depth the query is the prefix so far plus a probe in each
    direction (the taken probe extends the prefix).  Probes share variables
    with the prefix, so subset/superset reasoning gets real work.
    """
    queries = []
    for _ in range(repeats + 1):
        for chain in range(chains):
            vars_ = [
                make_var(f"ch{chain}.v{i}", 0, 255) for i in range(depth + 1)
            ]
            prefix: list = []
            for i in range(depth):
                link = binop("<", vars_[i], binop("+", vars_[i + 1], 16))
                taken = binop(">", vars_[i], 2 * i)
                not_taken = binop("<=", vars_[i], 2 * i)
                queries.append(prefix + [link, taken])
                queries.append(prefix + [link, not_taken])
                prefix = prefix + [link, taken]
    return queries


def run_solver_workload(solver: Solver, queries: list[list]) -> dict:
    # Counters via unified-registry snapshots (esd-metrics-v1): subtract
    # before from after; never read raw fields or reset anything.
    registry = unified_registry(solver=solver)
    before = registry.snapshot()
    started = time.perf_counter()
    for constraints in queries:
        solver.check(constraints)
    seconds = time.perf_counter() - started
    after = registry.snapshot()
    delta = counters_delta(after, before)
    return {
        "queries": len(queries),
        "seconds": round(seconds, 6),
        "qps": round(len(queries) / seconds, 1) if seconds > 0 else float("inf"),
        "component_lookups": delta.get("esd_solver_cache_lookups_total", 0),
        "cache_hits": delta.get("esd_solver_cache_hits_total", 0),
        "unsat_superset_hits": delta.get(
            "esd_solver_unsat_superset_hits_total", 0),
        "sat_subset_hits": delta.get("esd_solver_sat_subset_hits_total", 0),
        "search_nodes": delta.get("esd_solver_search_nodes_total", 0),
        "metrics": after,
    }


# ---------------------------------------------------------------------------
# Branch-probe workload: the real Executor._feasible against one state.
# ---------------------------------------------------------------------------


def run_branch_workload(solver: Solver, probes: int, sweeps: int) -> dict:
    """Drive ``Executor._feasible`` over ``sweeps`` states exploring the
    same branches.

    Each sweep rebuilds the state's constraints and every probe expression
    from scratch (fresh ``Var`` objects with the same names/domains), the
    way forked siblings and re-run reports re-encounter the same branch
    conditions.  Within a sweep the model-reuse fast path answers the
    satisfiable probes; across sweeps the structural cache answers what the
    fast path misses.  The baseline's uid-keyed cache sees every sweep as
    all-new queries.
    """
    module = compile_source("int main() { return 0; }", "bench")
    # The baseline ablates the model-reuse fast path too: it is part of the
    # acceleration layer under measurement, not of the seed solver.
    executor = Executor(
        module, solver=solver,
        config=ExecConfig(model_reuse=solver.structural_keys),
    )
    registry = unified_registry(solver=solver, executor=executor)
    before = registry.snapshot()
    started = time.perf_counter()
    feasible = 0
    for _ in range(sweeps):
        state = executor.initial_state()
        vars_ = [make_var(f"br.v{i}", 0, 255) for i in range(8)]
        for i, var in enumerate(vars_):
            state.add_constraint(binop(">", var, i))
        # Chain the variables so every probe's related set is the whole
        # path condition, as in a real accumulated path.
        for left, right in zip(vars_, vars_[1:]):
            state.add_constraint(binop("<=", left, right))
        for i in range(probes):
            var = vars_[i % len(vars_)]
            bound = 2 + i % 250  # distinct (var, bound) pairs per sweep
            feasible += executor._feasible(state, binop("<", var, bound))
            feasible += executor._feasible(state, binop(">=", var, bound))
    seconds = time.perf_counter() - started
    after = registry.snapshot()
    delta = counters_delta(after, before)
    queries = 2 * probes * sweeps
    return {
        "queries": queries,
        "feasible": feasible,
        "seconds": round(seconds, 6),
        "qps": round(queries / seconds, 1) if seconds > 0 else float("inf"),
        "fastpath_hits": delta.get("esd_solver_fastpath_hits_total", 0),
        "fastpath_misses": delta.get("esd_solver_fastpath_misses_total", 0),
        "metrics": after,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small sizes (CI smoke)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the result record as JSON")
    args = parser.parse_args(argv)

    if args.quick:
        systems, rebuilds = 40, 3
        chains, depth, growth_repeats = 4, 10, 2
        probes, sweeps = 120, 3
    else:
        systems, rebuilds = 150, 5
        chains, depth, growth_repeats = 10, 20, 4
        probes, sweeps = 250, 6

    record: dict = {"quick": args.quick, "workloads": {}}

    for name, queries in (
        ("rebuild", rebuild_queries(systems, rebuilds)),
        ("growth", growth_queries(chains, depth, growth_repeats)),
    ):
        base = run_solver_workload(baseline_solver(), queries)
        accel = run_solver_workload(accelerated_solver(), queries)
        speedup = accel["qps"] / base["qps"] if base["qps"] else float("inf")
        record["workloads"][name] = {
            "baseline": base, "accelerated": accel,
            "speedup": round(speedup, 2),
        }
        hit_rate = accel["cache_hits"] / max(accel["component_lookups"], 1)
        print(f"{name:8s}: baseline {base['qps']:10.1f} q/s, "
              f"accelerated {accel['qps']:10.1f} q/s "
              f"({speedup:.2f}x, {100 * hit_rate:.1f}% component hits)")

    base = run_branch_workload(baseline_solver(), probes, sweeps)
    accel = run_branch_workload(accelerated_solver(), probes, sweeps)
    speedup = accel["qps"] / base["qps"] if base["qps"] else float("inf")
    fast_total = accel["fastpath_hits"] + accel["fastpath_misses"]
    fast_rate = accel["fastpath_hits"] / fast_total if fast_total else 0.0
    record["workloads"]["branches"] = {
        "baseline": base, "accelerated": accel, "speedup": round(speedup, 2),
    }
    assert base["feasible"] == accel["feasible"], "configs must agree"
    print(f"branches: baseline {base['qps']:10.1f} q/s, "
          f"accelerated {accel['qps']:10.1f} q/s "
          f"({speedup:.2f}x, {100 * fast_rate:.1f}% fast-path hits)")

    speedups = [w["speedup"] for w in record["workloads"].values()]
    record["min_speedup"] = min(speedups)
    record["target"] = SPEEDUP_TARGET
    record["passed"] = record["min_speedup"] >= SPEEDUP_TARGET

    if args.json:
        Path(args.json).write_text(json.dumps(record, indent=2) + "\n")
        print(f"wrote {args.json}")

    status = "PASS" if record["passed"] else "FAIL"
    print(f"{status}: min speedup {record['min_speedup']:.2f}x "
          f"(target {SPEEDUP_TARGET:.1f}x)")
    return 0 if record["passed"] else 1


if __name__ == "__main__":
    sys.exit(main())
