"""Mutation-corpus benchmark: reproduction + localization rates, gated.

Generates the fixed-seed mutation corpus over the real-Python programs
(pytally, pyledger, pyrlock), runs every manifested mutant through the full
synthesize -> localize -> (sampled) repair pipeline, and gates on the
aggregate rates:

* **reproduction rate**: manifested mutants whose bug the symbolic search
  re-synthesizes from the coredump alone (gate: >= 0.80);
* **top-3 localization rate**: manifested mutants whose injected statement
  lands in the top 3 of the Ochiai ranking (gate: >= 0.30 -- mutations at
  always-covered lines such as loop bounds rank low by construction, see
  the corpus README section).

Repair success on the sampled mutants is reported but not gated; the
per-class breakdown in the JSON artifact is the regression surface.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_corpus.py [--quick] [--json OUT]

``--quick`` selects 60 mutants instead of 100.  The seed is fixed so the
corpus -- and therefore the rates -- are byte-reproducible run to run.
Exit status is 0 when every gate passes.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.corpus import default_programs, run_corpus  # noqa: E402

SEED = 1234
REPRO_GATE = 0.80
TOP3_GATE = 0.30
MIN_PROGRAMS = 3


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="60 mutants instead of 100")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write the esd-corpus-v1 document to PATH")
    parser.add_argument("--count", type=int, default=None,
                        help="override the mutant count")
    args = parser.parse_args(argv)

    count = args.count if args.count is not None else (60 if args.quick else 100)
    programs = default_programs()
    print(f"bench_corpus: seed {SEED}, {count} mutants over "
          f"{', '.join(p.name for p in programs)} ...", flush=True)

    started = time.perf_counter()
    doc = run_corpus(seed=SEED, count=count, programs=programs)
    wall = time.perf_counter() - started

    totals = doc["totals"]
    for cls, row in sorted(doc["classes"].items()):
        print(f"bench_corpus:   {cls:<12} selected {row['selected']:>3}  "
              f"manifested {row['manifested']:>3}  "
              f"repro {row['repro_rate']:.2f}  top3 {row['top3_rate']:.2f}  "
              f"repair {row['repaired']}/{row['repair_attempted']}")
    print(f"bench_corpus:   totals: {totals['selected']} selected, "
          f"{totals['manifested']} manifested, "
          f"repro_rate {totals['repro_rate']:.4f}, "
          f"top3_rate {totals['top3_rate']:.4f}, "
          f"repair {totals['repaired']}/{totals['repair_attempted']} "
          f"({wall:.1f}s)")

    gates = {
        "programs": len(doc["programs"]) >= MIN_PROGRAMS,
        "manifested": totals["manifested"] > 0,
        "repro_rate": totals["repro_rate"] >= REPRO_GATE,
        "top3_rate": totals["top3_rate"] >= TOP3_GATE,
    }
    for name, passed in gates.items():
        if not passed:
            print(f"bench_corpus:   GATE FAILED: {name}")
    ok = all(gates.values())
    print(f"bench_corpus: repro >= {REPRO_GATE}, top3 >= {TOP3_GATE} "
          f"-> {'PASS' if ok else 'FAIL'}")

    if args.json:
        doc["bench"] = {
            "seed": SEED,
            "gates": {"repro_rate": REPRO_GATE, "top3_rate": TOP3_GATE},
            "ok": ok,
            "seconds": round(wall, 3),
        }
        Path(args.json).write_text(
            json.dumps(doc, indent=2, sort_keys=True) + "\n")
        print(f"bench_corpus: wrote {args.json}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
