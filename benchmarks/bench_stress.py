"""Section 7.2's brute-force baseline: stress and random-input testing.

Paper: "we ran several series of stress tests and random input testing for
several hours.  Neither of these efforts caused any of the bugs in Table 1
to manifest."  Budgets here are scaled down proportionally; the assertion is
the same: stress finds none of the target bugs.
"""

import pytest

from repro.baselines import stress_test
from repro.core import extract_goal
from repro.workloads import TABLE1

from _support import report_line

_SECTION = "Section 7.2: stress/random testing"

STRESS_SECONDS = 5.0
STRESS_RUNS = 600

# The bugs whose triggers are precise enough that random testing provably
# misses them at this budget (exact option strings / structured requests).
# tac and the two hangs are excluded from the hard assertion: our random
# tester hits them more easily than the authors' real-system stress runs
# did, because the simulated scheduler preempts at sync points and the
# random inputs are adversarial byte soup (see EXPERIMENTS.md).
_MUST_MISS = {"ghttpd", "paste", "mkdir", "mknod", "mkfifo"}


@pytest.mark.parametrize("workload", TABLE1, ids=[w.name for w in TABLE1])
def test_stress_baseline(benchmark, workload):
    module = workload.compile()
    goal = extract_goal(module, workload.make_report())

    def stress():
        return stress_test(
            module,
            is_goal=goal.matches,
            max_runs=STRESS_RUNS,
            max_seconds=STRESS_SECONDS,
            seed=42,
            preempt_probability=0.02,
        )

    result = benchmark.pedantic(stress, rounds=1, iterations=1)
    report_line(
        _SECTION,
        f"{workload.name:10s} {result.runs:5d} stress runs in "
        f"{result.seconds:5.1f}s -> "
        f"{'reproduced' if result.found else 'not reproduced'}",
    )
    if workload.name in _MUST_MISS:
        assert not result.found, (
            f"{workload.name}: stress testing reproduced the bug; its trigger "
            f"should be too precise for random testing at this budget"
        )
