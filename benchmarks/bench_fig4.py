"""Figure 4: the Figure-3 data viewed as synthesis time vs program size
(KLOC).  Paper's axis runs 0.36-40 KLOC; our generated programs span a
comparable range, and the shape check is the same: time grows with program
size and stays practical at the top of the range."""

import pytest

from repro.bpf import BPFParams, generate
from repro.core import ESDConfig, esd_synthesize
from repro.playback import play_back

from _support import esd_budget, report_line

_SECTION = "Figure 4: synthesis time as a function of program size"

BRANCH_COUNTS = [2**k for k in range(4, 12)]

_series: list[tuple[float, float]] = []


@pytest.mark.parametrize("branches", BRANCH_COUNTS)
def test_fig4_size_series(benchmark, branches):
    params = BPFParams(
        num_inputs=max(8, branches // 16),
        num_branches=branches,
        num_input_branches=branches,
        num_threads=2,
        num_locks=2,
        seed=11,  # a different program family than Figure 3
    )
    program = generate(params)
    workload = program.workload
    module = workload.compile()
    report = workload.make_report()
    holder = {}

    def synthesize():
        holder["result"] = esd_synthesize(
            module, report, ESDConfig(budget=esd_budget())
        )
        return holder["result"]

    result = benchmark.pedantic(synthesize, rounds=1, iterations=1)
    assert result.found, f"{program.kloc:.2f} KLOC: {result.reason}"
    playback = play_back(module, result.execution_file, mode="strict")
    assert playback.bug_reproduced
    _series.append((program.kloc, result.total_seconds))
    report_line(
        _SECTION,
        f"size={program.kloc:6.2f} KLOC: ESD {result.total_seconds:7.2f}s",
    )


def test_fig4_scales_with_kloc():
    if len(_series) < 2:
        pytest.skip("series not populated (run the whole file)")
    ordered = sorted(_series)
    assert ordered[-1][1] > ordered[0][1], "time should grow with program size"
