"""Observability overhead benchmark: tracing must cost <= 5%.

Runs the identical synthesis twice per workload -- tracer attached
(session ``trace=True``: job/phase/quantum spans, slow-solver-query
records, bug marks) and tracer absent -- and gates on the aggregate
wall-clock ratio.  Interleaved min-of-N timing: each configuration's
per-workload time is the minimum over ``repeats`` alternating runs, so a
noisy neighbor inflates both sides or neither.

Two correctness gates ride along, because an observability layer that
changes results is worse than useless:

* the synthesized execution artifact must be byte-identical with and
  without the tracer (timing lives in the trace document, never in
  canonical artifacts);
* the traced run must produce a valid ``esd-trace-v1`` document whose
  ``phase:*`` spans cover >= ``COVERAGE_FLOOR`` of the job wall-clock.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_obs.py [--quick] [--json OUT]

Exit status is 0 when every workload reproduces its bug on both sides,
artifacts are byte-identical, traces validate, and the aggregate
traced/untraced ratio stays at or below ``OVERHEAD_GATE`` (override via
ESD_BENCH_OBS_GATE for noisy CI hosts).
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import ReproSession  # noqa: E402
from repro.core import ESDConfig  # noqa: E402
from repro.obs import check_trace_document, phase_summary  # noqa: E402
from repro.search import SearchBudget  # noqa: E402
from repro.workloads import get  # noqa: E402

OVERHEAD_GATE = float(os.environ.get("ESD_BENCH_OBS_GATE", "1.05"))
COVERAGE_FLOOR = 0.95

QUICK_WORKLOADS = ("tac", "mkdir", "paste")
FULL_WORKLOADS = ("tac", "mkdir", "mkfifo", "paste", "minidb", "ghttpd")


def _config() -> ESDConfig:
    return ESDConfig(
        budget=SearchBudget(
            max_seconds=120.0,
            max_instructions=20_000_000,
            max_states=500_000,
        ),
    )


def run_once(name: str, traced: bool) -> tuple[float, bytes, dict]:
    """One cold synthesis; returns (seconds, artifact bytes, trace doc)."""
    workload = get(name)
    session = ReproSession(workload.compile(), trace=traced)
    report = workload.make_report()
    gc.collect()  # keep collection pauses out of the timed region
    started = time.perf_counter()
    result = session.synthesize(report, _config())
    seconds = time.perf_counter() - started
    if not result.found:
        raise SystemExit(f"bench_obs: {name} did not reproduce "
                         f"({result.reason}); cannot measure overhead")
    artifact = result.execution_file.canonical_bytes()
    document = session.trace_document() if traced else {}
    return seconds, artifact, document


def bench_workload(name: str, repeats: int) -> dict:
    """Interleaved min-of-N for one workload, plus the correctness gates."""
    plain: list[float] = []
    traced: list[float] = []
    artifact_plain = artifact_traced = None
    summary: dict = {}
    for i in range(repeats):
        # Alternate which configuration runs first within each pair:
        # whatever systematic first-run/second-run skew the host has
        # (cache state, allocator growth) then hits both sides equally.
        for is_traced in ((False, True) if i % 2 == 0 else (True, False)):
            seconds, artifact, document = run_once(name, traced=is_traced)
            if is_traced:
                traced.append(seconds)
                artifact_traced = artifact
                check_trace_document(document)
                # Best coverage across repeats: on millisecond-scale runs a
                # single descheduling blip between phases dominates one
                # sample's gap.
                candidate = phase_summary(document)
                if not summary or candidate["coverage"] > summary["coverage"]:
                    summary = candidate
            else:
                plain.append(seconds)
                artifact_plain = artifact
    return {
        "workload": name,
        "plain_seconds": round(min(plain), 6),
        "traced_seconds": round(min(traced), 6),
        "ratio": round(min(traced) / min(plain), 4) if min(plain) > 0 else 1.0,
        "artifact_identical": artifact_plain == artifact_traced,
        "trace_spans": summary["spans"],
        "phase_coverage": summary["coverage"],
        "phase_seconds": summary["phase_seconds"],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="representative subset (CI smoke)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the result record as JSON")
    parser.add_argument("--repeats", type=int, default=None,
                        help="interleaved runs per configuration "
                             "(default: 7, or 3 with --quick)")
    args = parser.parse_args(argv)

    names = QUICK_WORKLOADS if args.quick else FULL_WORKLOADS
    # Min-of-N needs enough N: on a busy single-core host a descheduling
    # blip adds tens of percent to any one sample.
    repeats = args.repeats or (3 if args.quick else 7)
    record: dict = {"quick": args.quick, "repeats": repeats, "workloads": []}

    print(f"{'workload':10s} {'plain':>10s} {'traced':>10s} {'ratio':>7s} "
          f"{'spans':>6s} {'cover':>6s}  artifact")
    for name in names:
        row = bench_workload(name, repeats)
        record["workloads"].append(row)
        marker = "identical" if row["artifact_identical"] else "DIFFERS"
        print(f"{name:10s} {row['plain_seconds']:9.4f}s "
              f"{row['traced_seconds']:9.4f}s {row['ratio']:7.3f} "
              f"{row['trace_spans']:6d} {100 * row['phase_coverage']:5.1f}%"
              f"  {marker}")

    rows = record["workloads"]
    # Aggregate ratio over summed minima: per-workload ratios on
    # sub-millisecond runs are all jitter; the sum is what users feel.
    plain_total = sum(r["plain_seconds"] for r in rows)
    traced_total = sum(r["traced_seconds"] for r in rows)
    record["plain_total_seconds"] = round(plain_total, 6)
    record["traced_total_seconds"] = round(traced_total, 6)
    record["overhead_ratio"] = (
        round(traced_total / plain_total, 4) if plain_total > 0 else 1.0
    )
    record["overhead_gate"] = OVERHEAD_GATE
    record["coverage_floor"] = COVERAGE_FLOOR
    record["all_identical"] = all(r["artifact_identical"] for r in rows)
    record["min_coverage"] = round(min(r["phase_coverage"] for r in rows), 4)
    record["passed"] = (
        record["all_identical"]
        and record["overhead_ratio"] <= OVERHEAD_GATE
        and record["min_coverage"] >= COVERAGE_FLOOR
    )

    if args.json:
        Path(args.json).write_text(json.dumps(record, indent=2) + "\n")
        print(f"wrote {args.json}")

    status = "PASS" if record["passed"] else "FAIL"
    print(f"{status}: traced/untraced ratio {record['overhead_ratio']:.3f} "
          f"(gate {OVERHEAD_GATE}), phase coverage >= "
          f"{100 * record['min_coverage']:.1f}%, artifacts byte-identical: "
          f"{record['all_identical']}")
    return 0 if record["passed"] else 1


if __name__ == "__main__":
    sys.exit(main())
