"""Benchmark-suite plumbing: make _support importable and dump the
paper-style summary at the end of the session."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))


def pytest_sessionfinish(session, exitstatus):
    from _support import collected_report

    report = collected_report()
    if report.strip():
        out = Path(__file__).parent / "results.md"
        out.write_text("# Benchmark results (paper-style rows)\n\n" + report)
