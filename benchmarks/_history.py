"""Benchmark history tracking, importable from the bench scripts.

The implementation lives in :mod:`repro.obs.history` (inside the package
so ``repro bench --history`` works from an installed CLI without the
``benchmarks/`` directory present); this shim re-exports it for the
``bench_*`` scripts, which already put ``src`` on ``sys.path``.

Usage from a bench script::

    from _history import append_entry, compare_latest, render_compare

    path = append_entry(history_dir, "obs", record)
    report = compare_latest(path, max_ratio=1.5)
    if not report["passed"]:
        print(render_compare(report)); sys.exit(1)
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs.history import (  # noqa: E402,F401
    DEFAULT_METRIC_PATTERNS,
    HISTORY_FORMAT,
    HISTORY_SCHEMA_VERSION,
    append_entry,
    compare_latest,
    flatten_numeric,
    history_path,
    load_history,
    main,
    render_compare,
)

if __name__ == "__main__":
    raise SystemExit(main())
