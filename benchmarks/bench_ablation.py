"""Ablation of ESD's three focusing techniques (paper section 3.4).

"We found that the three techniques of focusing the search --
proximity-based guidance, the use of intermediate goals, and path
abandonment based on critical edges -- can speed up the search by several
orders of magnitude compared to other search strategies."

Each configuration disables one technique; the metric is instructions
explored until the goal (more robust than wall-clock at these scales).
DESIGN.md calls these out as the design choices to ablate.
"""

import pytest

from repro.bpf import BPFParams, generate
from repro.core import ESDConfig, esd_synthesize
from repro.search import SearchBudget

from _support import report_line

_SECTION = "Ablation: ESD's focusing techniques (instructions explored)"

_BUDGET = SearchBudget(max_seconds=30, max_instructions=5_000_000)

_CONFIGS = {
    "full ESD": {},
    "no intermediate goals": {"use_intermediate_goals": False},
    "no unreachable-path pruning": {"prune_unreachable": False},
    "no schedule distance": {"use_schedule_distance": False},
}


def _workload():
    params = BPFParams(
        num_inputs=8, num_branches=64, num_input_branches=64,
        num_threads=2, num_locks=2, seed=3,
    )
    return generate(params).workload


_results: dict[str, float] = {}


@pytest.mark.parametrize("label", list(_CONFIGS), ids=list(_CONFIGS))
def test_ablation_configuration(benchmark, label):
    workload = _workload()
    module = workload.compile()
    report = workload.make_report()
    overrides = _CONFIGS[label]

    def synthesize():
        return esd_synthesize(
            module, report, ESDConfig(budget=_BUDGET, **overrides)
        )

    result = benchmark.pedantic(synthesize, rounds=1, iterations=1)
    explored = result.instructions if result.found else float("inf")
    _results[label] = explored
    status = (
        f"{result.instructions:9d} instrs, {result.total_seconds:6.2f}s"
        if result.found else f"FAILED within budget ({result.reason})"
    )
    report_line(_SECTION, f"{label:30s} {status}")
    if label == "full ESD":
        assert result.found, "full ESD must solve the ablation workload"


def test_full_esd_is_not_worst():
    if "full ESD" not in _results or len(_results) < 2:
        pytest.skip("series not populated (run the whole file)")
    full = _results["full ESD"]
    others = [v for k, v in _results.items() if k != "full ESD"]
    assert full <= max(others), (
        "disabling a focusing technique should never help the search"
    )
