"""Session API: amortized static phase across a batch of reports.

The paper's section-8 service model is a stream of reports against one
program.  The one-shot ``esd_synthesize`` pays the static phase (CFG,
distance tables, intermediate goals) per call; a :class:`ReproSession`
pays it once per module.  This benchmark measures both on the same batch
and checks the amortization: the session's total static-phase time must be
well below N one-shot static phases, and the static analysis must run
exactly once (asserted via the session's cache counters).
"""

import pytest

from repro.api import ReproSession
from repro.core import ESDConfig, esd_synthesize

from _support import report_line, session_for
from repro.workloads import get

_SECTION = "Session API: static-phase amortization (batch of reports)"

# Workloads with a visible static phase relative to their search time.
WORKLOADS = ["ls1", "ls3", "mknod"]
N_REPORTS = 4


@pytest.mark.parametrize("name", WORKLOADS)
def test_session_amortizes_static_phase(benchmark, name):
    workload = get(name)
    module = workload.compile()
    reports = [workload.make_report() for _ in range(N_REPORTS)]

    # One-shot API: every call rebuilds the static artifacts.
    cold = [esd_synthesize(module, report, ESDConfig()) for report in reports]
    assert all(r.found for r in cold)
    cold_static = sum(r.static_seconds for r in cold)

    # Session API: one static phase for the whole batch.
    session = ReproSession(module)

    def run_batch():
        return session.synthesize_batch(reports)

    batch = benchmark.pedantic(run_batch, rounds=1, iterations=1)
    assert batch.found_count == N_REPORTS
    assert session.static_stats.distance_builds == 1
    assert session.static_stats.goal_computes == 1
    assert session.static_stats.cache_hits == N_REPORTS - 1
    warm_static = batch.static_seconds

    # The batch must amortize: N reports for well under N static phases.
    assert warm_static < cold_static, (
        f"{name}: session static phase {warm_static:.4f}s not below "
        f"{N_REPORTS} one-shot phases {cold_static:.4f}s"
    )
    speedup = cold_static / warm_static if warm_static > 0 else float("inf")
    report_line(
        _SECTION,
        f"{name:8s} {N_REPORTS} reports: one-shot static "
        f"{cold_static * 1000:8.2f}ms, session static "
        f"{warm_static * 1000:8.2f}ms  ({speedup:5.1f}x amortization)",
    )


def test_portfolio_merges_variant_stats(benchmark):
    workload = get("tac")
    session = session_for(workload)
    report = workload.make_report()
    variants = {
        "esd-seed0": ESDConfig(),
        "esd-seed1": ESDConfig(seed=1),
        "random-path": ESDConfig(strategy="random-path"),
    }

    def run_portfolio():
        return session.synthesize_portfolio(report, variants)

    portfolio = benchmark.pedantic(run_portfolio, rounds=1, iterations=1)
    assert portfolio.found, "no portfolio variant found the tac bug"
    report_line(
        _SECTION,
        f"portfolio on tac: winner {portfolio.winner_name} in "
        f"{portfolio.wall_seconds:.2f}s wall; "
        f"{portfolio.total_instructions} merged instructions across "
        f"{len(portfolio.results)} variants "
        f"({len(portfolio.cancelled)} cancelled)",
    )
