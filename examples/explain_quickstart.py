"""Explainability quickstart: the flight recorder and `repro explain`.

The span tracer (see examples/observability_quickstart.py) answers where
the *time* went; the flight recorder answers why the *search* did what
it did -- which virtual queue picked each state and at what proximity
score, which layer killed each abandoned path (weakest-precondition
refutation, the step budget, a solver-refuted constraint, distance-INF),
and what every decision cost in instructions and solver queries.

Two invariants carry over from tracing: recording off costs one hoisted
boolean per pick and allocates nothing, and recording on never changes
results -- a recorded synthesis produces byte-identical artifacts to an
unrecorded one.

This example runs in-process; `repro synth --flight out.json`, `repro
explain`, `repro serve --flight` + `repro fetch --kind flight`, and
`repro status JOB --follow` expose the same surfaces from the command
line.

Run:  python examples/explain_quickstart.py
"""

from repro.api import ReproSession
from repro.core import ESDConfig
from repro.obs import diff_flights, explain_flight, render_diff, render_explain
from repro.workloads import get


def main() -> None:
    # --- 1. a recorded synthesis -------------------------------------------
    print("== 1. synthesize with the flight recorder on ==")
    workload = get("paste")
    session = ReproSession(workload.compile(), workers=1, flight=True)
    result = session.synthesize(workload.make_report())
    print(f"   found={result.found}: {result.goal.description}")

    # One compact record per search decision, bounded, aggregates exact.
    counts = session.flight.counts()
    print(f"   flight log: {counts['picks']} picks, {counts['adds']} adds, "
          f"{counts['records']} records, outcome {counts['reason']!r}")

    # --- 2. byte-identity: recording changes nothing -----------------------
    print("== 2. recorded artifacts are byte-identical to unrecorded ==")
    plain = ReproSession(workload.compile(), workers=1) \
        .synthesize(workload.make_report())
    identical = (plain.execution_file.canonical_bytes()
                 == result.execution_file.canonical_bytes())
    print(f"   identical: {identical}")
    assert identical

    # --- 3. explain: goal path, subsystems, budget spend --------------------
    print("== 3. repro explain (in-process) ==")
    doc = session.flight_document()  # versioned esd-searchlog-v1
    report = explain_flight(doc)
    print("   " + render_explain(report).replace("\n", "\n   "))
    assert report["attribution"] >= 0.95  # the CI acceptance gate

    # --- 4. diff two runs: why did the budget move? -------------------------
    print("== 4. diff against a run with a tighter step budget ==")
    config = ESDConfig()
    config.budget.max_instructions = max(
        200, result.instructions // 2)
    tight = ReproSession(workload.compile(), workers=1, flight=True,
                         config=config)
    tight.synthesize(workload.make_report())
    diff = diff_flights(tight.flight_document(), doc)
    print("   " + render_diff(diff).replace("\n", "\n   "))


if __name__ == "__main__":
    main()
