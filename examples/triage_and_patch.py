"""Bug triage and patch verification (paper sections 5.2 and 8).

Two usage models beyond interactive debugging:

* **automated triage** -- every incoming report is synthesized; identical
  synthesized executions mean duplicate reports of one bug.  Each program
  gets one :class:`~repro.api.ReproSession` (so a stream of reports shares
  the static analysis), and the per-program triage shards are folded into a
  central database with :meth:`TriageDatabase.merge`;
* **patch verification** -- after fixing the bug, re-run ESD against the old
  report: "if ESD can no longer synthesize an execution that triggers the
  bug, then the patch can be considered successful."  This matters for
  concurrency bugs, whose patches often just lower the probability.

The manual loop below is CI-asserted in tests/test_repair.py, and fully
automated (localize -> patch -> validate) by :mod:`repro.repair` -- see
examples/repair_quickstart.py.

Run:  python examples/triage_and_patch.py
"""

from repro import ReproSession
from repro.core import ESDConfig, TriageDatabase
from repro.search import SearchBudget
from repro.workloads import TAC, get


def main() -> None:
    config = ESDConfig(budget=SearchBudget(max_seconds=60))

    print("== triage: three incoming reports, two distinct bugs ==")
    # Two users report the tac crash; one reports the paste crash.  One
    # session per program: alice's and bob's reports share tac's static
    # analysis.
    sessions: dict[str, ReproSession] = {}
    for reporter, name in (("alice", "tac"), ("bob", "tac"), ("carol", "paste")):
        workload = get(name)
        if name not in sessions:
            sessions[name] = ReproSession(workload.compile(), config=config)
        session = sessions[name]
        outcome = session.triage(workload.make_report())
        assert outcome.synthesized
        print(f"   report from {reporter:6s} ({name:5s}) -> bug #{outcome.bug_id} "
              f"{'(new)' if outcome.is_new else '(duplicate)'}")

    # Fold the per-program shards into one central database.
    central = TriageDatabase()
    for name, session in sessions.items():
        mapping = central.merge(session.triage_db)
        print(f"   merged {name} shard: local ids {mapping}")
    print(f"   central triage database holds {len(central)} distinct bugs")

    print("\n== patch verification for tac ==")
    report = TAC.make_report()

    bad_patch = TAC.source.replace(
        "int *buf = read_input(\"file\", 12);",
        "int *buf = read_input(\"file\", 12);\n    // FIXME: band-aid\n",
    )
    result = ReproSession.from_source(bad_patch, "tac", config=config).synthesize(report)
    print(f"   cosmetic patch: path to the bug "
          f"{'STILL EXISTS' if result.found else 'gone'}")
    assert result.found

    good_patch = TAC.source.replace(
        "while (buf[i] != 10) {",
        "while (i >= 0 && buf[i] != 10) {",
    )
    result = ReproSession.from_source(good_patch, "tac", config=config).synthesize(report)
    print(f"   bounds-checking patch: path to the bug "
          f"{'still exists' if result.found else 'GONE -- patch verified'}")
    assert not result.found


if __name__ == "__main__":
    main()
