"""Bug triage and patch verification (paper sections 5.2 and 8).

Two usage models beyond interactive debugging:

* **automated triage** -- every incoming report is synthesized; identical
  synthesized executions mean duplicate reports of one bug;
* **patch verification** -- after fixing the bug, re-run ESD against the old
  report: "if ESD can no longer synthesize an execution that triggers the
  bug, then the patch can be considered successful."  This matters for
  concurrency bugs, whose patches often just lower the probability.

Run:  python examples/triage_and_patch.py
"""

from repro.core import ESDConfig, TriageDatabase, esd_synthesize
from repro.lang import compile_source
from repro.search import SearchBudget
from repro.workloads import TAC, get


def main() -> None:
    config = ESDConfig(budget=SearchBudget(max_seconds=60))
    database = TriageDatabase()

    print("== triage: three incoming reports, two distinct bugs ==")
    # Two users report the tac crash; one reports the paste crash.
    for reporter, name in (("alice", "tac"), ("bob", "tac"), ("carol", "paste")):
        workload = get(name)
        module = workload.compile()
        result = esd_synthesize(module, workload.make_report(), config)
        assert result.found
        bug_id, is_new = database.submit(result.execution_file)
        print(f"   report from {reporter:6s} ({name:5s}) -> bug #{bug_id} "
              f"{'(new)' if is_new else '(duplicate)'}")
    print(f"   triage database holds {len(database)} distinct bugs")

    print("\n== patch verification for tac ==")
    report = TAC.make_report()

    bad_patch = TAC.source.replace(
        "int *buf = read_input(\"file\", 12);",
        "int *buf = read_input(\"file\", 12);\n    // FIXME: band-aid\n",
    )
    module = compile_source(bad_patch, "tac")
    result = esd_synthesize(module, report, config)
    print(f"   cosmetic patch: path to the bug "
          f"{'STILL EXISTS' if result.found else 'gone'}")
    assert result.found

    good_patch = TAC.source.replace(
        "while (buf[i] != 10) {",
        "while (i >= 0 && buf[i] != 10) {",
    )
    module = compile_source(good_patch, "tac")
    result = esd_synthesize(module, report, config)
    print(f"   bounds-checking patch: path to the bug "
          f"{'still exists' if result.found else 'GONE -- patch verified'}")
    assert not result.found


if __name__ == "__main__":
    main()
