"""Lint, synthesize, repair: the static pipeline end to end.

The whole-module static analyses feed three consumers:

    lint       -- `repro lint` aggregates the abstract interpreter's bug
                  smells, the lockset analysis' ordering violations, and
                  the IR hygiene checks into one `esd-lint-v1` report;
    synthesize -- with `use_static_pruning` on, the same facts answer
                  provably-decided feasibility probes without the solver,
                  the goal-directed layer (summaries -> reach -> wp) drops
                  states that can statically never reach the goal -- while
                  the synthesized execution stays byte-identical;
    repair     -- the backward slice from the crash site restricts patch
                  templates and boosts slice-member suspects.

This example runs all three on the `tac` workload (plus a look at what
`repro analyze` reports about the goal), then re-lints the patched module
to show the seeded smell is gone.

Run:  python examples/lint_quickstart.py
"""

from repro import ReproSession
from repro.analysis import analysis_document, lint_module
from repro.core import ESDConfig, esd_synthesize, extract_goal
from repro.lang import compile_source
from repro.search import SearchBudget
from repro.solver import Solver
from repro.workloads import get


def main() -> None:
    workload = get("tac")  # the coreutils `tac` segfault from paper Table 1
    module = compile_source(workload.source, "tac")
    report = workload.make_report()

    print("== step 1: lint the module as shipped ==")
    lint = lint_module(module)
    for finding in lint.findings:
        print(f"   {finding.rule}: {finding.function}:{finding.line} "
              f"-- {finding.message}")
    assert not lint.clean, "the seeded bug's smell should be flagged"

    print("\n== step 1b: what `repro analyze` knows about the goal ==")
    goal = extract_goal(module, report)
    document = analysis_document(module, goals={"tac-crash": goal.targets})
    summary = document["summaries"]["functions"]["main"]
    print(f"   main summary: mods={summary['mods']} ret={summary['ret']}")
    section = document["goals"][0]
    reach_blocks = sum(len(v) for v in section["reach"]["blocks"].values())
    print(f"   goal {section['targets']}: {reach_blocks} block(s) can still "
          f"reach it; necessary conditions per block:")
    for func, blocks in section["necessary_conditions"]["conditions"].items():
        for label, cond in sorted(blocks.items()):
            print(f"      {func}:{label}: {cond}")

    print("\n== step 2: synthesize with static pruning ==")
    solver = Solver()
    config = ESDConfig(
        budget=SearchBudget(max_seconds=60), use_static_pruning=True
    )
    result = esd_synthesize(module, report, config, solver=solver)
    assert result.found, f"synthesis failed: {result.reason}"
    print(f"   reproduced {result.execution_file.bug_kind} with "
          f"{solver.stats.queries} solver queries "
          f"({solver.stats.static_answers} probes answered statically)")
    if result.static_prune is not None:
        print(f"   goal-directed layer: {result.static_prune.checks} wp "
              f"checks, {result.static_prune.state_kills} state(s) killed, "
              f"{result.states_pruned} dropped at INF distance")

    print("\n== step 3: repair, guided by the crash slice ==")
    session = ReproSession.from_source(workload.source, "tac", config=config)
    repair = session.repair(report)
    assert repair.found, f"repair failed: {repair.reason}"
    print(f"   patch: {repair.patch.description}")

    print("\n== step 4: lint the patched module ==")
    patched = repair.patch.apply_to(compile_source(workload.source, "tac"))
    relint = lint_module(patched)
    print(f"   findings after the patch: {len(relint.findings)}")
    assert relint.clean, f"patched module still flagged: {relint.by_rule()}"
    print("   clean -- the seeded smell is gone")


if __name__ == "__main__":
    main()
