"""Python-frontend quickstart: a real Python deadlock, end to end.

``pyrlock`` is an actual Python program -- ``import threading``, two
``threading.Lock`` objects, a hand-rolled recursive lock (the SQLite
#1672 shape).  An unlucky preemption deadlocks it at an end user's site;
all the developer gets back is the hang report.

This example compiles the Python source through ``repro.frontend`` (the
stdlib-``ast`` compiler into the ESD IR -- no MiniC translation by hand),
then runs the same pipeline the MiniC workloads use: synthesize the
failing schedule from the coredump alone, replay it deterministically,
localize the fault, and synthesize the lock-order fix.

Run:  python examples/python_quickstart.py
"""

from repro.api import ReproSession
from repro.frontend import compile_python_source
from repro.workloads import PYRLOCK


def main() -> None:
    # --- compile actual Python source into the ESD IR ----------------------
    print("== 1. compile the Python program through repro.frontend ==")
    module = compile_python_source(PYRLOCK.source, "pyrlock")
    print(f"   functions: {', '.join(sorted(module.functions))}")
    mutexes = sorted(g.name for g in module.globals.values() if g.is_mutex)
    print(f"   mutexes:   {', '.join(mutexes)}")

    # --- the end user's hang report ----------------------------------------
    print("\n== 2. the end-user run deadlocks; a coredump is captured ==")
    report = PYRLOCK.make_report()
    for thread in report.coredump.blocked_threads():
        top = thread.top
        print(f"   thread {thread.tid}: blocked on {thread.blocked_resource} "
              f"at {top.function} line {top.line}")

    # --- synthesize + play back --------------------------------------------
    print("\n== 3. ESD synthesizes the deadlocking schedule from the dump ==")
    session = ReproSession(module)
    result = session.synthesize(report)
    assert result.found, f"synthesis failed: {result.reason}"
    execution = result.execution_file
    print(f"   synthesized in {result.total_seconds:.2f}s "
          f"({result.instructions} instructions explored)")
    playback = session.play_back(execution)
    assert playback.bug_reproduced
    print(f"   playback: {playback.bug.kind.value} reproduced "
          f"({playback.steps} instructions)")

    # --- localize + repair --------------------------------------------------
    print("\n== 4. localize and repair the lock-order inversion ==")
    localization = session.localize(report, failing=execution)
    for suspect in localization.top(3):
        print(f"   suspect: {suspect.function}:{suspect.line} "
              f"(score {suspect.score:.3f})")
    repair = session.repair(report, failing=execution)
    assert repair.found, f"repair failed: {repair.reason}"
    print(f"   patch: {repair.patch.candidate.kind} in "
          f"{repair.patch.candidate.function} -- {repair.patch.description}")
    print("   (the ground-truth fix: release `master` before acquiring `real`)")


if __name__ == "__main__":
    main()
