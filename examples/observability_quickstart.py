"""Observability quickstart: traces, metrics, and the live service surface.

The telemetry layer (`repro.obs`) answers the paper's attribution
question -- where does synthesis wall-clock go, between the static
phase, the path/schedule search, and the final constraint solve? -- with
a hierarchical span tracer, and unifies every stats counter in the
pipeline behind one monotonic metrics registry. Three invariants:

* tracing never changes results (artifacts are byte-identical on/off),
* the disabled path is free (the executor hot loop is not instrumented),
* counters are never reset (intervals = difference of two snapshots).

This example runs in-process; `repro synth --trace`, `repro trace`,
`repro serve --trace`, and `repro stats` expose the same surfaces from
the command line.

Run:  python examples/observability_quickstart.py
"""

import json
import time

from repro.api import ReproSession
from repro.api.jobs import FOUND, TERMINAL_STATES, JobSpec
from repro.obs import chrome_trace, counters_delta, phase_summary
from repro.service import ReproService
from repro.workloads import get


def main() -> None:
    # --- 1. a traced synthesis ---------------------------------------------
    print("== 1. synthesize with tracing on ==")
    workload = get("paste")
    session = ReproSession(workload.compile(), workers=1, trace=True)
    result = session.synthesize(workload.make_report())
    print(f"   found={result.found}: {result.goal.description} "
          f"({result.instructions} instructions explored)")

    # The trace is an esd-trace-v1 document: a tree of timed spans
    # (session -> job -> phase -> search-quantum / solver-query).
    document = session.trace_document()
    summary = phase_summary(document)
    print(f"   {summary['spans']} spans, "
          f"{summary['total_seconds'] * 1e3:.1f}ms of traced job time")
    for phase, seconds in sorted(summary["phase_seconds"].items(),
                                 key=lambda kv: -kv[1]):
        share = seconds / summary["total_seconds"]
        print(f"     phase:{phase:<8} {seconds * 1e3:8.2f}ms ({share:5.1%})")
    print(f"   phase coverage: {summary['coverage']:.1%} of job wall-clock")

    # --- 2. export for humans ----------------------------------------------
    print("\n== 2. export the trace ==")
    session.save_trace("trace.json")   # inspect with `repro trace trace.json`
    with open("trace_chrome.json", "w") as fh:
        json.dump(chrome_trace(document), fh)
    print("   wrote trace.json (repro trace) and trace_chrome.json "
          "(load in Perfetto / chrome://tracing)")

    # --- 3. interval metrics without resets --------------------------------
    print("\n== 3. measure an interval by snapshot subtraction ==")
    before = session.metrics()
    session.synthesize(workload.make_report())  # warm second run
    delta = counters_delta(session.metrics(), before)
    print(f"   second run: {delta.get('esd_solver_queries_total', 0)} solver "
          f"queries, {delta.get('esd_solver_cache_hits_total', 0)} cache hits "
          "(counters are monotonic; nothing was reset)")

    # --- 4. the same registry, live on a service ---------------------------
    print("\n== 4. a service exposes the registry live ==")
    service = ReproService(max_workers=2, trace_jobs=True)
    records = [service.submit(JobSpec(workload=name))
               for name in ("tac", "mkdir")]
    while any(service.job(r.job_id).state not in TERMINAL_STATES
              for r in records):
        time.sleep(0.02)
    for record in records:
        final = service.job(record.job_id)
        marker = "trace stored" if "trace" in final.artifacts else "no trace"
        print(f"   {final.job_id}: {final.state} ({marker})")
        assert final.state == FOUND

    health = service.health()
    print(f"   /healthz: ok={health['ok']} jobs={health['jobs']} "
          f"queue_depth={health['queue_depth']}")
    snapshot = service.metrics_snapshot()["metrics"]
    for name in ("esd_service_jobs_submitted_total",
                 "esd_solver_queries_total", "esd_job_seconds"):
        entry = snapshot[name]
        shown = entry.get("value", f"count={entry.get('count')}")
        print(f"   {name} = {shown}")
    # `repro serve` renders this as Prometheus text on GET /metrics:
    families = [line for line in service.prometheus_text().splitlines()
                if line.startswith("# TYPE")]
    print(f"   /metrics: {len(families)} metric families in Prometheus "
          "text exposition format")
    service.shutdown()
    print("\ndone.")


if __name__ == "__main__":
    main()
