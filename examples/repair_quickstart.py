"""Report in, verified patch out: the automated repair pipeline.

ESD's end state used to be a synthesized execution plus a *manual*
patch-verification loop (see examples/triage_and_patch.py).  The repair
subsystem automates the other half:

    report --> synthesize failing execution        (ESD, paper sections 2-5)
           --> synthesize passing executions       (clean symbolic paths)
           --> localize (Ochiai over stepper coverage spectra)
           --> patch    (templates + symbolic holes + the solver)
           --> validate (paper section 8: ESD can no longer synthesize the
                         report; passing executions replay identically)

Run:  python examples/repair_quickstart.py
"""

from repro import ReproSession
from repro.core import ESDConfig
from repro.repair import RepairConfig
from repro.search import SearchBudget
from repro.workloads import get


def main() -> None:
    workload = get("tac")  # the coreutils `tac` segfault from paper Table 1
    config = ESDConfig(budget=SearchBudget(max_seconds=60))
    session = ReproSession.from_source(workload.source, "tac", config=config)
    report = workload.make_report()

    print("== step 1: where is the fault? ==")
    ranking = session.localize(report)
    for rank, suspect in enumerate(ranking.top(3), 1):
        line = workload.source.splitlines()[suspect.line - 1].strip()
        print(f"   #{rank} {suspect.function}:{suspect.line} "
              f"(score {suspect.score:.3f}"
              + (", end site" if suspect.boosted else "") + f")  {line}")

    print("\n== step 2: synthesize and validate a patch ==")
    result = session.repair(report, config=RepairConfig(esd=config))
    assert result.found, f"repair failed: {result.reason}"
    patch = result.patch
    print(f"   template:   {patch.candidate.kind}")
    print(f"   edit:       {patch.description}")
    print(f"   candidates: {result.candidates_tried} tried")

    validation = patch.validation
    print("\n== step 3: the paper's criterion ==")
    print(f"   ESD re-synthesis against the patched module: "
          f"{'still finds the bug!' if validation.resynthesis_found else 'nothing -- goal unreachable'}")
    print(f"   passing executions preserved: "
          f"{sum(r.preserved for r in validation.passing)}"
          f"/{len(validation.passing)} "
          f"({validation.identical_replays} replayed byte-identically)")

    # The patch is plain data: store it, ship it, re-apply it to a freshly
    # compiled module (what the service's `repair` job kind persists in the
    # content-addressed artifact store).
    from repro.lang import compile_source

    patched = patch.apply_to(compile_source(workload.source, "tac"))
    verify = ReproSession(patched, config=config).synthesize(report)
    print(f"\n   independent re-check on a re-applied patch: "
          f"{'bug still synthesizable' if verify.found else 'verified fixed'}")
    assert not verify.found


if __name__ == "__main__":
    main()
