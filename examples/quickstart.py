"""Quickstart: the paper's Listing 1, end to end.

A two-thread program deadlocks only if ``getchar() == 'm'``, the MODE
environment variable starts with 'Y', *and* one thread is preempted right
after an unlock.  The end user hits it once and files a bug report with a
coredump.  ESD synthesizes -- from the coredump alone -- the inputs and the
thread schedule that reproduce it, and the developer replays it under a
debugger, deterministically, as many times as needed.

Run:  python examples/quickstart.py
"""

from repro import ReproSession
from repro.core import ESDConfig
from repro.debugger import Debugger
from repro.search import SearchBudget
from repro.workloads import LISTING1


def main() -> None:
    # --- the end user's unlucky run (we never show ESD these inputs) -------
    print("== 1. the end-user run crashes; a coredump is captured ==")
    report = LISTING1.make_report()
    module = LISTING1.compile()
    dump = report.coredump
    print(f"   program:       {dump.program}")
    print(f"   manifestation: {dump.manifestation}")
    for thread in dump.blocked_threads():
        top = thread.top
        print(f"   thread {thread.tid}: blocked on {thread.blocked_resource} "
              f"at {top.function} line {top.line}")

    # --- repro synth: coredump in, execution file out ----------------------
    print("\n== 2. ESD synthesizes an execution from the coredump ==")
    session = ReproSession(
        module, config=ESDConfig(budget=SearchBudget(max_seconds=120))
    )
    result = session.synthesize(report)
    assert result.found, f"synthesis failed: {result.reason}"
    execution = result.execution_file
    print(f"   synthesized in {result.total_seconds:.2f}s "
          f"({result.instructions} instructions explored)")
    print(f"   inferred stdin: {[chr(b) for b in execution.inputs.stdin]}")
    print(f"   inferred env:   {execution.inputs.env}")
    print(f"   schedule:       {len(execution.strict_schedule)} serial segments, "
          f"{len(execution.happens_before)} happens-before events")

    # --- repro play: deterministic playback --------------------------------
    print("\n== 3. playback reproduces the deadlock deterministically ==")
    for mode in ("strict", "happens-before"):
        playback = session.play_back(execution, mode=mode)
        assert playback.bug_reproduced
        print(f"   {mode:15s} -> {playback.bug.kind.value} reproduced "
              f"({playback.steps} instructions)")

    # --- attach the debugger ------------------------------------------------
    print("\n== 4. inspect the execution in the debugger ==")
    debugger = Debugger(module, execution)
    debugger.break_at("critical_section")
    stop = debugger.cont()
    print(f"   stopped: {stop.reason} in {stop.function} at line {stop.line}")
    print(f"   mode = {debugger.read_var('mode')}, idx = {debugger.read_var('idx')}")
    stop = debugger.cont()  # the second thread arrives too
    final = debugger.cont()
    print(f"   continuing to the end: {final.reason}")
    for row in debugger.info_threads():
        print(f"   {row}")


if __name__ == "__main__":
    main()
