"""Service quickstart: a batch of bug reports through the job API.

The job model turns ESD from a blocking library call into a service: you
submit versioned, JSON-serializable job specs, a bounded scheduler drains
them from a priority queue, every artifact lands in a content-addressed
store, and concurrent jobs on one program share a single static-analysis
pass and one solver cache.

This example runs everything in-process (an in-memory store, no HTTP);
`repro serve` exposes exactly the same service over HTTP + a spool
directory, with `repro submit|status|fetch` as clients.

Run:  python examples/service_quickstart.py
"""

import json
import time

from repro.api.jobs import FOUND, TERMINAL_STATES, JobSpec
from repro.core import ExecutionFile
from repro.service import ReproService
from repro.workloads import get


def main() -> None:
    # --- a stream of reports against one program ---------------------------
    print("== 1. four bug reports arrive for 'tac' ==")
    workload = get("tac")
    reports = []
    for i in range(4):
        report = workload.make_report()
        report.description = f"ticket #{1042 + i}"  # distinct job specs
        reports.append(report)

    # --- submit them all as jobs -------------------------------------------
    print("\n== 2. submit the batch; the queue runs 4 jobs concurrently ==")
    service = ReproService(max_workers=4)
    records = [
        service.submit(JobSpec(workload=workload.name, report=report,
                               priority=i))
        for i, report in enumerate(reports)
    ]
    for record in records:
        print(f"   {record.job_id}: {record.state}")

    # A duplicate submission dedupes via the spec's store digest:
    duplicate = service.submit(JobSpec(workload=workload.name,
                                       report=reports[0], priority=0))
    print(f"   duplicate submit -> existing job {duplicate.job_id}")

    # --- poll to completion -------------------------------------------------
    print("\n== 3. poll the job lifecycle to completion ==")
    pending = {record.job_id for record in records}
    while pending:
        for job_id in sorted(pending):
            record = service.job(job_id)
            if record.state in TERMINAL_STATES:
                pending.discard(job_id)
                print(f"   {job_id}: {record.state} "
                      f"({record.result['instructions']} instructions)")
        time.sleep(0.05)

    # One static-analysis pass served all four jobs:
    program = service.programs()[f"workload:{workload.name}"]
    print(f"   static distance builds across 4 jobs: "
          f"{program.static_stats.distance_builds}")

    # --- fetch and replay the artifact --------------------------------------
    print("\n== 4. fetch an artifact from the store and play it back ==")
    job = records[0]
    final = service.job(job.job_id)
    assert final.state == FOUND
    digest = final.artifacts["execution"]
    execution = ExecutionFile.from_dict(
        json.loads(service.fetch_artifact(job.job_id))
    )
    print(f"   artifact {digest[:16]}…: {execution.bug_summary}")

    from repro.api import ReproSession

    playback = ReproSession(workload.compile()).play_back(execution)
    assert playback.bug_reproduced
    print("   playback reproduced the bug deterministically")

    service.shutdown()
    print("\nAll four jobs served by one static pass; same API over HTTP:")
    print("  repro serve --store repro-store &")
    print("  repro submit --workload tac --wait && repro fetch <job-id>")


if __name__ == "__main__":
    main()
