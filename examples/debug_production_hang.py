"""Debugging a production hang: the minidb (SQLite #1672 analogue) deadlock.

A database server hangs in production after weeks of uptime.  The operator
grabs a core of the hung process -- per-thread stacks, nothing else; there
was no tracing enabled (that is ESD's whole premise).  This example walks
the developer-side workflow: goal extraction, synthesis, and a debugger
session that exposes the lock-order inversion in the custom recursive lock.

Run:  python examples/debug_production_hang.py
"""

from repro import ReproSession
from repro.core import ESDConfig, extract_goal
from repro.debugger import Debugger
from repro.search import SearchBudget
from repro.workloads import HAWKNL, MINIDB


def investigate(workload) -> None:
    print(f"==== {workload.name}: {workload.description} ====")
    module = workload.compile()
    report = workload.make_report()

    goal = extract_goal(module, report)
    print(f"goal <B, C>: {goal.description}")

    session = ReproSession(
        module, config=ESDConfig(budget=SearchBudget(max_seconds=120))
    )
    result = session.synthesize(report)
    assert result.found, result.reason
    execution = result.execution_file
    print(f"synthesized in {result.total_seconds:.2f}s; "
          f"env = {execution.inputs.env}")

    playback = session.play_back(execution, mode="strict")
    assert playback.bug_reproduced
    print(f"playback: {playback.bug.summary()}")

    # A debugging session: find who holds what.
    debugger = Debugger(module, execution)
    stop = debugger.cont()
    while stop.reason == "breakpoint":
        stop = debugger.cont()
    print("threads at the deadlock:")
    for row in debugger.info_threads():
        print(f"  {row}")
    for edge in debugger.state.bug.cycle:
        print(f"  thread {edge.waiter} waits for {edge.resource} "
              f"held by thread {edge.holder}")
    print()


def main() -> None:
    investigate(MINIDB)
    investigate(HAWKNL)


if __name__ == "__main__":
    main()
