"""The ghttpd scenario: a crash report whose call stack was smashed.

The ghttpd GET-request buffer overflow destroys the stack, so the coredump's
faulting-thread backtrace is a single garbled frame (the paper repaired this
by hand with gdb; section 8 describes automating it).  This example shows
the automated repair -- call-graph-based stack reconstruction -- followed by
synthesis of a request that overflows the log buffer, and playback.

Run:  python examples/debug_corrupt_coredump.py
"""

from repro import ReproSession
from repro.coredump import repair_stack
from repro.core import ESDConfig
from repro.search import SearchBudget
from repro.workloads import GHTTPD


def main() -> None:
    module = GHTTPD.compile()
    report = GHTTPD.make_report()
    dump = report.coredump

    print("== the coredump as filed ==")
    print(f"   corrupted: {dump.corrupted}")
    faulting = dump.thread(dump.faulting_tid)
    print(f"   faulting thread backtrace: {len(faulting.frames)} frame(s)")
    for frame in faulting.frames:
        print(f"     {frame.function} at line {frame.line}")

    print("\n== automated stack reconstruction ==")
    repaired = repair_stack(dump, module)
    for frame in repaired.thread(dump.faulting_tid).frames:
        print(f"     {frame.function} at line {frame.line}")

    print("\n== synthesis (repair happens automatically inside) ==")
    session = ReproSession(
        module, config=ESDConfig(budget=SearchBudget(max_seconds=120))
    )
    result = session.synthesize(report)
    assert result.found, result.reason
    request = result.execution_file.inputs.buffers["request"]
    text = "".join(chr(b) if 32 <= b < 127 else "?" for b in request)
    print(f"   synthesized request ({len(request)} bytes): {text!r}")
    url_len = len(text[4:].split(" ")[0].rstrip("\x00?"))
    print(f"   URL length {url_len}: long enough to overflow the 24-cell log buffer")

    playback = session.play_back(result.execution_file, mode="strict")
    assert playback.bug_reproduced
    print(f"\n== playback == \n   {playback.bug.summary()}")


if __name__ == "__main__":
    main()
