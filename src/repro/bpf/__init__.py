"""BPF: synthetic buggy-program generator for the performance analysis."""

from .generator import BPFParams, BPFProgram, generate

__all__ = ["BPFParams", "BPFProgram", "generate"]
