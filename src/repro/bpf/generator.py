"""BPF: the synthetic buggy-program family (paper section 7.3).

"BPF produces synthetic programs that hang and/or crash.  These programs
have conditional branch instructions that depend on program inputs.  When
using more than one thread, the crash/hang scenarios depend on both the
thread schedule and program inputs.  BPF allows direct control of five
parameters for program generation: number of program inputs, number of total
branches, number of branches depending (directly or indirectly) on inputs,
number of threads, and number of shared locks."

A generated program:

* reads ``num_inputs`` bytes from stdin into globals;
* runs a cascade of *stage* functions containing ``num_branches`` two-way
  branches.  ``num_input_branches`` of them test expressions over the
  inputs (directly or through derived globals); the rest test loop-carried
  counters.  A few branches are *key* branches whose taken side sets a gate
  flag; most are noise whose sides merely shape filler state;
* spawns ``num_threads`` workers over ``num_locks`` mutexes.  Workers
  normally acquire locks in ascending order; when every gate flag is set,
  one worker takes its two locks in descending order -- the single deadlock
  bug, reachable only with the right inputs *and* the right preemption.

Programs are deterministic in ``seed``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from .. import ir
from ..baselines import Directive
from ..symbex import BugKind, RecordedInputs
from ..workloads.base import Workload


@dataclass(slots=True)
class BPFParams:
    num_inputs: int = 4
    num_branches: int = 16
    num_input_branches: int = 16  # paper sweep: every branch input-dependent
    num_threads: int = 2
    num_locks: int = 2
    num_key_branches: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_inputs < 1:
            raise ValueError("need at least one input")
        if self.num_threads < 2:
            raise ValueError("a deadlock needs at least two threads")
        if self.num_locks < 2:
            raise ValueError("a deadlock needs at least two locks")
        if self.num_input_branches > self.num_branches:
            raise ValueError("input branches cannot exceed total branches")
        self.num_key_branches = max(1, min(self.num_key_branches, self.num_branches))


@dataclass(slots=True)
class BPFProgram:
    params: BPFParams
    source: str
    key_inputs: dict[int, int]  # input index -> byte value satisfying the gate
    workload: "Workload" = field(repr=False, default=None)  # type: ignore[assignment]

    @property
    def kloc(self) -> float:
        return len(self.source.splitlines()) / 1000.0


_BRANCHES_PER_STAGE = 8


def generate(params: BPFParams) -> BPFProgram:
    rng = random.Random(params.seed)
    lines: list[str] = ["// BPF-generated program", ""]

    # -- globals ------------------------------------------------------------
    for i in range(params.num_inputs):
        lines.append(f"int in{i} = 0;")
    for i in range(params.num_key_branches):
        lines.append(f"int flag{i} = 0;")
    for i in range(params.num_locks):
        lines.append(f"mutex L{i};")
    lines.append("int gate = 0;")
    lines.append("int noise = 0;")
    lines.append("int acc = 1;")
    lines.append("int done = 0;")
    lines.append("")

    # -- branch cascade ------------------------------------------------------
    # Choose which branch indices are key branches (spread evenly) and which
    # depend on inputs.  Key branches test dedicated inputs; noise branches
    # test the remaining inputs, so noise decisions never make the deadlock
    # gate unsatisfiable (each generated program has exactly one reachable
    # deadlock, per the paper).
    total = params.num_branches
    key_positions = sorted(
        rng.sample(range(total), params.num_key_branches)
    )
    input_positions = set(
        rng.sample(range(total), params.num_input_branches)
    )
    input_positions.update(key_positions)  # key branches always test inputs
    key_input_pool = list(range(min(params.num_key_branches, params.num_inputs)))
    noise_input_pool = [
        i for i in range(params.num_inputs) if i not in key_input_pool
    ] or key_input_pool

    key_inputs: dict[int, int] = {}
    stage_count = (total + _BRANCHES_PER_STAGE - 1) // _BRANCHES_PER_STAGE
    branch_index = 0
    for stage in range(stage_count):
        lines.append(f"void stage{stage}(int round) {{")
        for _ in range(_BRANCHES_PER_STAGE):
            if branch_index >= total:
                break
            position = branch_index
            branch_index += 1
            if position in key_positions:
                key_number = key_positions.index(position)
                unused = [i for i in key_input_pool if i not in key_inputs]
                if unused:
                    input_index = rng.choice(unused)
                    value = rng.randrange(33, 127)
                    key_inputs[input_index] = value
                else:
                    # More key branches than key inputs: reuse an input with
                    # the value already required for it, keeping the gate
                    # satisfiable.
                    input_index = rng.choice(sorted(key_inputs))
                    value = key_inputs[input_index]
                offset = rng.randrange(1, 9)
                lines.append(
                    f"    if (in{input_index} + {offset} == {value + offset}) {{"
                )
                lines.append(f"        flag{key_number} = 1;")
                lines.append("    } else {")
                lines.append(f"        noise = noise + {position + 1};")
                lines.append("    }")
            elif position in input_positions:
                input_index = rng.choice(noise_input_pool)
                threshold = rng.randrange(1, 255)
                op = rng.choice(["<", ">", "<=", ">=", "==", "!="])
                lines.append(f"    if (in{input_index} {op} {threshold}) {{")
                lines.append(f"        noise = noise + {position % 7 + 1};")
                lines.append("    } else {")
                lines.append(f"        acc = acc * 3 + {position % 5};")
                lines.append("    }")
            else:
                modulus = rng.randrange(2, 7)
                lines.append(f"    if ((round + {position}) % {modulus} == 0) {{")
                lines.append(f"        noise = noise + 1;")
                lines.append("    } else {")
                lines.append(f"        acc = acc + {position % 9};")
                lines.append("    }")
        lines.append("}")
        lines.append("")

    # -- gate computation ------------------------------------------------------
    conjuncts = " && ".join(
        f"flag{i} == 1" for i in range(params.num_key_branches)
    )
    lines.append("void compute_gate(int unused) {")
    lines.append(f"    if ({conjuncts}) {{")
    lines.append("        gate = 1;")
    lines.append("    }")
    lines.append("}")
    lines.append("")

    # -- workers ------------------------------------------------------------
    # Worker 0 is the inverted one (under the gate); the rest lock ascending.
    first, second = 0, 1
    lines.append("void worker0(int tid) {")
    lines.append("    if (gate == 1) {")
    lines.append(f"        lock(L{second});")
    lines.append(f"        lock(L{first});")
    lines.append("        done = done + 1;")
    lines.append(f"        unlock(L{first});")
    lines.append(f"        unlock(L{second});")
    lines.append("    } else {")
    lines.append(f"        lock(L{first});")
    lines.append("        done = done + 1;")
    lines.append(f"        unlock(L{first});")
    lines.append("    }")
    lines.append("}")
    lines.append("")
    for worker in range(1, params.num_threads):
        lock_a = (worker - 1) % params.num_locks
        lock_b = (lock_a + 1) % params.num_locks
        if worker == 1:
            lock_a, lock_b = first, second
        lines.append(f"void worker{worker}(int tid) {{")
        lines.append(f"    lock(L{lock_a});")
        lines.append(f"    lock(L{lock_b});")
        lines.append("    done = done + 1;")
        lines.append(f"    unlock(L{lock_b});")
        lines.append(f"    unlock(L{lock_a});")
        lines.append("}")
        lines.append("")

    # -- main ------------------------------------------------------------
    lines.append("int main() {")
    for i in range(params.num_inputs):
        lines.append(f"    in{i} = getchar();")
    for stage in range(stage_count):
        lines.append(f"    stage{stage}({stage});")
    lines.append("    compute_gate(0);")
    for worker in range(params.num_threads):
        lines.append(f"    int t{worker} = spawn(worker{worker}, {worker});")
    for worker in range(params.num_threads):
        lines.append(f"    join(t{worker});")
    lines.append("    return done;")
    lines.append("}")

    source = "\n".join(lines) + "\n"
    program = BPFProgram(params=params, source=source, key_inputs=key_inputs)
    program.workload = _make_workload(program)
    return program


def _make_workload(program: BPFProgram) -> Workload:
    params = program.params
    stdin = [
        program.key_inputs.get(i, ord("n")) for i in range(params.num_inputs)
    ]

    def directives(module: ir.Module) -> list[Directive]:
        # The unlucky schedule: preempt worker0 (thread 1) right after it
        # acquires its first lock under the gate; worker1 (thread 2) then
        # takes the locks in ascending order and the two block on each other.
        locks = [
            ref for ref, instr in module.functions["worker0"].iter_instructions()
            if isinstance(instr, ir.MutexLock)
        ]
        return [Directive(locks[0], 1, 2)]

    name = (
        f"bpf_b{params.num_branches}_i{params.num_inputs}"
        f"_t{params.num_threads}_l{params.num_locks}_s{params.seed}"
    )
    return Workload(
        name=name,
        source=program.source,
        bug_type="deadlock",
        expected_kind=BugKind.DEADLOCK,
        description=(
            f"BPF deadlock: {params.num_branches} branches, "
            f"{params.num_inputs} inputs, {params.num_threads} threads, "
            f"{params.num_locks} locks"
        ),
        trigger_inputs=RecordedInputs(stdin=stdin),
        directives=directives,
    )
