"""The symbolic virtual machine.

Interprets IR one instruction per :meth:`Executor.step` call, the granularity
at which the paper's search strategies pick states off priority queues
(section 3.3).  Values are concrete Python ints, symbolic expressions,
pointers, or function pointers; branches over symbolic values fork states,
accumulating path constraints.

The same executor runs fully concrete programs (playback, coredump
generation): with a :class:`~repro.symbex.env.ConcreteEnv` no symbolic values
ever appear, so no forking happens and execution is deterministic under the
scheduling policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Union

from .. import ir
from ..analysis.wp import StaticPruneStats, _FalseCond
from ..ir import InstrRef
from ..solver import Solver
from ..solver.expr import (
    Atom,
    Expr,
    Var,
    binop,
    evaluate,
    holds_under,
    make_var,
    negate,
    truthy,
    unop,
)
from .bugs import BugInfo, BugKind, DeadlockEdge
from .env import InputProvider, SymbolicEnv
from .memory import (
    DoubleFree,
    FnPtr,
    InvalidFree,
    MemoryError_,
    OutOfBounds,
    Pointer,
    UseAfterFree,
)
from .policy import SchedulerPolicy
from .state import (
    BLOCKED,
    EXITED,
    RUNNABLE,
    AddrKey,
    ExecutionState,
    Frame,
    ThreadState,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..analysis.absint import ModuleFacts
    from ..analysis.wp import NecessaryConditions
    from .state import MutexRec

Value = Union[int, Expr, Pointer, FnPtr]


# Symbolic-hole variables (constraint-based repair).  One hole denotes one
# unknown *program constant*, so every evaluation of the same hole -- across
# states, executors, and separate runs over the failing and passing inputs --
# must yield the *same* solver variable: the constraints those runs produce
# are later conjoined into a single query whose model binds the hole.  Repair
# generates globally fresh hole names, so a long-lived daemon running repair
# jobs would grow the registry forever; the table is bounded by evicting the
# oldest entries (insertion order), which only ever touches holes of long-
# finished candidates -- the live candidate's one or two holes are always
# the newest.
_HOLE_VARS: dict[tuple[str, int, int], Var] = {}
_HOLE_VARS_LIMIT = 4096


def hole_var(hole: "ir.Hole") -> Var:
    key = (hole.name, hole.lo, hole.hi)
    var = _HOLE_VARS.get(key)
    if var is None:
        while len(_HOLE_VARS) >= _HOLE_VARS_LIMIT:
            _HOLE_VARS.pop(next(iter(_HOLE_VARS)))
        var = make_var(f"hole:{hole.name}", hole.lo, hole.hi)
        _HOLE_VARS[key] = var
    return var


class _ExecError(Exception):
    """Internal: converted into a bug state by the dispatcher."""

    def __init__(self, kind: BugKind, message: str) -> None:
        super().__init__(message)
        self.kind = kind
        self.message = message


@dataclass(slots=True)
class ExecConfig:
    max_steps_per_state: int = 2_000_000
    string_size: int = 8
    max_args: int = 4
    # Treat accesses to these instruction refs as racy preemption points.
    detect_deadlocks: bool = True
    # Answer branch-feasibility queries by evaluating the state's last
    # satisfying assignment before solving (off only for ablations, e.g.
    # bench_solver's baseline).
    model_reuse: bool = True


@dataclass(slots=True)
class ExecStats:
    instructions: int = 0
    # Re-executions of a blocking sync instruction after its thread was woken
    # (the pc stays on a contended lock/wait/join, so the instruction runs
    # again).  ``instructions - replayed`` is the count of *distinct*
    # instruction executions, which is what search budgets charge.
    replayed: int = 0
    forks: int = 0
    sched_forks: int = 0
    states_created: int = 0
    solver_forks: int = 0


class Executor:
    """Executes IR modules symbolically or concretely."""

    def __init__(
        self,
        module: ir.Module,
        solver: Optional[Solver] = None,
        env: Optional[InputProvider] = None,
        policy: Optional[SchedulerPolicy] = None,
        config: Optional[ExecConfig] = None,
        absint: Optional["ModuleFacts"] = None,
        wp: Optional["NecessaryConditions"] = None,
        wp_audit: bool = False,
    ) -> None:
        self.module = module
        self.config = config or ExecConfig()
        self.solver = solver or Solver()
        self.env = env or SymbolicEnv(self.config.string_size, self.config.max_args)
        self.policy = policy or SchedulerPolicy()
        self.stats = ExecStats()
        # Abstract-interpretation facts for static pruning.  Callers must
        # only pass facts whose ``pruning_sound`` property holds; every
        # consulting site adds the *same* constraints the probed path would
        # have added, so the synthesized artifact is byte-identical with
        # pruning on or off -- only the feasibility probes are skipped.
        self.absint = absint
        if absint is not None and not absint.pruning_sound:
            raise ValueError(
                "absint facts for module "
                f"{absint.module_name!r} are not pruning-sound"
            )
        # Goal-directed necessary preconditions: a branch direction whose
        # target block's condition is refuted by the state's concrete store
        # (and with no outer stack frame through which a return could still
        # reach the goal) cannot lead to the goal, so it is pruned without a
        # feasibility probe.  Conditions are *necessary*, so pruning never
        # loses a goal-reaching path; it can only skip states that at most
        # witness *other* bugs.  With ``wp_audit`` nothing is pruned --
        # successors down a refuted direction are tagged in ``state.meta``
        # instead, so tests can assert the goal state never carries the tag.
        self.wp = wp
        self.wp_audit = wp_audit
        self.prune_stats = StaticPruneStats()
        # Optional repro.obs tracer, attached by the owner of the search
        # (never consulted in step() -- the hot loop stays telemetry-free;
        # bug discoveries are rare enough to record as instant marks).
        self.tracer = None
        # Optional repro.obs flight recorder, attached the same way.  The
        # engine does the per-pick recording from outside; the executor
        # only contributes rare instant marks (bug discoveries), and
        # attributes its kills by tagging ``state.meta['killed']`` at the
        # pruning sites, which the engine reads when the state comes back.
        self.flight = None

    # ------------------------------------------------------------------
    # State construction
    # ------------------------------------------------------------------

    def initial_state(self, entry: str = "main") -> ExecutionState:
        if entry not in self.module.functions:
            raise ValueError(f"no entry function {entry!r}")
        state = ExecutionState()
        for var in self.module.globals.values():
            obj = state.new_object(var.size, "global", var.name, init=list(var.init))
            state.globals[var.name] = obj.obj_id
        thread = ThreadState(0, entry)
        thread.frames.append(Frame(entry, self.module.functions[entry].entry))
        state.threads[0] = thread
        state.current_tid = 0
        return state

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------

    def step(self, state: ExecutionState) -> list[ExecutionState]:
        """Execute one instruction (or one scheduling decision) in ``state``.

        Returns every successor state, including terminated ones (bug/exit);
        callers must check ``state.terminated``.
        """
        if state.terminated:
            return [state]
        thread = state.threads.get(state.current_tid)
        if thread is None or thread.status != RUNNABLE:
            self._reschedule(state)
            return [state]
        if state.steps >= self.config.max_steps_per_state:
            state.status = "infeasible"
            state.meta["killed"] = "step-limit"
            return [state]

        instr = self._fetch(state)
        state.note_instruction()
        self.stats.instructions += 1
        if thread.replaying:
            # Woken after blocking here: this is a retry of an instruction
            # that was already charged when the thread first attempted it.
            thread.replaying = False
            self.stats.replayed += 1
        try:
            successors = self._dispatch(state, instr)
        except _ExecError as err:
            self._mark_bug(state, err.kind, instr, err.message)
            return [state]
        except MemoryError_ as err:
            self._mark_bug(state, _memory_bug_kind(err), instr, str(err))
            return [state]

        results: list[ExecutionState] = []
        for succ in successors:
            if not succ.terminated:
                current = succ.threads.get(succ.current_tid)
                if current is None or current.status != RUNNABLE:
                    self._reschedule(succ)
            results.append(succ)
        return results

    def run_to_completion(
        self, state: ExecutionState, max_steps: int = 5_000_000
    ) -> ExecutionState:
        """Drive a (concrete, non-forking) state until it terminates."""
        steps = 0
        while not state.terminated:
            successors = self.step(state)
            if len(successors) != 1:
                raise RuntimeError(
                    "run_to_completion requires a deterministic execution; "
                    f"got {len(successors)} successors"
                )
            state = successors[0]
            steps += 1
            if steps > max_steps:
                raise RuntimeError("concrete execution exceeded step budget")
        return state

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def _fetch(self, state: ExecutionState) -> ir.Instr:
        frame = state.frame
        block = self.module.functions[frame.function].blocks[frame.block]
        return block.instruction_at(frame.index)

    def _dispatch(self, state: ExecutionState, instr: ir.Instr) -> list[ExecutionState]:
        handler = _HANDLERS.get(type(instr))
        if handler is None:  # pragma: no cover - verifier rules this out
            raise _ExecError(BugKind.ABORT, f"unhandled instruction {instr!r}")
        return handler(self, state, instr)

    def _advance(self, state: ExecutionState) -> None:
        state.frame.index += 1

    def _mark_bug(
        self,
        state: ExecutionState,
        kind: BugKind,
        instr: ir.Instr,
        message: str,
        *,
        fault_value: Optional[int] = None,
        cycle: Optional[list[DeadlockEdge]] = None,
    ) -> None:
        state.status = "bug"
        state.bug = BugInfo(
            kind=kind,
            ref=state.pc,
            tid=state.current_tid,
            message=message,
            line=instr.line,
            fault_value=fault_value,
            cycle=cycle or [],
        )
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.mark(f"bug:{kind.value}", "bug",
                        {"line": instr.line, "tid": state.current_tid})
        flight = self.flight
        if flight is not None and flight.enabled:
            flight.mark(f"bug:{kind.value}",
                        f"line={instr.line} tid={state.current_tid}")

    # ------------------------------------------------------------------
    # Value evaluation
    # ------------------------------------------------------------------

    def _eval(self, state: ExecutionState, value: ir.Value) -> Value:
        if isinstance(value, ir.Const):
            return value.value
        if isinstance(value, ir.Reg):
            try:
                return state.frame.regs[value.name]
            except KeyError:
                raise _ExecError(
                    BugKind.WILD_POINTER,
                    f"use of uninitialized register %{value.name}",
                ) from None
        if isinstance(value, ir.GlobalRef):
            return Pointer(state.globals[value.name], 0)
        if isinstance(value, ir.FuncRef):
            return FnPtr(value.name)
        if isinstance(value, ir.Hole):
            return hole_var(value)
        raise TypeError(f"unknown operand {value!r}")  # pragma: no cover

    def _set(self, state: ExecutionState, dst: ir.Value, value: Value) -> None:
        assert isinstance(dst, ir.Reg)
        state.frame.regs[dst.name] = value

    # -- arithmetic over mixed concrete/symbolic/pointer values ----------------

    def _compute_binop(self, op: str, lhs: Value, rhs: Value) -> Value:
        lhs_ptr = isinstance(lhs, Pointer)
        rhs_ptr = isinstance(rhs, Pointer)
        if not lhs_ptr and not rhs_ptr:
            if isinstance(lhs, FnPtr) or isinstance(rhs, FnPtr):
                return self._fnptr_binop(op, lhs, rhs)
            return binop(op, lhs, rhs)

        if op == "+":
            if lhs_ptr and not rhs_ptr and not isinstance(rhs, FnPtr):
                return Pointer(lhs.obj, binop("+", lhs.offset, rhs))
            if rhs_ptr and not lhs_ptr and not isinstance(lhs, FnPtr):
                return Pointer(rhs.obj, binop("+", rhs.offset, lhs))
        elif op == "-":
            if lhs_ptr and rhs_ptr:
                if lhs.obj != rhs.obj:
                    raise _ExecError(
                        BugKind.WILD_POINTER,
                        "subtraction of pointers into different objects",
                    )
                return binop("-", lhs.offset, rhs.offset)
            if lhs_ptr:
                return Pointer(lhs.obj, binop("-", lhs.offset, rhs))
        elif op in ("==", "!="):
            if lhs_ptr and rhs_ptr:
                if lhs.obj == rhs.obj:
                    return binop(op, lhs.offset, rhs.offset)
                return int(op == "!=")
            # Pointer vs integer: only equal if the integer is the null
            # pointer, and live pointers are never null.
            return int(op == "!=")
        elif op in ("<", "<=", ">", ">="):
            if lhs_ptr and rhs_ptr:
                if lhs.obj == rhs.obj:
                    return binop(op, lhs.offset, rhs.offset)
                return binop(op, lhs.obj, rhs.obj)
        raise _ExecError(
            BugKind.WILD_POINTER, f"invalid pointer arithmetic: {op!r}"
        )

    def _fnptr_binop(self, op: str, lhs: Value, rhs: Value) -> int:
        if op in ("==", "!="):
            if isinstance(lhs, FnPtr) and isinstance(rhs, FnPtr):
                same = lhs.name == rhs.name
            else:
                same = False  # function pointer vs integer: equal only to null
            return int(same if op == "==" else not same)
        raise _ExecError(BugKind.WILD_POINTER, f"invalid function-pointer op {op!r}")

    @staticmethod
    def _truth_value(value: Value) -> Atom:
        """0/1 (or symbolic 0/1 expression) for a branch condition."""
        if isinstance(value, (Pointer, FnPtr)):
            return 1
        if isinstance(value, int):
            return int(value != 0)
        return truthy(value)

    # -- constraint plumbing ------------------------------------------------------

    def _feasible(self, state: ExecutionState, extra: Atom) -> bool:
        """May ``extra`` hold on this path?

        The existing path condition is satisfiable by construction (every
        constraint was feasible when added), so only the constraints sharing
        variables with ``extra`` need to be re-solved.

        Model-reuse fast path: if the state's last satisfying assignment
        also satisfies ``extra`` (and the related constraints -- a forked
        sibling may carry a model that predates its branch constraint), the
        query is SAT by witness and no solve runs.  Most branch-feasibility
        queries take this path: one concrete evaluation instead of an
        interval search.
        """
        if isinstance(extra, int):
            return extra != 0
        related = state.related_constraints(extra)
        model = state.last_model if self.config.model_reuse else None
        if model is not None:
            # Evaluate the new condition first: the common stale case is a
            # model that contradicts exactly the branch being asked about.
            if holds_under([extra], model) and holds_under(related, model):
                self.solver.stats.fastpath_hits += 1
                return True
            self.solver.stats.fastpath_misses += 1
        solution = self.solver.check(related + [extra])
        if solution.is_sat:
            merged = dict(model) if model else {}
            merged.update(solution.model)
            state.last_model = merged
        return solution.maybe_sat

    def concretize(self, state: ExecutionState, atom: Atom) -> int:
        """Pick a concrete value for ``atom`` consistent with the path
        constraints, and pin it with an equality constraint (Klee-style
        address/size concretization)."""
        if isinstance(atom, int):
            return atom
        model = self.solver.model(state.constraints)
        if model is None:
            raise _ExecError(BugKind.ABORT, "path constraints became unsatisfiable")
        value = _eval_with_defaults(atom, model)
        state.add_constraint(binop("==", atom, value))
        # A full-path model is the best possible fast-path witness: it also
        # satisfies the pin constraint just added (it produced the value).
        state.last_model = {**(state.last_model or {}), **model}
        return value

    # ------------------------------------------------------------------
    # Memory access
    # ------------------------------------------------------------------

    def _access(
        self, state: ExecutionState, addr: Value, instr: ir.Instr, is_write: bool
    ) -> tuple[list[ExecutionState], Optional[tuple[ExecutionState, int, int]]]:
        """Resolve ``addr`` for an access.

        Returns ``(bug_states, ok)`` where ``ok`` is ``(state, obj_id,
        concrete_offset)`` if an in-bounds access is possible.  Symbolic
        offsets fork an out-of-bounds bug state when the bounds can be
        violated, and are concretized on the in-bounds path.
        """
        if isinstance(addr, int):
            # Small positive addresses are offsets from a NULL base (field or
            # array access through a null pointer): the OS null page.
            kind = (
                BugKind.NULL_DEREF if 0 <= addr < 4096 else BugKind.WILD_POINTER
            )
            raise _ExecError(kind, f"dereference of address {addr}")
        if isinstance(addr, FnPtr):
            raise _ExecError(BugKind.WILD_POINTER, "dereference of function pointer")
        if isinstance(addr, Expr):
            # A symbolic non-pointer address: could be null.
            raise _ExecError(
                BugKind.NULL_DEREF, "dereference of symbolic integer address"
            )
        obj = state.address_space.get(addr.obj)
        offset = addr.offset
        if isinstance(offset, int):
            return [], (state, addr.obj, offset)

        bug_states: list[ExecutionState] = []
        oob = binop(
            "||", binop("<", offset, 0), binop(">=", offset, obj.size)
        )
        in_bounds = binop(
            "&&", binop(">=", offset, 0), binop("<", offset, obj.size)
        )
        # Static pruning: the access was proven in-bounds for every
        # execution, so the out-of-bounds fork can never materialize and
        # the in-bounds probe must succeed.  The in-bounds constraint (and
        # the offset concretization behind it) is still added unchanged.
        if self.absint is not None:
            frame = state.frame
            ref = InstrRef(frame.function, frame.block, frame.index)
            if ref in self.absint.access_safe:
                self.solver.stats.static_answers += 2
                state.add_constraint(truthy(in_bounds))
                concrete = self.concretize(state, offset)
                return [], (state, addr.obj, concrete)
        orig_model = state.last_model
        if self._feasible(state, oob):
            bug = state.fork()  # inherits the out-of-bounds model
            self.stats.states_created += 1
            bug.add_constraint(truthy(oob))
            model = self.solver.model(bug.constraints)
            fault = _eval_with_defaults(offset, model) if model else None
            op = "write" if is_write else "read"
            self._mark_bug(
                bug,
                BugKind.OUT_OF_BOUNDS,
                instr,
                f"out-of-bounds {op} at offset {fault} of {obj!r}",
                fault_value=fault,
            )
            bug_states.append(bug)
        state.last_model = orig_model  # un-poison the in-bounds probe
        if self._feasible(state, in_bounds):
            state.add_constraint(truthy(in_bounds))
            concrete = self.concretize(state, offset)
            return bug_states, (state, addr.obj, concrete)
        state.status = "infeasible"
        return bug_states, None

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def _reschedule(self, state: ExecutionState) -> None:
        """The current thread cannot run; pick another or diagnose the end."""
        next_tid = self.policy.pick_next(state)
        if next_tid is not None:
            state.switch_to(next_tid)
            return
        live = state.live_threads()
        if not live:
            state.status = "exited"
            return
        # Every live thread is blocked: a deadlock (paper section 4.1 --
        # waiting on a mutex, a condvar signal, or a join).
        if self.config.detect_deadlocks:
            cycle = self._wait_cycle(state)
            blocked = live[0]
            info = BugInfo(
                kind=BugKind.DEADLOCK,
                ref=blocked.pc,
                tid=blocked.tid,
                message="no thread can make progress",
                line=self._line_at(blocked.pc),
                cycle=cycle,
            )
            state.status = "bug"
            state.bug = info
        else:
            state.status = "infeasible"
            state.meta["killed"] = "no-runnable-thread"

    def _line_at(self, ref: InstrRef) -> int:
        try:
            return self.module.instruction(ref).line
        except KeyError:  # pragma: no cover
            return 0

    def _wait_cycle(self, state: ExecutionState) -> list[DeadlockEdge]:
        """Resource-allocation-graph cycle among blocked threads [paper 4.1]."""
        waiting: dict[int, tuple[str, Optional[int]]] = {}
        for thread in state.live_threads():
            if thread.status != BLOCKED or thread.blocked_on is None:
                continue
            kind = thread.blocked_on[0]
            if kind == "mutex":
                key = thread.blocked_on[1]
                holder = state.mutexes[key].owner if key in state.mutexes else None
                waiting[thread.tid] = (f"mutex@{key}", holder)
            elif kind == "join":
                waiting[thread.tid] = (f"thread{thread.blocked_on[1]}", thread.blocked_on[1])
            else:
                waiting[thread.tid] = (f"cond@{thread.blocked_on[1]}", None)

        for start in waiting:
            path: list[int] = []
            tid: Optional[int] = start
            while tid is not None and tid in waiting and tid not in path:
                path.append(tid)
                tid = waiting[tid][1]
            if tid is not None and tid in path:
                cycle_tids = path[path.index(tid):]
                return [
                    DeadlockEdge(t, waiting[t][0], waiting[t][1]) for t in cycle_tids
                ]
        return [DeadlockEdge(t, res, holder) for t, (res, holder) in waiting.items()]

    def _check_mutex_cycle(self, state: ExecutionState, instr: ir.Instr) -> bool:
        """After a thread blocks on a mutex: is there a circular wait already?
        Catches deadlocks among a subset of threads while others still run."""
        if not self.config.detect_deadlocks:
            return False
        origin = state.current_tid
        seen: list[int] = []
        tid = origin
        while True:
            thread = state.threads.get(tid)
            if thread is None or thread.status != BLOCKED or not thread.blocked_on:
                return False
            kind, key = thread.blocked_on[0], thread.blocked_on[1]
            if kind != "mutex":
                return False
            rec = state.mutexes.get(key)
            if rec is None or rec.owner is None:
                return False
            if rec.owner == origin or rec.owner in seen:
                seen.append(tid)
                cycle = [
                    DeadlockEdge(
                        t,
                        f"mutex@{state.threads[t].blocked_on[1]}",
                        state.mutexes[state.threads[t].blocked_on[1]].owner,
                    )
                    for t in seen
                ]
                self._mark_bug(
                    state,
                    BugKind.DEADLOCK,
                    instr,
                    "circular mutex wait",
                    cycle=cycle,
                )
                return True
            seen.append(tid)
            tid = rec.owner

    def _sync_key(self, state: ExecutionState, value: Value) -> AddrKey:
        """A mutex/condvar identity: concrete (object, offset)."""
        if not isinstance(value, Pointer):
            raise _ExecError(
                BugKind.WILD_POINTER, f"sync operation on non-pointer {value!r}"
            )
        offset = value.offset
        if isinstance(offset, Expr):
            offset = self.concretize(state, offset)
        return (value.obj, offset)

    # ------------------------------------------------------------------
    # Instruction handlers
    # ------------------------------------------------------------------

    def _exec_assign(self, state: ExecutionState, instr: ir.Assign) -> list[ExecutionState]:
        self._set(state, instr.dst, self._eval(state, instr.src))
        self._advance(state)
        return [state]

    def _exec_binop(self, state: ExecutionState, instr: ir.BinOp) -> list[ExecutionState]:
        lhs = self._eval(state, instr.lhs)
        rhs = self._eval(state, instr.rhs)
        if instr.op in ("/", "%"):
            return self._exec_division(state, instr, lhs, rhs)
        self._set(state, instr.dst, self._compute_binop(instr.op, lhs, rhs))
        self._advance(state)
        return [state]

    def _exec_division(
        self, state: ExecutionState, instr: ir.BinOp, lhs: Value, rhs: Value
    ) -> list[ExecutionState]:
        if isinstance(lhs, (Pointer, FnPtr)) or isinstance(rhs, (Pointer, FnPtr)):
            raise _ExecError(BugKind.WILD_POINTER, "division involving a pointer")
        if isinstance(rhs, int):
            if rhs == 0:
                raise _ExecError(BugKind.DIV_BY_ZERO, "division by zero")
            self._set(state, instr.dst, binop(instr.op, lhs, rhs))
            self._advance(state)
            return [state]
        # Static pruning: a divisor proven nonzero for every execution
        # cannot fork a division-by-zero bug state; the nonzero constraint
        # the surviving path carries is added unchanged.
        if self.absint is not None:
            frame = state.frame
            ref = InstrRef(frame.function, frame.block, frame.index)
            if ref in self.absint.nonzero_divisors:
                self.solver.stats.static_answers += 2
                state.add_constraint(binop("!=", rhs, 0))
                self._set(state, instr.dst, binop(instr.op, lhs, rhs))
                self._advance(state)
                return [state]
        successors: list[ExecutionState] = []
        zero = binop("==", rhs, 0)
        orig_model = state.last_model
        if self._feasible(state, zero):
            bug = state.fork()  # inherits the zero-satisfying model
            self.stats.states_created += 1
            bug.add_constraint(zero)
            self._mark_bug(bug, BugKind.DIV_BY_ZERO, instr, "division by zero")
            successors.append(bug)
        state.last_model = orig_model  # un-poison the nonzero probe
        nonzero = binop("!=", rhs, 0)
        if self._feasible(state, nonzero):
            state.add_constraint(nonzero)
            self._set(state, instr.dst, binop(instr.op, lhs, rhs))
            self._advance(state)
            successors.append(state)
        else:
            state.status = "infeasible"
            successors.append(state)
        return successors

    def _exec_unop(self, state: ExecutionState, instr: ir.UnOp) -> list[ExecutionState]:
        operand = self._eval(state, instr.value)
        if isinstance(operand, (Pointer, FnPtr)):
            if instr.op == "!":
                result: Value = 0  # pointers are truthy
            else:
                raise _ExecError(BugKind.WILD_POINTER, f"unary {instr.op} on pointer")
        else:
            result = unop(instr.op, operand)
        self._set(state, instr.dst, result)
        self._advance(state)
        return [state]

    def _exec_alloc(self, state: ExecutionState, instr: ir.Alloc) -> list[ExecutionState]:
        size_value = self._eval(state, instr.size)
        if isinstance(size_value, (Pointer, FnPtr)):
            raise _ExecError(BugKind.WILD_POINTER, "allocation with pointer size")
        size = (
            size_value if isinstance(size_value, int)
            else self.concretize(state, size_value)
        )
        if size < 0:
            raise _ExecError(BugKind.OUT_OF_BOUNDS, f"allocation of negative size {size}")
        kind = "heap" if instr.heap else "stack"
        obj = state.new_object(max(size, 0), kind, instr.name)
        if not instr.heap:
            state.frame.allocas.append(obj.obj_id)
        self._set(state, instr.dst, Pointer(obj.obj_id, 0))
        self._advance(state)
        return [state]

    def _exec_free(self, state: ExecutionState, instr: ir.Free) -> list[ExecutionState]:
        ptr = self._eval(state, instr.ptr)
        if isinstance(ptr, int):
            if ptr == 0:
                self._advance(state)  # free(NULL) is a no-op, as in C
                return [state]
            raise _ExecError(BugKind.INVALID_FREE, f"free of integer address {ptr}")
        if not isinstance(ptr, Pointer):
            raise _ExecError(BugKind.INVALID_FREE, f"free of {ptr!r}")
        offset = ptr.offset
        if isinstance(offset, Expr):
            offset = self.concretize(state, offset)
        state.address_space.free(ptr.obj, offset)
        self._advance(state)
        return [state]

    def _exec_load(self, state: ExecutionState, instr: ir.Load) -> list[ExecutionState]:
        addr = self._eval(state, instr.addr)
        extra = self._memory_hook(state, instr, addr, is_write=False)
        bug_states, ok = self._access(state, addr, instr, is_write=False)
        if ok is not None:
            ok_state, obj_id, offset = ok
            value = ok_state.address_space.read(obj_id, offset)
            self._set(ok_state, instr.dst, value)
            self._advance(ok_state)
            return extra + bug_states + [ok_state]
        return extra + bug_states + ([state] if state.terminated or state.status == "infeasible" else [])

    def _exec_store(self, state: ExecutionState, instr: ir.Store) -> list[ExecutionState]:
        addr = self._eval(state, instr.addr)
        value = self._eval(state, instr.value)
        extra = self._memory_hook(state, instr, addr, is_write=True)
        bug_states, ok = self._access(state, addr, instr, is_write=True)
        if ok is not None:
            ok_state, obj_id, offset = ok
            ok_state.address_space.write(obj_id, offset, value)
            self._advance(ok_state)
            return extra + bug_states + [ok_state]
        return extra + bug_states + ([state] if state.terminated or state.status == "infeasible" else [])

    def _memory_hook(
        self, state: ExecutionState, instr: ir.Instr, addr: Value, is_write: bool
    ) -> list[ExecutionState]:
        """Race-detection / racy-preemption hook for shared-memory accesses."""
        if not self.policy.wants_memory_hooks(state):
            return []
        if not isinstance(addr, Pointer):
            return []
        offset = addr.offset
        if isinstance(offset, Expr):
            return []  # symbolic offsets are concretized by _access afterwards
        obj = state.address_space.objects.get(addr.obj)
        if obj is None or obj.kind == "stack":
            return []
        forks = self.policy.on_memory_access(
            self, state, instr, state.pc, (addr.obj, offset), is_write
        )
        self.stats.sched_forks += len(forks)
        return forks

    def _exec_gep(self, state: ExecutionState, instr: ir.Gep) -> list[ExecutionState]:
        base = self._eval(state, instr.base)
        offset = self._eval(state, instr.offset)
        if isinstance(offset, (Pointer, FnPtr)):
            raise _ExecError(BugKind.WILD_POINTER, "pointer used as index")
        if isinstance(base, Pointer):
            result: Value = Pointer(base.obj, binop("+", base.offset, offset))
        elif isinstance(base, int):
            result = binop("+", base, offset) if base else offset
            if isinstance(result, int) and base == 0:
                # Indexing off the null pointer: keep it null-like so the
                # dereference reports a null dereference.
                result = 0 if offset == 0 else result
        elif isinstance(base, Expr):
            result = binop("+", base, offset)
        else:
            raise _ExecError(BugKind.WILD_POINTER, "indexing a function pointer")
        self._set(state, instr.dst, result)
        self._advance(state)
        return [state]

    def _exec_call(self, state: ExecutionState, instr: ir.Call) -> list[ExecutionState]:
        callee = self._eval(state, instr.callee)
        if isinstance(callee, FnPtr):
            name = callee.name
        else:
            raise _ExecError(
                BugKind.WILD_POINTER, f"indirect call through non-function {callee!r}"
            )
        func = self.module.functions.get(name)
        if func is None:
            raise _ExecError(BugKind.WILD_POINTER, f"call to unknown function {name!r}")
        if len(instr.args) != len(func.params):
            raise _ExecError(
                BugKind.WILD_POINTER,
                f"call to {name} with {len(instr.args)} args, "
                f"expected {len(func.params)}",
            )
        args = [self._eval(state, a) for a in instr.args]
        self._advance(state)  # the caller resumes *after* the call
        caller = state.frame
        frame = Frame(name, func.entry)
        frame.ret_dst = instr.dst.name if isinstance(instr.dst, ir.Reg) else None
        for param, value in zip(func.params, args):
            frame.regs[param] = value
        state.thread.frames.append(frame)
        del caller  # clarity: caller frame stays below the new frame
        return [state]

    def _exec_ret(self, state: ExecutionState, instr: ir.Ret) -> list[ExecutionState]:
        value: Value = 0
        if instr.value is not None:
            value = self._eval(state, instr.value)
        thread = state.thread
        finished = thread.frames.pop()
        for obj_id in finished.allocas:
            state.address_space.release_stack(obj_id)
        if not thread.frames:
            return self._thread_exit(state, instr, value)
        if finished.ret_dst is not None:
            thread.top.regs[finished.ret_dst] = value
        return [state]

    def _thread_exit(
        self, state: ExecutionState, instr: ir.Instr, value: Value
    ) -> list[ExecutionState]:
        thread = state.thread
        thread.status = EXITED
        state.log_sync("exit", ("thread", thread.tid), state.pc if thread.frames else InstrRef(thread.entry_function, "exit", 0))
        if thread.tid == 0:
            # main returned: the process exits (C semantics).
            state.status = "exited"
            state.exit_code = value if isinstance(value, int) else 0
            return [state]
        for other in state.threads.values():
            if (
                other.status == BLOCKED
                and other.blocked_on == ("join", thread.tid)
            ):
                other.status = RUNNABLE
                other.blocked_on = None
        forks = self.policy.on_thread_event(self, state, "exit", thread.tid, instr)
        self.stats.sched_forks += len(forks)
        return forks + [state]

    def _exec_br(self, state: ExecutionState, instr: ir.Br) -> list[ExecutionState]:
        frame = state.frame
        frame.block = instr.target
        frame.index = 0
        return [state]

    # ------------------------------------------------------------------
    # Goal-directed necessary-precondition checks (see :mod:`..analysis.wp`)
    # ------------------------------------------------------------------

    def _wp_applicable(self, state: ExecutionState) -> bool:
        """May refuted necessary conditions prune this state?

        Only single-threaded states (the conditions reason sequentially),
        and only when no *outer* stack frame sits in the goal's reach set:
        a condition says "the goal is unreachable from here *within this
        function*", so an outer frame from which the goal is still
        reachable after a return must veto the prune.
        """
        if self.wp is None:
            return False
        if len(state.threads) != 1:
            return False
        frames = state.thread.frames
        reach = self.wp.reach_blocks
        for frame in frames[:-1]:  # outer frames (top of stack is last)
            if (frame.function, frame.block) in reach:
                return False
        return True

    def _wp_refuted(self, state: ExecutionState, function: str, label: str) -> bool:
        """Does the state's concrete store contradict the necessary
        condition at ``label``'s entry?  Symbolic or unreadable cells never
        refute -- only definite concrete violations do."""
        cond = self.wp.condition_at(function, label)  # type: ignore[union-attr]
        if isinstance(cond, _FalseCond):
            return True
        frame = state.frame
        for (kind, func, name), interval in cond.items():
            if kind == "global":
                obj_id = state.globals.get(name)
                if obj_id is None:
                    continue
                try:
                    cell = state.address_space.read(obj_id, 0)
                except MemoryError_:
                    continue
            else:
                if func != frame.function:
                    continue
                ptr = frame.regs.get(name)
                if not isinstance(ptr, Pointer) or ptr.offset != 0:
                    continue
                try:
                    cell = state.address_space.read(ptr.obj, 0)
                except MemoryError_:
                    continue
            if isinstance(cell, int) and cell not in interval:
                return True
        return False

    def _wp_kill(self, state: ExecutionState) -> None:
        state.status = "infeasible"
        state.meta["killed"] = "wp-dead"
        self.prune_stats.state_kills += 1

    def _exec_condbr(self, state: ExecutionState, instr: ir.CondBr) -> list[ExecutionState]:
        cond = self._truth_value(self._eval(state, instr.cond))
        frame = state.frame
        if isinstance(cond, int):
            target = instr.then_target if cond else instr.else_target
            if self.wp is not None and self._wp_applicable(state):
                self.prune_stats.checks += 1
                if self._wp_refuted(state, frame.function, target):
                    if self.wp_audit:
                        state.meta["wp_dead"] = True
                    else:
                        self.solver.stats.wp_refuted += 1
                        self._wp_kill(state)
                        return [state]
            frame.block = target
            frame.index = 0
            return [state]

        # Static pruning: the abstract interpreter proved one direction
        # infeasible for *every* execution reaching this branch, so both
        # feasibility probes are answered without touching the solver.  The
        # surviving direction gets exactly the constraint the probed path
        # would have added; the state's model witness stays valid because
        # every model of the path constraints takes the proven side.
        if self.absint is not None:
            side = self.absint.branch_facts.get(
                InstrRef(frame.function, frame.block, frame.index)
            )
            if side is not None:
                self.solver.stats.static_answers += 2
                if side == "then":
                    state.add_constraint(
                        cond if isinstance(cond, Expr) else truthy(cond)
                    )
                    frame.block = instr.then_target
                else:
                    false_cond = negate(cond)
                    state.add_constraint(
                        false_cond if isinstance(false_cond, Expr)
                        else truthy(false_cond)
                    )
                    frame.block = instr.else_target
                frame.index = 0
                return [state]

        # Goal-directed pruning: a direction whose target block's necessary
        # condition is refuted by the concrete store cannot reach the goal
        # (and no outer frame offers a return path to it), so its
        # feasibility probe is skipped entirely.  The surviving direction
        # still gets probed and constrained exactly as an unpruned run
        # would, so the goal path's constraints -- and the synthesized
        # artifact -- are unchanged; only dead subtrees disappear.
        dead_then = dead_else = False
        if self.wp is not None and self._wp_applicable(state):
            self.prune_stats.checks += 1
            dead_then = self._wp_refuted(state, frame.function, instr.then_target)
            dead_else = self._wp_refuted(state, frame.function, instr.else_target)
        if (dead_then or dead_else) and not self.wp_audit:
            self.solver.stats.wp_refuted += int(dead_then) + int(dead_else)
            if dead_then and dead_else:
                self._wp_kill(state)
                return [state]
            self.prune_stats.branch_prunes += 1
            self.prune_stats.probes_avoided += 1
            self.solver.stats.static_answers += 1
            if dead_else:
                if not self._feasible(state, cond):
                    self._wp_kill(state)
                    return [state]
                state.add_constraint(cond if isinstance(cond, Expr) else truthy(cond))
                frame.block = instr.then_target
            else:
                false_cond = negate(cond)
                if not self._feasible(state, false_cond):
                    self._wp_kill(state)
                    return [state]
                state.add_constraint(
                    false_cond if isinstance(false_cond, Expr) else truthy(false_cond)
                )
                frame.block = instr.else_target
            frame.index = 0
            return [state]

        successors = self._condbr_fork(state, instr, cond)
        if self.wp_audit and (dead_then or dead_else):
            for succ in successors:
                if succ.status != "running":
                    continue
                block = succ.frame.block
                if (dead_then and block == instr.then_target) or (
                    dead_else and block == instr.else_target
                ):
                    succ.meta["wp_dead"] = True
        return successors

    def _condbr_fork(
        self, state: ExecutionState, instr: ir.CondBr, cond: Value
    ) -> list[ExecutionState]:
        # Probe each direction against the state's *original* path witness:
        # exactly one direction holds under it, so one of the two probes is
        # a guaranteed fast-path hit.  Letting the first probe's refreshed
        # model leak into the second would poison it (a model satisfying
        # ``cond`` never satisfies ``!cond``), and each surviving branch
        # must keep the model matching the constraint it adds.
        frame = state.frame
        orig_model = state.last_model
        true_feasible = self._feasible(state, cond)
        true_model = state.last_model
        state.last_model = orig_model
        false_cond = negate(cond)
        false_feasible = self._feasible(state, false_cond)
        if true_feasible and false_feasible:
            other = state.fork()  # inherits the false-direction model
            self.stats.forks += 1
            self.stats.states_created += 1
            state.last_model = true_model
            other.add_constraint(false_cond)
            other_frame = other.frame
            other_frame.block = instr.else_target
            other_frame.index = 0
            state.add_constraint(cond if isinstance(cond, Expr) else truthy(cond))
            frame.block = instr.then_target
            frame.index = 0
            return [state, other]
        if true_feasible:
            state.last_model = true_model
            state.add_constraint(cond if isinstance(cond, Expr) else truthy(cond))
            frame.block = instr.then_target
        elif false_feasible:
            state.add_constraint(false_cond if isinstance(false_cond, Expr) else truthy(false_cond))
            frame.block = instr.else_target
        else:
            state.status = "infeasible"
            return [state]
        frame.index = 0
        return [state]

    def _exec_unreachable(
        self, state: ExecutionState, instr: ir.Unreachable
    ) -> list[ExecutionState]:
        raise _ExecError(BugKind.ABORT, "reached unreachable code")

    def _exec_assert(self, state: ExecutionState, instr: ir.Assert) -> list[ExecutionState]:
        cond = self._truth_value(self._eval(state, instr.cond))
        if isinstance(cond, int):
            if cond:
                self._advance(state)
                return [state]
            self._mark_bug(
                state, BugKind.ASSERT_FAIL, instr, f"assertion failed: {instr.message}"
            )
            return [state]
        successors: list[ExecutionState] = []
        failing = negate(cond)
        orig_model = state.last_model
        if self._feasible(state, failing):
            bug = state.fork()  # inherits the failing-side model
            self.stats.states_created += 1
            bug.add_constraint(failing)
            self._mark_bug(
                bug, BugKind.ASSERT_FAIL, instr, f"assertion failed: {instr.message}"
            )
            successors.append(bug)
        state.last_model = orig_model  # un-poison the passing-side probe
        if self._feasible(state, cond):
            state.add_constraint(cond)
            self._advance(state)
            successors.append(state)
        else:
            state.status = "infeasible"
            successors.append(state)
        return successors

    # -- synchronization --------------------------------------------------------

    def _exec_lock(self, state: ExecutionState, instr: ir.MutexLock) -> list[ExecutionState]:
        key = self._sync_key(state, self._eval(state, instr.mutex))
        ref = state.pc
        rec = state.mutexes.setdefault(key, _fresh_mutex())
        thread = state.thread
        if rec.owner is None:
            forks = self.policy.fork_before_acquire(self, state, key, instr, ref)
            self.stats.sched_forks += len(forks)
            rec = state.mutexes[key]  # policy fork may have cloned records
            rec.owner = thread.tid
            if thread.tid in rec.waiters:
                rec.waiters.remove(thread.tid)
            state.log_sync("lock", key, ref)
            self._advance(state)
            after = self.policy.after_acquire(self, state, key, instr, ref)
            self.stats.sched_forks += len(after)
            return forks + after + [state]
        # Mutex held (possibly by this same thread: self-deadlock, as for a
        # non-recursive POSIX mutex).
        holder = rec.owner
        if thread.tid not in rec.waiters:
            rec.waiters.append(thread.tid)
        thread.status = BLOCKED
        thread.blocked_on = ("mutex", key)
        thread.replaying = True  # the pc stays here; wake re-executes the lock
        state.log_sync("block", key, ref)
        if self._check_mutex_cycle(state, instr):
            return [state]
        forks = self.policy.on_contention(self, state, key, holder, instr, ref)
        self.stats.sched_forks += len(forks)
        return forks + [state]

    def _exec_unlock(self, state: ExecutionState, instr: ir.MutexUnlock) -> list[ExecutionState]:
        key = self._sync_key(state, self._eval(state, instr.mutex))
        ref = state.pc
        rec = state.mutexes.get(key)
        if rec is None or rec.owner != state.current_tid:
            raise _ExecError(
                BugKind.INVALID_UNLOCK,
                "unlock of a mutex not held by this thread",
            )
        forks = self.policy.fork_before_release(self, state, key, instr, ref)
        self.stats.sched_forks += len(forks)
        rec = state.mutexes[key]
        rec.owner = None
        for waiter_tid in rec.waiters:
            waiter = state.threads[waiter_tid]
            if waiter.status == BLOCKED and waiter.blocked_on == ("mutex", key):
                waiter.status = RUNNABLE
                waiter.blocked_on = None
        rec.waiters.clear()
        state.log_sync("unlock", key, ref)
        self._advance(state)
        self.policy.on_release(self, state, key, instr, ref)
        return forks + [state]

    def _exec_cond_wait(self, state: ExecutionState, instr: ir.CondWait) -> list[ExecutionState]:
        cond_key = self._sync_key(state, self._eval(state, instr.cond))
        mutex_key = self._sync_key(state, self._eval(state, instr.mutex))
        thread = state.thread

        if thread.reacquire_mutex is not None:
            # Phase 2: signaled; re-acquire the mutex, then the wait returns.
            rec = state.mutexes.setdefault(mutex_key, _fresh_mutex())
            if rec.owner is None:
                rec.owner = thread.tid
                if thread.tid in rec.waiters:
                    rec.waiters.remove(thread.tid)
                thread.reacquire_mutex = None
                state.log_sync("wakelock", mutex_key, state.pc)
                self._advance(state)
                return [state]
            if thread.tid not in rec.waiters:
                rec.waiters.append(thread.tid)
            thread.status = BLOCKED
            thread.blocked_on = ("mutex", mutex_key)
            thread.replaying = True  # wake retries the re-acquisition
            self._check_mutex_cycle(state, instr)
            return [state]

        # Phase 1: atomically release the mutex and sleep on the condvar.
        rec = state.mutexes.get(mutex_key)
        if rec is None or rec.owner != thread.tid:
            raise _ExecError(
                BugKind.INVALID_UNLOCK, "cond_wait without holding the mutex"
            )
        rec.owner = None
        for waiter_tid in rec.waiters:
            waiter = state.threads[waiter_tid]
            if waiter.status == BLOCKED and waiter.blocked_on == ("mutex", mutex_key):
                waiter.status = RUNNABLE
                waiter.blocked_on = None
        rec.waiters.clear()
        state.condvars.setdefault(cond_key, []).append(thread.tid)
        thread.status = BLOCKED
        thread.blocked_on = ("cond", cond_key)
        thread.reacquire_mutex = mutex_key
        thread.replaying = True  # the signaled wait re-executes as phase 2
        state.log_sync("wait", cond_key, state.pc)
        return [state]

    def _exec_cond_signal(self, state: ExecutionState, instr: ir.CondSignal) -> list[ExecutionState]:
        cond_key = self._sync_key(state, self._eval(state, instr.cond))
        waiters = state.condvars.get(cond_key, [])
        woken = list(waiters) if instr.broadcast else waiters[:1]
        for tid in woken:
            waiters.remove(tid)
            thread = state.threads[tid]
            thread.status = RUNNABLE
            thread.blocked_on = None
            # reacquire_mutex stays set: the wait resumes in phase 2.
        op = "broadcast" if instr.broadcast else "signal"
        state.log_sync(op, cond_key, state.pc)
        self._advance(state)
        forks = self.policy.on_thread_event(self, state, op, state.current_tid, instr)
        self.stats.sched_forks += len(forks)
        return forks + [state]

    def _exec_thread_create(
        self, state: ExecutionState, instr: ir.ThreadCreate
    ) -> list[ExecutionState]:
        func_value = self._eval(state, instr.func)
        if not isinstance(func_value, FnPtr):
            raise _ExecError(
                BugKind.WILD_POINTER, f"thread start routine is {func_value!r}"
            )
        func = self.module.functions.get(func_value.name)
        if func is None:
            raise _ExecError(
                BugKind.WILD_POINTER, f"unknown start routine {func_value.name!r}"
            )
        if len(func.params) != 1:
            raise _ExecError(
                BugKind.WILD_POINTER,
                f"start routine {func.name} must take exactly one argument",
            )
        arg = self._eval(state, instr.arg)
        tid = state.next_tid
        state.next_tid += 1
        thread = ThreadState(tid, func.name)
        frame = Frame(func.name, func.entry)
        frame.regs[func.params[0]] = arg
        thread.frames.append(frame)
        state.threads[tid] = thread
        if instr.dst is not None:
            self._set(state, instr.dst, tid)
        state.log_sync("create", ("thread", tid), state.pc)
        self._advance(state)
        forks = self.policy.on_thread_event(self, state, "create", tid, instr)
        self.stats.sched_forks += len(forks)
        return forks + [state]

    def _exec_thread_join(self, state: ExecutionState, instr: ir.ThreadJoin) -> list[ExecutionState]:
        tid_value = self._eval(state, instr.tid)
        if isinstance(tid_value, Expr):
            tid_value = self.concretize(state, tid_value)
        if not isinstance(tid_value, int) or tid_value not in state.threads:
            raise _ExecError(BugKind.WILD_POINTER, f"join of unknown thread {tid_value!r}")
        target = state.threads[tid_value]
        if target.status == EXITED:
            if instr.dst is not None:
                self._set(state, instr.dst, 0)
            state.log_sync("join", ("thread", tid_value), state.pc)
            self._advance(state)
            return [state]
        thread = state.thread
        thread.status = BLOCKED
        thread.blocked_on = ("join", tid_value)
        thread.replaying = True  # the join re-executes once the target exits
        return [state]

    # -- intrinsics ------------------------------------------------------------

    def _exec_intrinsic(self, state: ExecutionState, instr: ir.Intrinsic) -> list[ExecutionState]:
        name = instr.name
        args = [self._eval(state, a) for a in instr.args]
        result: Value = 0
        if name == "getchar":
            result = self.env.getchar(state)
        elif name == "getenv":
            var_name = self._read_cstring(state, args[0])
            result = self.env.getenv(state, var_name)
        elif name == "argc":
            result = self.env.argc(state)
        elif name == "arg":
            index = args[0]
            if isinstance(index, Expr):
                index = self.concretize(state, index)
            if not isinstance(index, int):
                raise _ExecError(BugKind.WILD_POINTER, "arg() index must be an int")
            result = self.env.arg(state, index)
        elif name == "read_input":
            label = self._read_cstring(state, args[0])
            size = args[1]
            if isinstance(size, Expr):
                size = self.concretize(state, size)
            if not isinstance(size, int) or size <= 0:
                raise _ExecError(BugKind.WILD_POINTER, "read_input size must be positive")
            result = self.env.read_input(state, label, size)
        elif name == "print_int":
            state.output.append(_format_value(args[0]))
        elif name == "print_str":
            state.output.append(self._read_cstring(state, args[0], lossy=True))
        elif name == "exit":
            code = args[0]
            state.status = "exited"
            state.exit_code = code if isinstance(code, int) else 0
            return [state]
        elif name == "abort":
            raise _ExecError(BugKind.ABORT, "abort() called")
        elif name == "assume":
            cond = self._truth_value(args[0])
            if isinstance(cond, int):
                if not cond:
                    state.status = "infeasible"
                    return [state]
            elif self._feasible(state, cond):
                state.add_constraint(cond)
            else:
                state.status = "infeasible"
                return [state]
        else:  # pragma: no cover - verifier rules this out
            raise _ExecError(BugKind.ABORT, f"unknown intrinsic {name}")
        if instr.dst is not None:
            self._set(state, instr.dst, result)
        self._advance(state)
        return [state]

    def _read_cstring(
        self, state: ExecutionState, value: Value, lossy: bool = False, limit: int = 4096
    ) -> str:
        if not isinstance(value, Pointer):
            raise _ExecError(BugKind.WILD_POINTER, "expected a string pointer")
        offset = value.offset
        if isinstance(offset, Expr):
            offset = self.concretize(state, offset)
        chars: list[str] = []
        for i in range(limit):
            cell = state.address_space.read(value.obj, offset + i)
            if isinstance(cell, Expr):
                if lossy:
                    chars.append("?")
                    continue
                cell = self.concretize(state, cell)
            if isinstance(cell, (Pointer, FnPtr)):
                if lossy:
                    chars.append("*")
                    continue
                raise _ExecError(BugKind.WILD_POINTER, "non-character in string")
            if cell == 0:
                return "".join(chars)
            chars.append(chr(cell & 0xFF))
        return "".join(chars)


def _fresh_mutex() -> "MutexRec":
    from .state import MutexRec

    return MutexRec()


def _memory_bug_kind(err: MemoryError_) -> BugKind:
    if isinstance(err, UseAfterFree):
        return BugKind.USE_AFTER_FREE
    if isinstance(err, DoubleFree):
        return BugKind.DOUBLE_FREE
    if isinstance(err, InvalidFree):
        return BugKind.INVALID_FREE
    if isinstance(err, OutOfBounds):
        return BugKind.OUT_OF_BOUNDS
    return BugKind.WILD_POINTER


def _eval_with_defaults(atom: Atom, model: dict[str, int]) -> int:
    if isinstance(atom, int):
        return atom
    full = dict(model)
    for var in atom.variables():
        full.setdefault(var.name, var.lo)
    return evaluate(atom, full)


def _format_value(value: Value) -> str:
    if isinstance(value, int):
        return str(value)
    if isinstance(value, Pointer):
        return f"<ptr {value.obj}+{value.offset!r}>"
    if isinstance(value, FnPtr):
        return f"<fn {value.name}>"
    return f"<sym {value!r}>"


_HANDLERS = {
    ir.Assign: Executor._exec_assign,
    ir.BinOp: Executor._exec_binop,
    ir.UnOp: Executor._exec_unop,
    ir.Alloc: Executor._exec_alloc,
    ir.Free: Executor._exec_free,
    ir.Load: Executor._exec_load,
    ir.Store: Executor._exec_store,
    ir.Gep: Executor._exec_gep,
    ir.Call: Executor._exec_call,
    ir.Ret: Executor._exec_ret,
    ir.Br: Executor._exec_br,
    ir.CondBr: Executor._exec_condbr,
    ir.Unreachable: Executor._exec_unreachable,
    ir.Assert: Executor._exec_assert,
    ir.Intrinsic: Executor._exec_intrinsic,
    ir.MutexLock: Executor._exec_lock,
    ir.MutexUnlock: Executor._exec_unlock,
    ir.CondWait: Executor._exec_cond_wait,
    ir.CondSignal: Executor._exec_cond_signal,
    ir.ThreadCreate: Executor._exec_thread_create,
    ir.ThreadJoin: Executor._exec_thread_join,
}
