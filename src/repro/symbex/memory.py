"""Copy-on-write memory model.

An execution state's address space is a map from object ids to
:class:`MemObject` (an array of word cells).  Forking a state shallow-copies
the map and marks every object shared; the first write in either state clones
just that object.  This is the Klee copy-on-write design the paper calls out
as the key to cheap snapshots and scalable schedule search (sections 4.1 and
6.1).

Runtime pointer values are :class:`Pointer` -- an (object id, offset) pair.
Offsets may be symbolic; the executor concretizes them at access time.
Out-of-bounds and use-after-free accesses raise typed errors that the
executor converts into bug states.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..solver.expr import Atom, Expr

CellValue = Union[int, Expr, "Pointer", "FnPtr"]


@dataclass(frozen=True, slots=True)
class Pointer:
    """A typed pointer: object id + cell offset (offset may be symbolic)."""

    obj: int
    offset: Atom = 0

    def __repr__(self) -> str:
        return f"ptr({self.obj}+{self.offset!r})"


@dataclass(frozen=True, slots=True)
class FnPtr:
    """A function pointer value."""

    name: str

    def __repr__(self) -> str:
        return f"&{self.name}"


class MemoryError_(Exception):
    """Base for memory access violations (underscore avoids the builtin)."""

    def __init__(self, message: str, obj: Optional["MemObject"] = None) -> None:
        super().__init__(message)
        self.obj = obj


class OutOfBounds(MemoryError_):
    pass


class UseAfterFree(MemoryError_):
    pass


class InvalidFree(MemoryError_):
    pass


class DoubleFree(MemoryError_):
    pass


class MemObject:
    """A contiguous run of word cells."""

    __slots__ = ("obj_id", "name", "kind", "cells", "freed", "shared")

    def __init__(
        self, obj_id: int, size: int, kind: str, name: str = "",
        init: Optional[list[CellValue]] = None,
    ) -> None:
        self.obj_id = obj_id
        self.name = name
        self.kind = kind  # 'global' | 'stack' | 'heap'
        self.cells: list[CellValue] = list(init) if init else [0] * size
        if init and len(self.cells) < size:
            self.cells.extend([0] * (size - len(self.cells)))
        self.freed = False
        self.shared = False

    @property
    def size(self) -> int:
        return len(self.cells)

    def clone(self) -> "MemObject":
        copy = MemObject.__new__(MemObject)
        copy.obj_id = self.obj_id
        copy.name = self.name
        copy.kind = self.kind
        copy.cells = list(self.cells)
        copy.freed = self.freed
        copy.shared = False
        return copy

    def __repr__(self) -> str:
        flags = " freed" if self.freed else ""
        return f"<obj {self.obj_id} {self.kind} {self.name!r} [{self.size}]{flags}>"


class AddressSpace:
    """COW map of object ids to memory objects."""

    __slots__ = ("objects",)

    def __init__(self) -> None:
        self.objects: dict[int, MemObject] = {}

    def fork(self) -> "AddressSpace":
        """Share all objects with a new address space (O(objects), no data copy)."""
        for obj in self.objects.values():
            obj.shared = True
        other = AddressSpace.__new__(AddressSpace)
        other.objects = dict(self.objects)
        return other

    def add(self, obj: MemObject) -> MemObject:
        assert obj.obj_id not in self.objects
        self.objects[obj.obj_id] = obj
        return obj

    def get(self, obj_id: int) -> MemObject:
        obj = self.objects.get(obj_id)
        if obj is None:
            raise OutOfBounds(f"dangling reference to object {obj_id}")
        return obj

    def read(self, obj_id: int, offset: int) -> CellValue:
        obj = self.get(obj_id)
        if obj.freed:
            raise UseAfterFree(f"read of freed {obj!r}", obj)
        if not 0 <= offset < obj.size:
            raise OutOfBounds(
                f"read at offset {offset} of {obj!r} (size {obj.size})", obj
            )
        return obj.cells[offset]

    def write(self, obj_id: int, offset: int, value: CellValue) -> None:
        obj = self.get(obj_id)
        if obj.freed:
            raise UseAfterFree(f"write to freed {obj!r}", obj)
        if not 0 <= offset < obj.size:
            raise OutOfBounds(
                f"write at offset {offset} of {obj!r} (size {obj.size})", obj
            )
        if obj.shared:
            obj = obj.clone()
            self.objects[obj_id] = obj
        obj.cells[offset] = value

    def free(self, obj_id: int, offset: int) -> None:
        obj = self.objects.get(obj_id)
        if obj is None:
            raise InvalidFree(f"free of unknown object {obj_id}")
        if offset != 0:
            raise InvalidFree(f"free of interior pointer into {obj!r}", obj)
        if obj.kind != "heap":
            raise InvalidFree(f"free of non-heap {obj!r}", obj)
        if obj.freed:
            raise DoubleFree(f"double free of {obj!r}", obj)
        if obj.shared:
            obj = obj.clone()
            self.objects[obj_id] = obj
        obj.freed = True

    def release_stack(self, obj_id: int) -> None:
        """Mark a stack object dead on frame exit (enables stack-UAF checks)."""
        obj = self.objects.get(obj_id)
        if obj is None or obj.freed:
            return
        if obj.shared:
            obj = obj.clone()
            self.objects[obj_id] = obj
        obj.freed = True

    def __len__(self) -> int:
        return len(self.objects)
