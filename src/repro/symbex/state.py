"""Execution states: frames, threads, sync objects, and forking.

An execution state is "a program counter, a stack, and an address space"
(paper section 3.3) -- extended here, as in the paper's section 6.1, with a
set of simulated threads sharing the address space, one of which runs at a
time.  States fork at symbolic branches and at scheduling decisions; COW
memory keeps forks cheap.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from ..ir import InstrRef
from ..solver.expr import Atom, Expr, Var
from .bugs import BugInfo
from .memory import AddressSpace, CellValue, MemObject, Pointer

AddrKey = tuple[int, int]  # (object id, concrete offset): identity of a sync object


class Frame:
    """One activation record: function position + virtual registers."""

    __slots__ = ("function", "block", "index", "regs", "ret_dst", "allocas")

    def __init__(self, function: str, block: str = "entry") -> None:
        self.function = function
        self.block = block
        self.index = 0
        self.regs: dict[str, CellValue] = {}
        self.ret_dst: Optional[str] = None  # caller register receiving the return
        self.allocas: list[int] = []  # stack object ids to release on return

    def clone(self) -> "Frame":
        copy = Frame.__new__(Frame)
        copy.function = self.function
        copy.block = self.block
        copy.index = self.index
        copy.regs = dict(self.regs)
        copy.ret_dst = self.ret_dst
        copy.allocas = list(self.allocas)
        return copy

    @property
    def ref(self) -> InstrRef:
        return InstrRef(self.function, self.block, self.index)

    def __repr__(self) -> str:
        return f"<frame {self.function}:{self.block}:{self.index}>"


RUNNABLE = "runnable"
BLOCKED = "blocked"
EXITED = "exited"


class ThreadState:
    """A simulated POSIX thread."""

    __slots__ = (
        "tid", "frames", "status", "blocked_on", "reacquire_mutex",
        "instr_count", "entry_function", "replaying",
    )

    def __init__(self, tid: int, entry_function: str) -> None:
        self.tid = tid
        self.frames: list[Frame] = []
        self.status = RUNNABLE
        # ('mutex', key) | ('cond', key) | ('join', tid) when status == BLOCKED
        self.blocked_on: Optional[tuple] = None
        # After a cond wait is signaled, the mutex the thread must re-acquire.
        self.reacquire_mutex: Optional[AddrKey] = None
        self.instr_count = 0
        self.entry_function = entry_function
        # A blocking sync operation (lock contention, cond wait, join) leaves
        # the pc on the blocking instruction, so the woken thread *re-executes*
        # it.  This flag marks that pending re-execution; the engine's budget
        # accounting counts the instruction once, not per retry, keeping
        # instruction counts consistent between serial and sharded runs.
        self.replaying = False

    def clone(self) -> "ThreadState":
        copy = ThreadState.__new__(ThreadState)
        copy.tid = self.tid
        copy.frames = [f.clone() for f in self.frames]
        copy.status = self.status
        copy.blocked_on = self.blocked_on
        copy.reacquire_mutex = self.reacquire_mutex
        copy.instr_count = self.instr_count
        copy.entry_function = self.entry_function
        copy.replaying = self.replaying
        return copy

    @property
    def top(self) -> Frame:
        return self.frames[-1]

    @property
    def pc(self) -> InstrRef:
        return self.top.ref

    def call_stack(self) -> list[InstrRef]:
        """Innermost-first stack of instruction refs (like a gdb backtrace)."""
        return [frame.ref for frame in reversed(self.frames)]

    def __repr__(self) -> str:
        where = self.pc if self.frames else "-"
        return f"<thread {self.tid} {self.status} at {where}>"


@dataclass(slots=True)
class MutexRec:
    owner: Optional[int] = None
    waiters: list[int] = field(default_factory=list)

    def clone(self) -> "MutexRec":
        return MutexRec(self.owner, list(self.waiters))


@dataclass(slots=True)
class InputEvent:
    """One symbolic input introduced during execution.

    ``kind`` is 'stdin' | 'env' | 'arg' | 'argc' | 'buffer'; ``key`` is the
    env-var name, argv index, or buffer label; ``variables`` are the symbolic
    cells whose model values become the concrete input at playback.
    """

    kind: str
    key: str
    variables: list[Var]


@dataclass(slots=True)
class SyncEvent:
    """A serialized synchronization operation (for happens-before replay)."""

    seq: int
    tid: int
    op: str  # 'lock' | 'unlock' | 'wait' | 'signal' | 'broadcast' | 'create' | 'join' | 'exit' | 'access'
    addr: Optional[AddrKey]
    ref: InstrRef


@dataclass(slots=True)
class Segment:
    """A maximal run of one thread (for strict serial replay)."""

    tid: int
    instrs: int


class EnvState:
    """Symbolic environment: stdin stream, env vars, argv (paper section 3.4:
    'symbolic models of the filesystem and the network stack to ensure all
    symbolic I/O stays consistent').  Reading the same env var twice returns
    the same buffer."""

    __slots__ = ("stdin_vars", "env_buffers", "arg_buffers", "argc_var", "buffers")

    def __init__(self) -> None:
        self.stdin_vars: list[Var] = []
        self.env_buffers: dict[str, Pointer] = {}
        self.arg_buffers: dict[int, Pointer] = {}
        self.argc_var: Optional[Atom] = None
        self.buffers: dict[str, Pointer] = {}

    def clone(self) -> "EnvState":
        copy = EnvState.__new__(EnvState)
        copy.stdin_vars = list(self.stdin_vars)
        copy.env_buffers = dict(self.env_buffers)
        copy.arg_buffers = dict(self.arg_buffers)
        copy.argc_var = self.argc_var
        copy.buffers = dict(self.buffers)
        return copy


_state_ids = itertools.count(1)


class ExecutionState:
    """One node of the symbolic execution tree."""

    __slots__ = (
        "sid", "parent_sid", "address_space", "globals", "threads",
        "current_tid", "next_tid", "next_obj", "constraints",
        "constraint_uids", "var_index", "mutexes",
        "condvars", "env", "input_events", "output", "sync_log", "segments",
        "segment_instrs", "steps", "forks", "status", "exit_code", "bug",
        "snapshots", "schedule_distance", "preemptions", "meta", "last_model",
    )

    def __init__(self) -> None:
        self.sid = next(_state_ids)
        self.parent_sid = 0
        self.address_space = AddressSpace()
        self.globals: dict[str, int] = {}
        self.threads: dict[int, ThreadState] = {}
        self.current_tid = 0
        self.next_tid = 1
        self.next_obj = 1
        self.constraints: list[Expr] = []
        self.constraint_uids: set[int] = set()
        # var name -> constraints mentioning it, for sliced solver queries
        # (Klee's independent-constraint optimization at the state level).
        self.var_index: dict[str, list[Expr]] = {}
        self.mutexes: dict[AddrKey, MutexRec] = {}
        self.condvars: dict[AddrKey, list[int]] = {}
        self.env = EnvState()
        self.input_events: list[InputEvent] = []
        self.output: list[str] = []
        self.sync_log: list[SyncEvent] = []
        self.segments: list[Segment] = []
        self.segment_instrs = 0
        self.steps = 0
        self.forks = 0
        self.status = "running"  # 'running' | 'exited' | 'bug' | 'infeasible'
        self.exit_code = 0
        self.bug: Optional[BugInfo] = None
        # Deadlock schedule synthesis (paper section 4.1): mutex -> state
        # snapshot taken just before that mutex was acquired.
        self.snapshots: dict[AddrKey, "ExecutionState"] = {}
        self.schedule_distance = 1.0  # 1.0 == far, 0.0 == near
        self.preemptions = 0  # context-switch count (for Chess-style bounding)
        self.meta: dict[str, object] = {}
        # Last satisfying assignment the solver produced for this path: the
        # executor's model-reuse fast path tries it before solving (Klee's
        # "counterexample" reuse at the state level).  Advisory only -- a
        # stale model just misses and falls back to the solver.
        self.last_model: Optional[dict[str, int]] = None

    # -- thread accessors ------------------------------------------------------

    @property
    def thread(self) -> ThreadState:
        return self.threads[self.current_tid]

    @property
    def frame(self) -> Frame:
        return self.thread.top

    @property
    def pc(self) -> InstrRef:
        return self.thread.pc

    @property
    def terminated(self) -> bool:
        return self.status != "running"

    def runnable_tids(self) -> list[int]:
        return [t.tid for t in self.threads.values() if t.status == RUNNABLE]

    def live_threads(self) -> list[ThreadState]:
        return [t for t in self.threads.values() if t.status != EXITED]

    # -- memory helpers ------------------------------------------------------

    def new_object(
        self, size: int, kind: str, name: str = "",
        init: Optional[list[CellValue]] = None,
    ) -> MemObject:
        obj = MemObject(self.next_obj, size, kind, name, init)
        self.next_obj += 1
        self.address_space.add(obj)
        return obj

    # -- scheduling bookkeeping ------------------------------------------------

    def note_instruction(self) -> None:
        self.steps += 1
        self.segment_instrs += 1
        self.thread.instr_count += 1

    def uncount_instruction(self) -> None:
        """Roll back the current instruction's accounting.

        Scheduling policies fork "preempted" states from hooks that run
        *before* an instruction's semantics complete (e.g. just before a
        mutex acquisition).  In the forked state that instruction has not
        executed, so its count must not appear in the strict schedule --
        otherwise playback diverges by one instruction per preemption.
        """
        assert self.segment_instrs > 0
        self.steps -= 1
        self.segment_instrs -= 1
        self.thread.instr_count -= 1

    def switch_to(self, tid: int) -> None:
        """Context-switch the running thread, closing the current segment."""
        if tid == self.current_tid:
            return
        if self.segment_instrs:
            self.segments.append(Segment(self.current_tid, self.segment_instrs))
            self.segment_instrs = 0
        self.preemptions += 1
        self.current_tid = tid

    def finish_segments(self) -> list[Segment]:
        """All segments including the in-progress one (call at termination)."""
        result = list(self.segments)
        if self.segment_instrs:
            result.append(Segment(self.current_tid, self.segment_instrs))
        return result

    def log_sync(self, op: str, addr: Optional[AddrKey], ref: InstrRef) -> None:
        self.sync_log.append(
            SyncEvent(len(self.sync_log), self.current_tid, op, addr, ref)
        )

    # -- forking ------------------------------------------------------------

    def fork(self) -> "ExecutionState":
        """Fork a child state sharing memory copy-on-write."""
        child = ExecutionState.__new__(ExecutionState)
        child.sid = next(_state_ids)
        child.parent_sid = self.sid
        child.address_space = self.address_space.fork()
        child.globals = self.globals  # immutable after setup
        child.threads = {tid: t.clone() for tid, t in self.threads.items()}
        child.current_tid = self.current_tid
        child.next_tid = self.next_tid
        child.next_obj = self.next_obj
        child.constraints = list(self.constraints)
        child.constraint_uids = set(self.constraint_uids)
        child.var_index = {name: list(c) for name, c in self.var_index.items()}
        child.mutexes = {k: m.clone() for k, m in self.mutexes.items()}
        child.condvars = {k: list(v) for k, v in self.condvars.items()}
        child.env = self.env.clone()
        child.input_events = list(self.input_events)
        child.output = list(self.output)
        child.sync_log = list(self.sync_log)
        child.segments = list(self.segments)
        child.segment_instrs = self.segment_instrs
        child.steps = self.steps
        child.forks = self.forks + 1
        self.forks += 1
        child.status = self.status
        child.exit_code = self.exit_code
        child.bug = self.bug
        child.snapshots = dict(self.snapshots)
        child.schedule_distance = self.schedule_distance
        child.preemptions = self.preemptions
        child.meta = dict(self.meta)
        child.last_model = dict(self.last_model) if self.last_model else None
        return child

    def add_constraint(self, constraint: Atom) -> None:
        if not isinstance(constraint, Expr):
            return
        if constraint.uid in self.constraint_uids:
            return
        self.constraint_uids.add(constraint.uid)
        self.constraints.append(constraint)
        for var in constraint.variables():
            self.var_index.setdefault(var.name, []).append(constraint)

    def related_constraints(self, atom: Atom) -> list[Expr]:
        """The constraints transitively connected to ``atom`` through shared
        variables -- the only ones whose satisfiability a new condition on
        ``atom``'s variables can change."""
        if not isinstance(atom, Expr):
            return []
        seen_vars: set[str] = set()
        seen_constraints: set[int] = set()
        related: list[Expr] = []
        worklist = [v.name for v in atom.variables()]
        while worklist:
            name = worklist.pop()
            if name in seen_vars:
                continue
            seen_vars.add(name)
            for constraint in self.var_index.get(name, ()):
                if constraint.uid in seen_constraints:
                    continue
                seen_constraints.add(constraint.uid)
                related.append(constraint)
                for var in constraint.variables():
                    if var.name not in seen_vars:
                        worklist.append(var.name)
        return related

    def __repr__(self) -> str:
        return (
            f"<state {self.sid} {self.status} tid={self.current_tid} "
            f"steps={self.steps} constraints={len(self.constraints)}>"
        )
