"""Environment models: where program inputs come from.

During synthesis the environment is *symbolic*: ``getchar``/``getenv``/argv
return fresh unconstrained symbolic values (paper section 3.3), recorded as
:class:`~repro.symbex.state.InputEvent` so the final model can be turned into
concrete playback inputs.  During playback the environment is *concrete*: it
serves exactly the values stored in the synthesized execution file.

Reading the same environment variable or argv slot twice returns the same
buffer, keeping symbolic I/O consistent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..solver.expr import Atom, Var, make_var
from .memory import Pointer
from .state import ExecutionState, InputEvent


class InputProvider:
    """Interface between the executor's intrinsics and the input source."""

    def getchar(self, state: ExecutionState) -> Atom:
        raise NotImplementedError

    def getenv(self, state: ExecutionState, name: str) -> Pointer:
        raise NotImplementedError

    def argc(self, state: ExecutionState) -> Atom:
        raise NotImplementedError

    def arg(self, state: ExecutionState, index: int) -> Pointer:
        raise NotImplementedError

    def read_input(self, state: ExecutionState, name: str, size: int) -> Pointer:
        raise NotImplementedError


class SymbolicEnv(InputProvider):
    """Fresh symbolic values for every input, with finite byte domains.

    ``string_size`` bounds env/argv strings (``size - 1`` symbolic characters
    plus a forced NUL), the practical analogue of Klee's fixed-size symbolic
    buffers.
    """

    def __init__(self, string_size: int = 8, max_args: int = 4) -> None:
        if string_size < 1:
            raise ValueError("string_size must be at least 1")
        self.string_size = string_size
        self.max_args = max_args

    def getchar(self, state: ExecutionState) -> Atom:
        index = len(state.env.stdin_vars)
        var = make_var(f"stdin{index}", 0, 255)
        state.env.stdin_vars.append(var)
        state.input_events.append(InputEvent("stdin", str(index), [var]))
        return var

    def _symbolic_string(
        self, state: ExecutionState, label: str, size: int, nul_terminated: bool
    ) -> tuple[Pointer, list[Var]]:
        variables: list[Var] = []
        cells: list = []
        payload = size - 1 if nul_terminated else size
        for i in range(payload):
            var = make_var(f"{label}.{i}", 0, 255)
            variables.append(var)
            cells.append(var)
        if nul_terminated:
            cells.append(0)
        obj = state.new_object(len(cells), "heap", label, init=cells)
        return Pointer(obj.obj_id, 0), variables

    def getenv(self, state: ExecutionState, name: str) -> Pointer:
        cached = state.env.env_buffers.get(name)
        if cached is not None:
            return cached
        pointer, variables = self._symbolic_string(
            state, f"env.{name}", self.string_size, nul_terminated=True
        )
        state.env.env_buffers[name] = pointer
        state.input_events.append(InputEvent("env", name, variables))
        return pointer

    def argc(self, state: ExecutionState) -> Atom:
        if state.env.argc_var is None:
            var = make_var("argc", 1, self.max_args)
            state.env.argc_var = var
            state.input_events.append(InputEvent("argc", "argc", [var]))
        return state.env.argc_var

    def arg(self, state: ExecutionState, index: int) -> Pointer:
        cached = state.env.arg_buffers.get(index)
        if cached is not None:
            return cached
        pointer, variables = self._symbolic_string(
            state, f"arg{index}", self.string_size, nul_terminated=True
        )
        state.env.arg_buffers[index] = pointer
        state.input_events.append(InputEvent("arg", str(index), variables))
        return pointer

    def read_input(self, state: ExecutionState, name: str, size: int) -> Pointer:
        cached = state.env.buffers.get(name)
        if cached is not None:
            return cached
        pointer, variables = self._symbolic_string(
            state, f"buf.{name}", size, nul_terminated=False
        )
        state.env.buffers[name] = pointer
        state.input_events.append(InputEvent("buffer", name, variables))
        return pointer


@dataclass(slots=True)
class RecordedInputs:
    """Concrete inputs extracted from a synthesized execution file (or chosen
    by a test/stress driver)."""

    stdin: list[int] = field(default_factory=list)
    env: dict[str, str] = field(default_factory=dict)
    args: list[str] = field(default_factory=list)
    argc: Optional[int] = None
    buffers: dict[str, list[int]] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "stdin": list(self.stdin),
            "env": dict(self.env),
            "args": list(self.args),
            "argc": self.argc,
            "buffers": {k: list(v) for k, v in self.buffers.items()},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RecordedInputs":
        return cls(
            stdin=list(data.get("stdin", [])),
            env=dict(data.get("env", {})),
            args=list(data.get("args", [])),
            argc=data.get("argc"),
            buffers={k: list(v) for k, v in data.get("buffers", {}).items()},
        )


class ConcreteEnv(InputProvider):
    """Serves recorded inputs; used by playback and by the stress baseline.

    Missing entries fall back to zero / empty string, matching how the
    synthesizer concretizes unconstrained symbolic inputs.
    """

    def __init__(self, inputs: RecordedInputs, default_buffer_size: int = 8) -> None:
        self.inputs = inputs
        self.default_buffer_size = default_buffer_size

    def getchar(self, state: ExecutionState) -> Atom:
        cursor = int(state.meta.get("stdin_pos", 0))  # type: ignore[arg-type]
        state.meta["stdin_pos"] = cursor + 1
        if cursor < len(self.inputs.stdin):
            return self.inputs.stdin[cursor]
        return 0

    def _concrete_string(self, state: ExecutionState, label: str, text: str) -> Pointer:
        cells: list = [ord(ch) & 0xFF for ch in text] + [0]
        obj = state.new_object(len(cells), "heap", label, init=cells)
        return Pointer(obj.obj_id, 0)

    def getenv(self, state: ExecutionState, name: str) -> Pointer:
        cached = state.env.env_buffers.get(name)
        if cached is not None:
            return cached
        pointer = self._concrete_string(
            state, f"env.{name}", self.inputs.env.get(name, "")
        )
        state.env.env_buffers[name] = pointer
        return pointer

    def argc(self, state: ExecutionState) -> Atom:
        if self.inputs.argc is not None:
            return self.inputs.argc
        return len(self.inputs.args) + 1

    def arg(self, state: ExecutionState, index: int) -> Pointer:
        cached = state.env.arg_buffers.get(index)
        if cached is not None:
            return cached
        if index == 0:
            text = "prog"
        elif 1 <= index <= len(self.inputs.args):
            text = self.inputs.args[index - 1]
        else:
            text = ""
        pointer = self._concrete_string(state, f"arg{index}", text)
        state.env.arg_buffers[index] = pointer
        return pointer

    def read_input(self, state: ExecutionState, name: str, size: int) -> Pointer:
        cached = state.env.buffers.get(name)
        if cached is not None:
            return cached
        recorded = self.inputs.buffers.get(name, [])
        cells: list = [recorded[i] if i < len(recorded) else 0 for i in range(size)]
        obj = state.new_object(size, "heap", f"buf.{name}", init=cells)
        pointer = Pointer(obj.obj_id, 0)
        state.env.buffers[name] = pointer
        return pointer
