"""Bug classification shared by the executor, coredump generator, and ESD.

Mirrors the bug classes the paper's prototype handles: crashes (segfault,
assert, abort, invalid free, buffer overflow, division by zero), hangs
(mutex/condvar deadlocks), and race-induced inconsistencies.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from ..ir import InstrRef


class BugKind(enum.Enum):
    NULL_DEREF = "null-dereference"
    OUT_OF_BOUNDS = "buffer-overflow"
    WILD_POINTER = "wild-pointer"
    USE_AFTER_FREE = "use-after-free"
    INVALID_FREE = "invalid-free"
    DOUBLE_FREE = "double-free"
    DIV_BY_ZERO = "division-by-zero"
    ASSERT_FAIL = "assertion-failure"
    ABORT = "abort"
    DEADLOCK = "deadlock"
    INVALID_UNLOCK = "invalid-unlock"
    DATA_RACE = "data-race"

    @property
    def is_hang(self) -> bool:
        return self is BugKind.DEADLOCK

    @property
    def is_crash(self) -> bool:
        return not self.is_hang


# Bug kinds a crash-type goal treats as equivalent manifestations.
CRASH_KINDS = frozenset(kind for kind in BugKind if kind.is_crash)


@dataclass(slots=True)
class DeadlockEdge:
    """One arc of the circular wait: ``waiter`` blocks on ``resource`` held
    (or to-be-signaled) by ``holder``."""

    waiter: int
    resource: str  # human-readable, e.g. "mutex@(3,0)"
    holder: Optional[int]


@dataclass(slots=True)
class BugInfo:
    """Everything known about a bug manifestation at detection time."""

    kind: BugKind
    ref: InstrRef
    tid: int
    message: str = ""
    line: int = 0
    # For memory bugs: the faulting pointer as seen by the access.
    fault_obj: Optional[int] = None
    fault_offset: Optional[int] = None
    fault_value: Optional[int] = None
    # For deadlocks: the cycle of waiting threads.
    cycle: list[DeadlockEdge] = field(default_factory=list)

    def summary(self) -> str:
        where = f"{self.ref} (line {self.line})"
        return f"{self.kind.value} in thread {self.tid} at {where}: {self.message}"
