"""Scheduler policy interface.

The executor runs one thread at a time and consults a policy at every
*preemption point* -- before/after synchronization operations and before
memory accesses flagged as potential data races (paper section 6.1).  A
policy may fork additional states exploring alternative scheduling decisions;
that is how "the underlying scheduler's decisions become symbolic" (paper
section 4).

The default policy never forks: it yields a deterministic cooperative
round-robin execution, which is what playback and the concrete coredump runs
use.  ESD's deadlock/race strategies and the Chess-style preemption-bounded
baseline subclass this.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..ir import Instr, InstrRef
from .state import AddrKey, ExecutionState

if TYPE_CHECKING:  # pragma: no cover
    from .executor import Executor


class SchedulerPolicy:
    """Hook points for schedule exploration.  All fork hooks return a list of
    *additional* states to explore; the passed-in state continues normally."""

    def pick_next(self, state: ExecutionState) -> Optional[int]:
        """Choose the next runnable thread (the current one just blocked or
        exited, or a handler asked for a reschedule)."""
        runnable = state.runnable_tids()
        if not runnable:
            return None
        # Round-robin starting after the current thread, for fairness.
        later = [t for t in runnable if t > state.current_tid]
        return min(later) if later else min(runnable)

    # -- mutex hooks -------------------------------------------------------
    # ``ref`` is always the location of the sync instruction itself (the
    # state's pc may already have advanced past it).

    def fork_before_acquire(
        self, executor: "Executor", state: ExecutionState, key: AddrKey,
        instr: Instr, ref: InstrRef,
    ) -> list[ExecutionState]:
        return []

    def after_acquire(
        self, executor: "Executor", state: ExecutionState, key: AddrKey,
        instr: Instr, ref: InstrRef,
    ) -> list[ExecutionState]:
        return []

    def on_contention(
        self,
        executor: "Executor",
        state: ExecutionState,
        key: AddrKey,
        holder: int,
        instr: Instr,
        ref: InstrRef,
    ) -> list[ExecutionState]:
        return []

    def fork_before_release(
        self, executor: "Executor", state: ExecutionState, key: AddrKey,
        instr: Instr, ref: InstrRef,
    ) -> list[ExecutionState]:
        return []

    def on_release(
        self, executor: "Executor", state: ExecutionState, key: AddrKey,
        instr: Instr, ref: InstrRef,
    ) -> None:
        return None

    # -- thread lifecycle hooks ----------------------------------------------

    def on_thread_event(
        self, executor: "Executor", state: ExecutionState, kind: str, tid: int,
        instr: Instr,
    ) -> list[ExecutionState]:
        return []

    # -- memory access hooks (data-race schedule synthesis) --------------------

    def wants_memory_hooks(self, state: ExecutionState) -> bool:
        return False

    def on_memory_access(
        self,
        executor: "Executor",
        state: ExecutionState,
        instr: Instr,
        ref: InstrRef,
        key: AddrKey,
        is_write: bool,
    ) -> list[ExecutionState]:
        return []


class RoundRobinPolicy(SchedulerPolicy):
    """Alias for the do-nothing default; named for readability at call sites."""
