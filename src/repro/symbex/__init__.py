"""Multi-threaded symbolic execution engine (the repo's modified-Klee)."""

from .bugs import BugInfo, BugKind, DeadlockEdge
from .env import ConcreteEnv, InputProvider, RecordedInputs, SymbolicEnv
from .executor import ExecConfig, Executor, ExecStats
from .memory import AddressSpace, FnPtr, MemObject, Pointer
from .policy import RoundRobinPolicy, SchedulerPolicy
from .state import (
    BLOCKED,
    EXITED,
    RUNNABLE,
    AddrKey,
    ExecutionState,
    Frame,
    InputEvent,
    MutexRec,
    Segment,
    SyncEvent,
    ThreadState,
)

__all__ = [
    "AddrKey",
    "AddressSpace",
    "BLOCKED",
    "BugInfo",
    "BugKind",
    "ConcreteEnv",
    "DeadlockEdge",
    "EXITED",
    "ExecConfig",
    "ExecStats",
    "ExecutionState",
    "Executor",
    "FnPtr",
    "Frame",
    "InputEvent",
    "InputProvider",
    "MemObject",
    "MutexRec",
    "Pointer",
    "RecordedInputs",
    "RoundRobinPolicy",
    "RUNNABLE",
    "SchedulerPolicy",
    "Segment",
    "SymbolicEnv",
    "SyncEvent",
    "ThreadState",
]
