"""ESD's proximity-guided search (paper sections 3.3-3.4).

Each execution state has *n* distances: to the intermediate goals
G1..Gn-1 discovered statically and to the final goal Gn = B.  The searcher
keeps n "virtual" priority queues -- the queue entries are just tokens
pointing at shared states -- ordered by the Algorithm-1 proximity estimate.
Each pick chooses a queue uniformly at random and takes its closest state,
"progressively advancing states toward the nearest intermediate goal".

Two further focusing techniques from the paper are implemented here:

* *path abandonment*: a state whose distance to the final goal is infinite
  (it can statically never reach B -- the dynamic generalization of critical
  edges) is dropped instead of enqueued;
* *schedule distance*: for concurrency-bug synthesis, states carry a
  near/far schedule distance (section 4.1); the queue priority is a weighted
  combination "with a heavy bias toward schedule distance", so low-schedule-
  distance states are selected preferentially.

For the ablation benchmarks both techniques (and the intermediate-goal
queues) can be disabled independently.
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass

from ..analysis.distance import INF, DistanceSource
from ..ir import InstrRef
from ..symbex.state import ExecutionState
from .engine import Searcher

# The weight that makes schedule distance dominate path distance.  Path
# distances are bounded by ~RECURSION_COST * call depth; 10^7 dwarfs that.
SCHEDULE_WEIGHT = 10_000_000.0

# Weight of one unachieved intermediate goal.  This realizes the paper's
# "divide a big search into several small searches": states that have
# already passed through more anchor blocks outrank states that have not,
# so the search proceeds goal to goal instead of re-exploring phase 0.
PHASE_WEIGHT = 100_000.0


@dataclass(frozen=True, slots=True)
class GoalSpec:
    """One search goal: a disjunctive set of target locations.

    For a deadlock involving several threads the final goal's alternatives
    are each thread's blocked lock statement; for intermediate goals they are
    the alternative defining blocks.
    """

    refs: tuple[InstrRef, ...]
    name: str = ""

    def __post_init__(self) -> None:
        if not self.refs:
            raise ValueError("a goal needs at least one target location")


class ProximityGuidedSearcher(Searcher):
    """The ESD state-selection strategy."""

    def __init__(
        self,
        distances: DistanceSource,
        goals: list[GoalSpec],
        final_goal: GoalSpec,
        seed: int = 0,
        prune_unreachable: bool = True,
        use_schedule_distance: bool = True,
    ) -> None:
        if not goals or goals[-1] is not final_goal:
            goals = list(goals) + [final_goal]
        self.distances = distances
        self.goals = goals
        self.final_goal = final_goal
        self.prune_unreachable = prune_unreachable
        self.use_schedule_distance = use_schedule_distance
        self._rng = random.Random(seed)
        self._queues: list[list[tuple[float, int, dict]]] = [[] for _ in goals]
        self._tokens: dict[int, dict] = {}
        self._seq = itertools.count()
        self._live = 0
        self.pruned = 0
        # The most recent pick's (queue, priority), for flight-recorder
        # attribution via :meth:`pick_info`.  Two attribute writes per
        # pick -- noise next to the RNG draw and heap pop.
        self._last_queue: list[tuple[float, int, dict]] = []
        self._last_priority = 0.0
        # Map (function, block) -> intermediate-goal indices, used to mark a
        # goal *achieved* the moment a state's pc enters one of its blocks.
        # Achieved goals stop attracting that state's lineage: without this,
        # the goal queue keeps picking states that circle a loop around an
        # already-executed definition instead of advancing to the next goal.
        self._goal_blocks: dict[tuple[str, str], list[int]] = {}
        for index, goal in enumerate(self.goals[:-1]):
            for ref in goal.refs:
                self._goal_blocks.setdefault(
                    (ref.function, ref.block), []
                ).append(index)

    # -- distance ------------------------------------------------------------

    def state_distance(self, state: ExecutionState, goal: GoalSpec) -> float:
        """Min Algorithm-1 distance over the state's live threads and the
        goal's alternative locations."""
        best = INF
        for thread in state.live_threads():
            if not thread.frames:
                continue
            frames = thread.call_stack()
            for ref in goal.refs:
                d = self.distances.state_distance(frames, ref)
                if d < best:
                    best = d
                    if best == 0:
                        return 0.0
        return best

    def _priority(self, state: ExecutionState, distance: float) -> float:
        achieved: frozenset = state.meta.get("goals_done", frozenset())  # type: ignore[assignment]
        missing = len(self.goals) - 1 - len(achieved)
        priority = max(missing, 0) * PHASE_WEIGHT + distance
        if self.use_schedule_distance:
            priority += state.schedule_distance * SCHEDULE_WEIGHT
        return priority

    # -- Searcher interface ------------------------------------------------------

    def notify(self, event: str, state: ExecutionState) -> None:
        """Per-instruction observation: mark intermediate goals achieved."""
        if event != "step" or not self._goal_blocks:
            return
        thread = state.threads.get(state.current_tid)
        if thread is None or not thread.frames:
            return
        ref = thread.pc
        hits = self._goal_blocks.get((ref.function, ref.block))
        if not hits:
            return
        achieved: frozenset = state.meta.get("goals_done", frozenset())  # type: ignore[assignment]
        updated = achieved.union(hits)
        if updated != achieved:
            state.meta["goals_done"] = updated

    def add(self, state: ExecutionState) -> None:
        self._insert(state, may_prune=True)

    def _insert(self, state: ExecutionState, may_prune: bool) -> None:
        final_distance = self.state_distance(state, self.final_goal)
        if may_prune and self.prune_unreachable and final_distance == INF:
            self.pruned += 1
            return
        token = {"state": state, "live": True}
        old = self._tokens.get(state.sid)
        if old is not None and old["live"]:
            old["live"] = False
            self._live -= 1
        self._tokens[state.sid] = token
        achieved: frozenset = state.meta.get("goals_done", frozenset())  # type: ignore[assignment]
        pushed = False
        for index, goal in enumerate(self.goals):
            if goal is not self.final_goal and index in achieved:
                continue
            distance = (
                final_distance if goal is self.final_goal
                else self.state_distance(state, goal)
            )
            if distance == INF:
                continue
            heapq.heappush(
                self._queues[index],
                (self._priority(state, distance), next(self._seq), token),
            )
            pushed = True
        if not pushed:
            # Unreachable but pruning disabled: park on the final queue.
            heapq.heappush(
                self._queues[-1], (float("inf"), next(self._seq), token)
            )
        self._live += 1

    def pick(self) -> ExecutionState:
        while True:
            candidates = [q for q in self._queues if q]
            if not candidates:
                raise IndexError("pick from an empty searcher")
            queue = self._rng.choice(candidates)
            priority, _, token = heapq.heappop(queue)
            if token["live"]:
                token["live"] = False
                self._live -= 1
                self._last_queue = queue
                self._last_priority = priority
                return token["state"]

    def pick_info(self) -> tuple[int, float, str]:
        """Which virtual queue won the last pick and at what priority.

        The queue index is resolved lazily (only the flight recorder asks)
        against the goal list: index ``i`` is goal ``Gi+1``'s queue, the
        last index the final goal's.
        """
        queue_index = next(
            (i for i, q in enumerate(self._queues) if q is self._last_queue),
            -1,
        )
        return (queue_index, self._last_priority, "proximity")

    def drain(self) -> list[ExecutionState]:
        """Remove every pending state without consuming RNG draws.

        Sharded exploration drains the frontier to serialize it; going
        through :meth:`pick` would advance the queue-selection RNG and pop
        heaps, perturbing a continuation that re-adds the same states.
        States come back in insertion order (token order), which is
        deterministic.
        """
        states = [
            token["state"] for token in self._tokens.values() if token["live"]
        ]
        for token in self._tokens.values():
            token["live"] = False
        self._tokens.clear()
        for queue in self._queues:
            queue.clear()
        self._live = 0
        return states

    def export_frontier(self) -> list[tuple[float, ExecutionState]]:
        """Drain as ``(proximity score, state)`` pairs, best (lowest) first.

        The score is the same combined priority the queues order by
        (phase progress + path distance + schedule-distance bias) against
        the final goal, so proximity-band sharding sees the search's own
        notion of "close".
        """
        scored = [
            (self._priority(state, self.state_distance(state, self.final_goal)),
             state)
            for state in self.drain()
        ]
        scored.sort(key=lambda pair: pair[0])
        return scored

    def boost(self, state: ExecutionState) -> None:
        """Re-prioritize a pending state whose schedule distance changed
        (the deadlock policy 'switches to' snapshot states this way).

        The state was *live* when boost was called, so it must stay live:
        re-adding it through the pruning path of :meth:`add` would silently
        drop it if its final-goal distance turned infinite after a schedule
        change (losing a state the policy just promoted, and leaving
        ``_live`` claiming one fewer state than the queues hold).  Instead
        the re-insert parks unreachable states on the final queue at
        infinite priority, exactly like ``add`` does when pruning is
        disabled.
        """
        token = self._tokens.get(state.sid)
        if token is not None and token["live"]:
            token["live"] = False
            self._live -= 1
            self._insert(state, may_prune=False)

    def __len__(self) -> int:
        return self._live
