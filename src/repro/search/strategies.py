"""Baseline search strategies: DFS, BFS, and Klee's RandomPath.

The paper's KC baseline (section 7.2) inherits DFS ("equivalent to an
exhaustive search") and RandomPath ("a quasi-random strategy meant to
maximize global path coverage") directly from Klee; both are reimplemented
here over the shared engine.
"""

from __future__ import annotations

import random
from collections import deque

from ..symbex.state import ExecutionState
from .engine import Searcher


class DFSSearcher(Searcher):
    """Depth-first: always continue the most recently forked state."""

    def __init__(self) -> None:
        self._stack: list[ExecutionState] = []

    def add(self, state: ExecutionState) -> None:
        self._stack.append(state)

    def pick(self) -> ExecutionState:
        return self._stack.pop()

    def __len__(self) -> int:
        return len(self._stack)


class BFSSearcher(Searcher):
    """Breadth-first: round-robin over all pending states."""

    def __init__(self) -> None:
        self._queue: deque[ExecutionState] = deque()

    def add(self, state: ExecutionState) -> None:
        self._queue.append(state)

    def pick(self) -> ExecutionState:
        return self._queue.popleft()

    def __len__(self) -> int:
        return len(self._queue)


class RandomPathSearcher(Searcher):
    """Approximation of Klee's RandomPath.

    Klee walks the fork tree from the root, flipping a fair coin at each
    branch, which weights states by 1/2^depth -- favoring states high in the
    tree (short paths).  We keep the forked tree implicitly: states carry
    ``forks`` (their fork depth), and we sample with weight 2^-min(forks, 62).
    """

    def __init__(self, seed: int = 0) -> None:
        self._states: list[ExecutionState] = []
        self._rng = random.Random(seed)

    def add(self, state: ExecutionState) -> None:
        self._states.append(state)

    def pick(self) -> ExecutionState:
        weights = [2.0 ** -min(s.forks, 62) for s in self._states]
        index = self._rng.choices(range(len(self._states)), weights=weights)[0]
        # swap-remove for O(1) deletion
        last = len(self._states) - 1
        self._states[index], self._states[last] = (
            self._states[last], self._states[index],
        )
        return self._states.pop()

    def __len__(self) -> int:
        return len(self._states)
