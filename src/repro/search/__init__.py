"""Search strategies over the symbolic execution tree."""

from .engine import (
    EventCallback,
    GoalPredicate,
    SearchBudget,
    SearchOutcome,
    SearchStats,
    Searcher,
    StopPredicate,
    SynthesisEvent,
    explore,
    explore_frontier,
)
from .esd import SCHEDULE_WEIGHT, GoalSpec, ProximityGuidedSearcher
from .strategies import BFSSearcher, DFSSearcher, RandomPathSearcher

__all__ = [
    "BFSSearcher",
    "DFSSearcher",
    "EventCallback",
    "GoalPredicate",
    "GoalSpec",
    "ProximityGuidedSearcher",
    "RandomPathSearcher",
    "SCHEDULE_WEIGHT",
    "SearchBudget",
    "SearchOutcome",
    "SearchStats",
    "Searcher",
    "StopPredicate",
    "SynthesisEvent",
    "explore",
    "explore_frontier",
]
