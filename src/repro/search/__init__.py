"""Search strategies over the symbolic execution tree."""

from .engine import (
    GoalPredicate,
    SearchBudget,
    SearchOutcome,
    SearchStats,
    Searcher,
    explore,
)
from .esd import SCHEDULE_WEIGHT, GoalSpec, ProximityGuidedSearcher
from .strategies import BFSSearcher, DFSSearcher, RandomPathSearcher

__all__ = [
    "BFSSearcher",
    "DFSSearcher",
    "GoalPredicate",
    "GoalSpec",
    "ProximityGuidedSearcher",
    "RandomPathSearcher",
    "SCHEDULE_WEIGHT",
    "SearchBudget",
    "SearchOutcome",
    "SearchStats",
    "Searcher",
    "explore",
]
