"""The exploration loop: a searcher picks states, the executor steps them.

This mirrors the paper's section 3.3: forked states sit in a (strategy-
specific) container; at every step one state is chosen, one instruction is
executed in it, and any successors are returned to the container.  The
engine is shared by ESD and by the KC baselines -- only the state-selection
strategy differs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..obs.flight import FlightRecorder
from ..obs.trace import Tracer
from ..symbex.executor import Executor
from ..symbex.state import ExecutionState

GoalPredicate = Callable[[ExecutionState], bool]


@dataclass(slots=True)
class SynthesisEvent:
    """A structured progress event emitted by :func:`explore`.

    ``kind`` is one of ``'start'`` (search begins), ``'progress'`` (periodic,
    every ``event_interval`` picks), ``'bug'`` (a non-goal bug state was
    recorded), ``'checkpoint'`` (a frontier checkpoint was written; ``detail``
    holds the path), and ``'done'`` (the search returned; ``reason`` holds the
    outcome reason).

    ``worker`` and ``shard`` attribute the event to one worker process of a
    :class:`~repro.distrib.ParallelExplorer` run; both are ``-1`` for events
    from a serial search (or from the parallel master itself).
    """

    kind: str
    picks: int = 0
    instructions: int = 0
    states: int = 0
    pending: int = 0
    seconds: float = 0.0
    reason: str = ""
    detail: str = ""
    worker: int = -1
    shard: int = -1


EventCallback = Callable[[SynthesisEvent], None]
StopPredicate = Callable[[], bool]


class Searcher:
    """Strategy interface: a mutable container of pending states."""

    # States abandoned instead of enqueued (ESD's path abandonment).  On
    # the base class so the engine can observe the before/after delta of
    # an ``add`` uniformly; strategies without pruning leave it at 0.
    pruned: int = 0

    def add(self, state: ExecutionState) -> None:
        raise NotImplementedError

    def pick(self) -> ExecutionState:
        """Remove and return the next state to execute."""
        raise NotImplementedError

    def pick_info(self) -> tuple[int, float, str]:
        """(queue, score, strategy) describing the most recent :meth:`pick`.

        Flight-recorder attribution: strategies that rank states report
        which virtual queue won and at what priority; the default says
        only which strategy picked.  Only consulted while recording.
        """
        return (-1, 0.0, type(self).__name__)

    def __len__(self) -> int:
        raise NotImplementedError

    def notify(self, event: str, state: ExecutionState) -> None:
        """Optional hook for strategies that track events (e.g. ESD boosting
        snapshot states when a contended mutex turns out to be an inner lock)."""

    # -- frontier export (sharded exploration) --------------------------------

    def drain(self) -> list[ExecutionState]:
        """Remove and return every pending state (in pick order)."""
        states = []
        while len(self):
            states.append(self.pick())
        return states

    def export_frontier(self) -> list[tuple[float, ExecutionState]]:
        """Drain the frontier as ``(score, state)`` pairs, best first.

        The score orders states for proximity-band sharding; strategies
        without a numeric priority fall back to pick order.  The searcher is
        empty afterwards -- re-``add`` the states to keep exploring locally.
        """
        return [(float(i), s) for i, s in enumerate(self.drain())]


@dataclass(slots=True)
class SearchBudget:
    max_instructions: int = 2_000_000
    max_states: int = 200_000
    max_seconds: float = 120.0
    # How many instructions a picked state may run before being re-queued
    # (it is returned early when it forks or terminates).  1 reproduces the
    # paper's pick-one-instruction loop exactly; larger batches only change
    # the interleaving of state selection, not which paths exist, and avoid
    # re-sorting the queues after every instruction.
    batch_instructions: int = 64


@dataclass(slots=True)
class SearchStats:
    instructions: int = 0
    picks: int = 0
    states_explored: int = 0
    bugs_seen: int = 0
    paths_completed: int = 0
    paths_infeasible: int = 0
    seconds: float = 0.0


@dataclass(slots=True)
class SearchOutcome:
    """Result of one exploration run."""

    goal_state: Optional[ExecutionState]
    reason: str  # 'goal' | 'exhausted' | 'budget' | 'cancelled'
    stats: SearchStats
    other_bugs: list[ExecutionState] = field(default_factory=list)

    @property
    def found(self) -> bool:
        return self.goal_state is not None


def explore(
    executor: Executor,
    searcher: Searcher,
    initial: ExecutionState,
    is_goal: GoalPredicate,
    budget: Optional[SearchBudget] = None,
    *,
    on_event: Optional[EventCallback] = None,
    event_interval: int = 4096,
    should_stop: Optional[StopPredicate] = None,
    tracer: Optional[Tracer] = None,
    flight: Optional[FlightRecorder] = None,
) -> SearchOutcome:
    """Run the search until the goal is found or a budget is exhausted.

    ``is_goal`` is evaluated on every successor state (terminated or not).
    Terminated non-goal states are dropped; bug states that do not match the
    goal are collected as ``other_bugs`` -- "ESD has discovered a different
    bug ... records the information ... and resumes the search" (section 4.1).

    ``on_event`` receives :class:`SynthesisEvent` observations ('start',
    periodic 'progress' every ``event_interval`` picks, 'bug', and a final
    'done' carrying the outcome reason).  ``should_stop`` is polled once per
    pick; when it returns True the search returns with reason 'cancelled'
    (portfolio synthesis cancels the losing variants this way).
    """
    return explore_frontier(
        executor, searcher, [initial], is_goal, budget,
        on_event=on_event, event_interval=event_interval,
        should_stop=should_stop, tracer=tracer, flight=flight,
    )


def explore_frontier(
    executor: Executor,
    searcher: Searcher,
    frontier: list[ExecutionState],
    is_goal: GoalPredicate,
    budget: Optional[SearchBudget] = None,
    *,
    on_event: Optional[EventCallback] = None,
    event_interval: int = 4096,
    should_stop: Optional[StopPredicate] = None,
    count_frontier: bool = True,
    tracer: Optional[Tracer] = None,
    flight: Optional[FlightRecorder] = None,
) -> SearchOutcome:
    """:func:`explore` generalized to start from a whole frontier.

    This is the sharded-exploration entry point: a worker seeds its searcher
    with its shard (``frontier``) and keeps calling ``explore_frontier`` with
    an empty frontier to continue across work quanta -- the searcher's
    pending states persist between calls.

    ``count_frontier=False`` excludes the seeded states from
    ``states_explored``: states migrating between shards (or resuming from a
    checkpoint) were already counted where they were created, so a sharded
    run's totals match the serial run's.

    Budget accounting charges *distinct* instruction executions: retries of a
    blocking sync instruction after a wake (``executor.stats.replayed``) and
    pure scheduling decisions are not re-charged, so the instruction count is
    a measure of forward progress that serial and sharded runs agree on.
    """
    budget = budget or SearchBudget()
    stats = SearchStats()
    other_bugs: list[ExecutionState] = []
    deadline = time.monotonic() + budget.max_seconds
    started = time.monotonic()
    states_seen = len(frontier) if count_frontier else 0
    # Search-quantum spans: when tracing, picks are grouped into spans of
    # ``event_interval`` picks each (the same granularity as 'progress'
    # events and the pool's work quanta), so a trace shows where search
    # time went without recording a span per pick.  ``traced`` is hoisted
    # so the disabled path costs one boolean test per pick.
    traced = tracer is not None and tracer.enabled
    quantum_span = None
    quantum_picks = 0
    quantum_size = max(event_interval, 1)
    # Flight recording mirrors the tracer's hoisted gate: the disabled
    # loop pays one boolean test per pick and allocates nothing.
    recording = flight is not None and flight.enabled
    solver_stats = executor.solver.stats

    def record_end(succ: ExecutionState, reason: str) -> None:
        """One termination record, attributed to the killing layer."""
        if flight is None:
            return
        why = ""
        line = 0
        if reason == "infeasible":
            # The executor tags the layer that killed the state (wp-dead,
            # step-limit, no-runnable-thread); untagged infeasibility means
            # a feasibility probe refuted the path constraints.
            why = str(succ.meta.get("killed", "") or "path-constraint")
        elif reason == "bug" and succ.bug is not None:
            why = f"bug:{succ.bug.kind.value}"
            line = succ.bug.line
        flight.end(succ.sid, succ.parent_sid, reason, why=why, line=line)

    def record_add(succ: ExecutionState, fresh: bool) -> None:
        """Enqueue ``succ``, logging the lineage edge or the abandonment."""
        if flight is None:
            return
        pruned_before = searcher.pruned
        searcher.add(succ)
        if searcher.pruned > pruned_before:
            flight.drop(succ.sid, succ.parent_sid, "distance-inf")
        elif fresh:
            flight.add(succ.sid, succ.parent_sid)

    def emit(kind: str, reason: str = "", detail: str = "") -> None:
        if on_event is not None:
            on_event(SynthesisEvent(
                kind=kind,
                picks=stats.picks,
                instructions=stats.instructions,
                states=states_seen,
                pending=len(searcher),
                seconds=time.monotonic() - started,
                reason=reason,
                detail=detail,
            ))

    def finish(goal_state: Optional[ExecutionState], reason: str) -> SearchOutcome:
        nonlocal quantum_span
        stats.states_explored = states_seen
        stats.seconds = time.monotonic() - started
        if quantum_span is not None and tracer is not None:
            tracer.finish(quantum_span, {"picks": quantum_picks,
                                         "pending": len(searcher)})
            quantum_span = None
        if recording and flight is not None:
            if goal_state is not None:
                record_end(goal_state, "goal")
            flight.done(reason)
        emit("done", reason=reason)
        return SearchOutcome(goal_state, reason, stats, other_bugs)

    def executed() -> int:
        # Distinct instruction executions so far (replay retries excluded).
        return executor.stats.instructions - executor.stats.replayed

    emit("start")
    for state in frontier:
        if is_goal(state):
            return finish(state, "goal")
        if recording:
            record_add(state, fresh=True)
        else:
            searcher.add(state)

    # Predefined so the per-pick assignments stay inside the recording
    # branch (mypy-clean without paying for them when off).
    solver_base = 0
    static_base = 0
    picked_fn = ""

    while len(searcher):
        if should_stop is not None and should_stop():
            return finish(None, "cancelled")
        if stats.instructions >= budget.max_instructions:
            return finish(None, "budget")
        if states_seen >= budget.max_states:
            return finish(None, "budget")
        if stats.picks % 256 == 0 and time.monotonic() > deadline:
            return finish(None, "budget")

        state = searcher.pick()
        stats.picks += 1
        if traced and tracer is not None:
            if quantum_span is None:
                quantum_span = tracer.begin("search.quantum", "search-quantum")
                quantum_picks = 0
            quantum_picks += 1
            if quantum_picks >= quantum_size:
                tracer.finish(quantum_span, {"picks": quantum_picks,
                                             "pending": len(searcher)})
                quantum_span = None
        if on_event is not None and stats.picks % max(event_interval, 1) == 0:
            emit("progress")
        # Run the picked state for a batch: stop at a fork, termination, or
        # the batch limit, whichever comes first.
        batch_base = executed()
        if recording:
            solver_base = solver_stats.queries
            static_base = solver_stats.static_answers
            picked_thread = state.threads.get(state.current_tid)
            picked_fn = (picked_thread.frames[-1].function
                         if picked_thread is not None and picked_thread.frames
                         else "")
        pending = [state]
        for _ in range(max(budget.batch_instructions, 1)):
            successors = executor.step(pending[-1])
            if len(successors) == 1 and not successors[0].terminated:
                searcher.notify("step", successors[0])
            else:
                pending.pop()
                pending.extend(successors)
                for succ in successors:
                    if not succ.terminated:
                        searcher.notify("step", succ)
                break
        stats.instructions += executed() - batch_base
        if recording and flight is not None:
            queue, score, strategy = searcher.pick_info()
            flight.pick(
                state.sid, queue=queue, score=score, strategy=strategy,
                function=picked_fn, instructions=executed() - batch_base,
                solver_queries=solver_stats.queries - solver_base,
                static_answers=solver_stats.static_answers - static_base,
            )

        for succ in pending:
            if is_goal(succ):
                return finish(succ, "goal")
            if succ.status == "bug":
                stats.bugs_seen += 1
                other_bugs.append(succ)
                if recording:
                    record_end(succ, "bug")
                if on_event is not None:
                    emit("bug", detail=succ.bug.summary() if succ.bug else "")
                continue
            if succ.status == "exited":
                stats.paths_completed += 1
                if recording:
                    record_end(succ, "exited")
                continue
            if succ.status == "infeasible":
                stats.paths_infeasible += 1
                if recording:
                    record_end(succ, "infeasible")
                continue
            if succ is not state:
                states_seen += 1
            if recording:
                record_add(succ, fresh=succ is not state)
            else:
                searcher.add(succ)

    return finish(None, "exhausted")
