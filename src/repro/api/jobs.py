"""The job model: versioned, JSON-serializable job specs and records.

A :class:`JobSpec` is everything needed to run one synthesis as a detached
job -- the program (MiniC source, or the name of a bundled workload), the
bug report, the ESD config, and scheduling hints (priority, workers).  Its
canonical JSON bytes are content-addressed, so the spec digest doubles as
the store key *and* the deduplication key: submitting the identical spec
twice yields one job.

A :class:`JobRecord` is the mutable lifecycle document the service keeps
per job::

    QUEUED -> STATIC -> SEARCHING -> FOUND | EXHAUSTED | CANCELLED | FAILED

``STATIC`` covers program compilation plus the static analysis phase;
``SEARCHING`` is the path search.  A gracefully interrupted job (service
shutdown) goes *back* to ``QUEUED`` with a checkpoint artifact attached and
``interruptions`` bumped -- it is resumable, not failed.  Every transition
appends a :class:`JobEvent`, which the daemon's ``/events`` endpoint
exposes for polling clients.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from ..coredump import BugReport
from ..core.synthesis import ESDConfig
from ..schema import (
    canonical_json_bytes,
    check_schema_version,
    content_digest,
)

JOBSPEC_FORMAT = "esd-jobspec-v1"
JOBSPEC_SCHEMA_VERSION = 1
JOBRECORD_FORMAT = "esd-jobrecord-v1"
JOBRECORD_SCHEMA_VERSION = 1

# -- lifecycle states ---------------------------------------------------------

QUEUED = "QUEUED"
STATIC = "STATIC"
SEARCHING = "SEARCHING"
FOUND = "FOUND"
EXHAUSTED = "EXHAUSTED"
CANCELLED = "CANCELLED"
FAILED = "FAILED"

JOB_STATES = (QUEUED, STATIC, SEARCHING, FOUND, EXHAUSTED, CANCELLED, FAILED)
RUNNING_STATES = frozenset({STATIC, SEARCHING})
TERMINAL_STATES = frozenset({FOUND, EXHAUSTED, CANCELLED, FAILED})


class JobError(Exception):
    """Base class for job-layer errors."""


class SpecError(JobError, ValueError):
    """A job spec is malformed (bad program reference, missing report)."""


class UnknownJobError(JobError, KeyError):
    def __init__(self, job_id: str) -> None:
        super().__init__(f"no job {job_id!r}")
        self.job_id = job_id

    def __str__(self) -> str:
        return self.args[0]


class ResultNotReadyError(JobError):
    """The job has not produced the requested artifact yet."""


# Job kinds: 'synth' runs ESD and stores the execution file; 'repair' runs
# the full localize -> patch -> validate pipeline and stores the patch (plus
# the failing execution it synthesized on the way).
JOB_KINDS = ("synth", "repair")


@dataclass(slots=True)
class JobSpec:
    """One synthesis (or repair) request in wire form.

    Exactly one of ``source`` (program text, compiled as ``program_name``)
    or ``workload`` (a bundled workload name) identifies the program.
    ``lang`` selects the frontend for source jobs: ``'esd'`` (MiniC,
    the default) or ``'python'`` (``repro.frontend``).  The report may be
    omitted only for workload jobs -- the service generates the workload's
    deterministic coredump server-side.  ``kind='repair'`` asks for the
    automated-repair pipeline instead of plain synthesis; ``repair_config``
    (a :class:`~repro.repair.RepairConfig` dict) tunes it.
    """

    report: Optional[BugReport] = None
    source: Optional[str] = None
    program_name: str = "main"
    lang: str = "esd"
    workload: Optional[str] = None
    config: Optional[ESDConfig] = None
    workers: int = 1
    priority: int = 0
    kind: str = "synth"
    repair_config: Optional[dict] = None

    def validate(self) -> None:
        if (self.source is None) == (self.workload is None):
            raise SpecError(
                "job spec needs exactly one of source= or workload="
            )
        if self.workload is None and self.report is None:
            raise SpecError("a source job spec needs a bug report")
        if self.lang not in ("esd", "python"):
            raise SpecError(
                f"unknown program language {self.lang!r}; "
                f"available: esd, python"
            )
        if self.workers < 1:
            raise SpecError("workers must be at least 1")
        if self.kind not in JOB_KINDS:
            raise SpecError(
                f"unknown job kind {self.kind!r}; "
                f"available: {', '.join(JOB_KINDS)}"
            )
        if self.repair_config is not None and self.kind != "repair":
            raise SpecError("repair_config= needs kind='repair'")

    def to_dict(self) -> dict:
        program: dict = (
            {"workload": self.workload} if self.workload is not None
            else {"source": self.source, "name": self.program_name,
                  "lang": self.lang}
        )
        return {
            "format": JOBSPEC_FORMAT,
            "schema_version": JOBSPEC_SCHEMA_VERSION,
            "kind": self.kind,
            "program": program,
            "report": self.report.to_dict() if self.report else None,
            "config": self.config.to_dict() if self.config else None,
            "repair_config": (dict(self.repair_config)
                              if self.repair_config else None),
            "workers": self.workers,
            "priority": self.priority,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "JobSpec":
        if data.get("format") != JOBSPEC_FORMAT:
            raise SpecError(
                f"not a job spec: format {data.get('format')!r} "
                f"(expected {JOBSPEC_FORMAT!r})"
            )
        check_schema_version(data, JOBSPEC_SCHEMA_VERSION, "job spec")
        program = data.get("program") or {}
        report = data.get("report")
        config = data.get("config")
        repair_config = data.get("repair_config")
        spec = cls(
            report=BugReport.from_dict(report) if report else None,
            source=program.get("source"),
            program_name=program.get("name", "main"),
            lang=program.get("lang", "esd"),
            workload=program.get("workload"),
            config=ESDConfig.from_dict(config) if config else None,
            workers=data.get("workers", 1),
            priority=data.get("priority", 0),
            kind=data.get("kind", "synth"),
            repair_config=dict(repair_config) if repair_config else None,
        )
        spec.validate()
        return spec

    def canonical_bytes(self) -> bytes:
        return canonical_json_bytes(self.to_dict())

    def digest(self) -> str:
        """The content address of this spec -- also the dedup key."""
        return content_digest(self.canonical_bytes())


@dataclass(slots=True)
class JobEvent:
    """One observable moment in a job's life (transition or progress)."""

    seq: int
    kind: str  # 'state' | 'progress' | 'checkpoint' | 'error'
    state: str = ""
    detail: str = ""
    instructions: int = 0
    at: float = 0.0  # wall-clock (time.time)

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "kind": self.kind,
            "state": self.state,
            "detail": self.detail,
            "instructions": self.instructions,
            "at": self.at,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "JobEvent":
        return cls(
            seq=data["seq"],
            kind=data["kind"],
            state=data.get("state", ""),
            detail=data.get("detail", ""),
            instructions=data.get("instructions", 0),
            at=data.get("at", 0.0),
        )


# Progress events beyond this are folded into the latest one: a job record
# must stay a cheap document, not an unbounded log.
MAX_PROGRESS_EVENTS = 256


@dataclass(slots=True)
class JobRecord:
    """The mutable per-job lifecycle document."""

    job_id: str
    spec_digest: str
    priority: int = 0
    state: str = QUEUED
    reason: str = ""  # search outcome reason for EXHAUSTED/CANCELLED
    error: str = ""  # traceback summary for FAILED
    created_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    # kind -> digest references into the artifact store ('spec', 'execution',
    # 'checkpoint', 'report').
    artifacts: dict[str, str] = field(default_factory=dict)
    # Summary numbers from the SynthesisResult, once terminal.
    result: Optional[dict] = None
    events: list[JobEvent] = field(default_factory=list)
    interruptions: int = 0
    # True when a later identical submission was answered with this record.
    deduped: bool = False
    # A job submitted through the in-process facade over a module object
    # (no source text) cannot be re-run by a restarted daemon.
    ephemeral: bool = False

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def add_event(self, kind: str, *, state: str = "", detail: str = "",
                  instructions: int = 0) -> JobEvent:
        if (kind == "progress" and self.events
                and self.events[-1].kind == "progress"
                and len(self.events) >= MAX_PROGRESS_EVENTS):
            last = self.events[-1]
            # Folding still bumps seq: an incremental `?since=` poller must
            # see the updated event again, or progress would look stalled
            # past the cap.
            last.seq += 1
            last.detail = detail
            last.instructions = instructions
            last.at = time.time()
            return last
        event = JobEvent(
            seq=self.events[-1].seq + 1 if self.events else 1,
            kind=kind, state=state, detail=detail,
            instructions=instructions, at=time.time(),
        )
        self.events.append(event)
        return event

    def transition(self, state: str, *, reason: str = "",
                   detail: str = "") -> None:
        assert state in JOB_STATES, state
        now = time.time()
        if state in RUNNING_STATES and self.started_at is None:
            self.started_at = now
        if state in TERMINAL_STATES:
            self.finished_at = now
        elif state == QUEUED:
            # Re-queued after a graceful interruption: the next leg gets its
            # own started/finished stamps.
            self.started_at = None
            self.finished_at = None
        self.state = state
        if reason:
            self.reason = reason
        self.add_event("state", state=state, detail=detail or reason)

    def to_dict(self) -> dict:
        return {
            "format": JOBRECORD_FORMAT,
            "schema_version": JOBRECORD_SCHEMA_VERSION,
            "job_id": self.job_id,
            "spec_digest": self.spec_digest,
            "priority": self.priority,
            "state": self.state,
            "reason": self.reason,
            "error": self.error,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "artifacts": dict(self.artifacts),
            "result": self.result,
            "events": [e.to_dict() for e in self.events],
            "interruptions": self.interruptions,
            "deduped": self.deduped,
            "ephemeral": self.ephemeral,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "JobRecord":
        if data.get("format") != JOBRECORD_FORMAT:
            raise SpecError(
                f"not a job record: format {data.get('format')!r} "
                f"(expected {JOBRECORD_FORMAT!r})"
            )
        check_schema_version(data, JOBRECORD_SCHEMA_VERSION, "job record")
        return cls(
            job_id=data["job_id"],
            spec_digest=data["spec_digest"],
            priority=data.get("priority", 0),
            state=data.get("state", QUEUED),
            reason=data.get("reason", ""),
            error=data.get("error", ""),
            created_at=data.get("created_at", 0.0),
            started_at=data.get("started_at"),
            finished_at=data.get("finished_at"),
            artifacts=dict(data.get("artifacts", {})),
            result=data.get("result"),
            events=[JobEvent.from_dict(e) for e in data.get("events", [])],
            interruptions=data.get("interruptions", 0),
            deduped=data.get("deduped", False),
            ephemeral=data.get("ephemeral", False),
        )
