"""The :class:`ReproSession` facade: ESD as a service (paper section 8).

The paper's usage model is a stream of bug reports against one program:
each report is synthesized, played back, and triaged against earlier bugs.
Since the job-service redesign, a session is a thin *single-tenant facade*
over :class:`~repro.service.ReproService`: it registers its module as one
service program context and delegates synthesis to the service's engine,
so the artifacts every call shares -- the static-analysis cache
(inter-procedural CFG, distance tables, intermediate goals) and the shared
solver with its structural counterexample cache -- live in the service
layer and behave identically whether reached through this facade, a
``synthesize_batch``, or a queued job.

    session = ReproSession.from_source(minic_source)
    result = session.synthesize(report)          # static phase runs here...
    more = session.synthesize_batch(reports)     # ...and is reused here
    playback = session.play_back(result.execution_file)
    outcome = session.triage(another_report)     # duplicate detection

    job = session.submit(report)                 # async: queue on the service
    record = session.wait(job.job_id)            # ... and await the job

``synthesize_portfolio`` runs several :class:`~repro.core.ESDConfig`
variants (seeds, strategies, focusing ablations) concurrently and cancels
the losers as soon as one variant finds the bug.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Mapping, Optional, Sequence, Union

if TYPE_CHECKING:  # pragma: no cover
    from ..distrib import ExplorationCheckpoint
    from ..repair import Localization, RepairConfig, RepairResult

from .. import ir
from ..coredump import BugReport
from ..core.execfile import ExecutionFile
from ..core.synthesis import ESDConfig, StaticStats, SynthesisResult
from ..core.triage import TriageDatabase
from ..lang import compile_source
from ..obs import FlightRecorder, Tracer
from ..playback import PlaybackResult, play_back
from ..schema import atomic_write_text
from ..search import EventCallback
from ..service import JobRecord, ReproService
from ..solver import CacheStats, SolverStats
from . import registry

Variants = Union[Sequence[ESDConfig], Mapping[str, ESDConfig]]


@dataclass(slots=True)
class BatchResult:
    """Results of one ``synthesize_batch`` call, in report order."""

    results: list[SynthesisResult]

    def __iter__(self) -> Iterator[SynthesisResult]:
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, index):
        return self.results[index]

    @property
    def found_count(self) -> int:
        return sum(1 for r in self.results if r.found)

    @property
    def static_seconds(self) -> float:
        """Total static-phase time across the batch; with a warm session
        cache this stays near the single-report cost."""
        return sum(r.static_seconds for r in self.results)

    @property
    def search_seconds(self) -> float:
        return sum(r.search_seconds for r in self.results)

    @property
    def total_seconds(self) -> float:
        return self.static_seconds + self.search_seconds


@dataclass(slots=True)
class PortfolioResult:
    """Outcome of a first-win portfolio run."""

    winner: Optional[SynthesisResult]
    winner_name: Optional[str]
    results: dict[str, SynthesisResult]
    wall_seconds: float
    # Variants that raised instead of returning a result (absent from
    # ``results``); only populated when a winner emerged anyway, since with
    # no winner the first error is re-raised.
    errors: dict[str, BaseException] = field(default_factory=dict)

    @property
    def found(self) -> bool:
        return self.winner is not None

    @property
    def cancelled(self) -> tuple[str, ...]:
        """Variants stopped by first-win cancellation."""
        return tuple(
            name for name, r in self.results.items() if r.reason == "cancelled"
        )

    @property
    def total_instructions(self) -> int:
        """Merged work across all variants (winners, losers, cancelled)."""
        return sum(r.instructions for r in self.results.values())

    @property
    def total_states_explored(self) -> int:
        return sum(r.states_explored for r in self.results.values())


@dataclass(slots=True)
class TriageOutcome:
    """One report pushed through synthesize-then-deduplicate."""

    bug_id: Optional[int]
    is_new: bool
    result: SynthesisResult

    @property
    def synthesized(self) -> bool:
        return self.result.found


class ReproSession:
    """One program, many reports: the single-tenant facade over the
    job service's synthesis engine."""

    def __init__(
        self,
        module: ir.Module,
        *,
        config: Optional[ESDConfig] = None,
        on_progress: Optional[EventCallback] = None,
        workers: Optional[int] = None,
        service: Optional[ReproService] = None,
        source: Optional[str] = None,
        trace: bool = False,
        flight: bool = False,
    ) -> None:
        self.module = module
        self.config = config or ESDConfig()
        self.on_progress = on_progress
        # Default worker count for synthesize(): explicit argument, else the
        # REPRO_WORKERS environment variable (how the CI matrix runs the
        # whole test suite through the parallel pool), else serial.
        if workers is None:
            workers = int(os.environ.get("REPRO_WORKERS", "1") or 1)
        self.default_workers = max(1, workers)
        # The session's backing service: private and in-memory by default
        # (no disk artifacts), or a shared daemon-grade service passed in.
        # A private service is owned: close() stops its scheduler threads
        # (they only start if submit() is used).
        self._owns_service = service is None
        self.service = service or ReproService(default_config=self.config)
        self.program = self.service.register_module(module, source=source)
        # Shared-artifact views, same names as before the redesign: one
        # static cache and one solver/counterexample cache per program,
        # shared by batch, portfolio, and every queued job on this module.
        self.statics = self.program.statics
        self.solver_cache = self.program.solver_cache
        self.solver = self.program.solver
        self.triage_db = TriageDatabase()
        # Observability (``trace=True``): a session-rooted span tracer that
        # every synthesize/batch/portfolio call reports into.  The tracer
        # is attached to the session's solver -- safe because the session
        # is single-tenant over its program -- so slow queries appear as
        # solver-query spans.  Timing lives only in the trace document;
        # synthesized artifacts stay byte-identical with tracing on or off.
        self.tracer = Tracer(enabled=trace)
        self._session_span = (
            self.tracer.begin("session", "session", {"module": module.name})
            if trace else None
        )
        if trace:
            self.solver.tracer = self.tracer
        # Flight recording (``flight=True``): a session-lifetime search
        # flight recorder every synthesize() call reports into.  Like the
        # tracer it only observes -- recorded synthesis stays byte-identical
        # to unrecorded -- and the log exports via :meth:`flight_document`.
        self.flight = FlightRecorder(enabled=flight)

    @classmethod
    def from_source(
        cls,
        source: str,
        name: str = "main",
        *,
        config: Optional[ESDConfig] = None,
        on_progress: Optional[EventCallback] = None,
        service: Optional[ReproService] = None,
    ) -> "ReproSession":
        """A session over MiniC source.  The source text travels into the
        service program context, so queued jobs from this session are
        recoverable and dedupe against wire submissions of the same
        program."""
        return cls(compile_source(source, name), config=config,
                   on_progress=on_progress, service=service, source=source)

    def close(self) -> None:
        """Release the backing service's scheduler threads.

        Only needed after :meth:`submit` (inline synthesis never starts
        them), and only when the session owns its service -- a shared
        service passed into the constructor is left running."""
        if self._owns_service:
            self.service.shutdown(graceful=False, timeout=10.0)

    def __enter__(self) -> "ReproSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def static_stats(self) -> StaticStats:
        """Build/hit counters for the shared static-phase cache."""
        return self.statics.stats

    @property
    def solver_stats(self) -> SolverStats:
        """Query/hit/fast-path counters for the session's shared solver."""
        return self.solver.stats

    @property
    def solver_cache_stats(self) -> CacheStats:
        """Counters for the structural counterexample cache (all hit kinds)."""
        return self.solver_cache.stats

    # -- synthesis -----------------------------------------------------------

    def synthesize(
        self,
        report: BugReport,
        config: Optional[ESDConfig] = None,
        *,
        on_progress: Optional[EventCallback] = None,
        should_stop=None,
        workers: Optional[int] = None,
        checkpoint_path: Optional[str] = None,
        checkpoint_interval: float = 5.0,
        handle_signals: bool = False,
    ) -> SynthesisResult:
        """Synthesize one report, reusing the session's static artifacts
        and its shared solver/counterexample cache.

        ``workers > 1`` routes the search phase through the parallel
        exploration pool (:class:`~repro.distrib.ParallelExplorer`): the
        frontier is sharded by proximity-score bands across worker
        processes with work-stealing and first-win cancellation.  Omitted,
        the session default applies (constructor ``workers`` argument or
        the ``REPRO_WORKERS`` environment variable).  ``checkpoint_path``
        writes periodic frontier checkpoints there (implies the pool even
        with one worker) for :meth:`resume`; ``handle_signals`` makes the
        pool catch SIGTERM/SIGINT and write a final checkpoint before
        returning (reason ``'interrupted'``).

        ``should_stop`` callers (the portfolio path runs variants on
        threads) always get the serial engine: forking a process pool from
        a multi-threaded parent is not safe.
        """
        workers = workers if workers is not None else self.default_workers
        return self.service.synthesize(
            self.program,
            report,
            config or self.config,
            on_progress=on_progress or self.on_progress,
            should_stop=should_stop,
            workers=workers,
            checkpoint_path=checkpoint_path,
            checkpoint_interval=checkpoint_interval,
            handle_signals=handle_signals,
            tracer=self.tracer if self.tracer.enabled else None,
            flight=self.flight if self.flight.enabled else None,
        )

    # -- async jobs ----------------------------------------------------------

    def submit(
        self,
        report: BugReport,
        config: Optional[ESDConfig] = None,
        *,
        priority: int = 0,
        kind: str = "synth",
        repair_config=None,
    ) -> JobRecord:
        """Queue the report as an asynchronous job on the backing service.

        Returns the :class:`~repro.api.jobs.JobRecord` immediately; poll it
        via :meth:`job` or block with :meth:`wait`.  Identical submissions
        dedupe to one job via the spec's store digest.  ``kind='repair'``
        queues the automated-repair pipeline (needs a session built from
        source); ``repair_config`` may be a
        :class:`~repro.repair.RepairConfig` or its dict form."""
        if repair_config is not None and not isinstance(repair_config, dict):
            repair_config = repair_config.to_dict()
        return self.service.submit_report(
            self.program, report, config or self.config, priority=priority,
            kind=kind, repair_config=repair_config,
        )

    def job(self, job_id: str) -> JobRecord:
        return self.service.job(job_id)

    def wait(self, job_id: str, timeout: Optional[float] = None) -> JobRecord:
        return self.service.wait(job_id, timeout=timeout)

    def resume(
        self,
        checkpoint: "ExplorationCheckpoint",
        *,
        workers: Optional[int] = None,
        on_progress: Optional[EventCallback] = None,
        checkpoint_path: Optional[str] = None,
        checkpoint_interval: float = 5.0,
        handle_signals: bool = False,
    ) -> SynthesisResult:
        """Continue a checkpointed synthesis (see :meth:`from_checkpoint`).

        The resumed leg gets a fresh budget allowance from the checkpoint's
        config; reported totals accumulate across legs.  ``checkpoint_path``
        keeps checkpointing the resumed run (pass the same path to make the
        file a rolling checkpoint)."""
        from ..distrib import ParallelExplorer

        if checkpoint.module is not self.module:
            raise ValueError(
                "checkpoint was not made for this session's module; "
                "use ReproSession.from_checkpoint(checkpoint)"
            )
        pool = ParallelExplorer(
            self.module,
            checkpoint.report,
            checkpoint.config,
            workers=workers if workers is not None else checkpoint.workers,
            statics=self.statics,
            solver=self.solver,
            on_event=on_progress or self.on_progress,
            checkpoint_path=checkpoint_path,
            checkpoint_interval=checkpoint_interval,
            handle_signals=handle_signals,
            tracer=self.tracer if self.tracer.enabled else None,
        )
        return pool.resume(checkpoint)

    @classmethod
    def from_checkpoint(
        cls,
        checkpoint: "ExplorationCheckpoint",
        *,
        on_progress: Optional[EventCallback] = None,
    ) -> "ReproSession":
        """A session over the module embedded in an exploration checkpoint."""
        return cls(checkpoint.module, config=checkpoint.config,
                   on_progress=on_progress)

    def synthesize_batch(
        self,
        reports: Sequence[BugReport],
        config: Optional[ESDConfig] = None,
        *,
        on_progress: Optional[EventCallback] = None,
        workers: Optional[int] = None,
    ) -> BatchResult:
        """Synthesize a stream of reports; static analysis is amortized
        across the whole batch.  ``workers`` routes every report through
        the parallel exploration pool."""
        return BatchResult([
            self.synthesize(report, config, on_progress=on_progress,
                            workers=workers)
            for report in reports
        ])

    def synthesize_portfolio(
        self,
        report: BugReport,
        variants: Variants,
        *,
        max_workers: Optional[int] = None,
        on_progress: Optional[EventCallback] = None,
    ) -> PortfolioResult:
        """Run several config variants concurrently; first win cancels the
        rest.

        ``variants`` is a mapping of name -> :class:`ESDConfig` or a plain
        sequence of configs (named ``v0``, ``v1``, ...).  The winner is the
        first variant to return a found result; every other variant is
        cancelled cooperatively and reports reason ``'cancelled'``.

        Unknown strategy names raise before any variant starts.  If a
        variant raises mid-run and no winner emerges, the others are
        cancelled and the first error re-raised; errored variants are
        absent from ``results``.
        """
        named = self._named_variants(variants)
        # Fail fast on config typos: a bad strategy name must not cost the
        # other variants their full search budgets.
        for _, variant in named:
            registry.get_searcher(variant.strategy)
        cancel = threading.Event()
        results: dict[str, SynthesisResult] = {}
        errors: dict[str, BaseException] = {}
        winner: Optional[SynthesisResult] = None
        winner_name: Optional[str] = None
        started = time.monotonic()

        def run(name: str, variant: ESDConfig):
            try:
                return name, self.synthesize(
                    report, variant,
                    on_progress=on_progress,
                    should_stop=cancel.is_set,
                ), None
            except BaseException as exc:  # noqa: BLE001 -- re-raised below
                return name, None, exc

        with ThreadPoolExecutor(max_workers=max_workers or len(named)) as pool:
            futures = [pool.submit(run, name, cfg) for name, cfg in named]
            for future in as_completed(futures):
                name, result, exc = future.result()
                if exc is not None:
                    # Cancel the surviving variants so the error surfaces
                    # promptly instead of after their full budgets.
                    errors[name] = exc
                    cancel.set()
                    continue
                results[name] = result
                if result.found and winner is None:
                    winner, winner_name = result, name
                    cancel.set()
        if winner is None and errors:
            raise next(iter(errors.values()))
        # Report in variant order, not completion order.
        ordered = {name: results[name] for name, _ in named if name in results}
        return PortfolioResult(
            winner=winner,
            winner_name=winner_name,
            results=ordered,
            wall_seconds=time.monotonic() - started,
            errors=errors,
        )

    @staticmethod
    def _named_variants(variants: Variants) -> list[tuple[str, ESDConfig]]:
        if isinstance(variants, Mapping):
            named = list(variants.items())
        else:
            named = [(f"v{i}", cfg) for i, cfg in enumerate(variants)]
        if not named:
            raise ValueError("portfolio needs at least one variant")
        return named

    # -- playback & triage ---------------------------------------------------

    def play_back(
        self,
        execution: ExecutionFile,
        mode: str = "strict",
        max_steps: int = 10_000_000,
    ) -> PlaybackResult:
        """Deterministically replay a synthesized execution."""
        span = (self.tracer.begin("phase:replay", "phase",
                                  {"mode": mode})
                if self.tracer.enabled else None)
        try:
            return play_back(self.module, execution, mode=mode,
                             max_steps=max_steps)
        finally:
            if span is not None:
                self.tracer.finish(span)

    # -- observability -------------------------------------------------------

    def trace_document(self, meta: Optional[dict] = None) -> dict:
        """The session's spans as an ``esd-trace-v1`` document.

        Valid whenever the session was built with ``trace=True``; spans
        still open (including the root session span) are exported with
        their current duration and the tracer keeps recording, so this
        can be called repeatedly as the session accumulates work.
        """
        base = {"module": self.module.name}
        if meta:
            base.update(meta)
        return self.tracer.to_document(meta=base)

    def save_trace(self, path, meta: Optional[dict] = None) -> dict:
        """Write :meth:`trace_document` to ``path`` as JSON; returns it."""
        import json as _json

        doc = self.trace_document(meta=meta)
        atomic_write_text(path, _json.dumps(doc, indent=2) + "\n")
        return doc

    def flight_document(self, meta: Optional[dict] = None) -> dict:
        """The session's search log as an ``esd-searchlog-v1`` document.

        Valid whenever the session was built with ``flight=True``; the
        recorder keeps appending across synthesize() calls, so this can
        be exported repeatedly as the session accumulates searches.
        """
        base = {"module": self.module.name}
        if meta:
            base.update(meta)
        return self.flight.to_document(meta=base)

    def save_flight(self, path, meta: Optional[dict] = None) -> dict:
        """Write :meth:`flight_document` to ``path`` as JSON; returns it."""
        import json as _json

        doc = self.flight_document(meta=meta)
        atomic_write_text(path, _json.dumps(doc, indent=2) + "\n")
        return doc

    def metrics(self) -> dict:
        """The backing service's unified ``esd-metrics-v1`` snapshot.

        Covers this session's program (solver, cache, static, executor
        counters) plus any other programs registered on a shared service.
        """
        return self.service.metrics_snapshot()

    def triage(
        self,
        report: BugReport,
        config: Optional[ESDConfig] = None,
    ) -> TriageOutcome:
        """Synthesize a report and deduplicate it against the session's
        triage database (identical synthesized executions = same bug)."""
        result = self.synthesize(report, config)
        if not result.found:
            return TriageOutcome(bug_id=None, is_new=False, result=result)
        assert result.execution_file is not None
        bug_id, is_new = self.triage_db.submit(result.execution_file)
        return TriageOutcome(bug_id=bug_id, is_new=is_new, result=result)

    # -- repair --------------------------------------------------------------

    def localize(
        self,
        report: BugReport,
        *,
        failing: Optional[ExecutionFile] = None,
        passing: Optional[Sequence[ExecutionFile]] = None,
        passing_count: int = 4,
        formula: str = "ochiai",
        config: Optional[ESDConfig] = None,
    ) -> "Localization":
        """Rank suspect statements for a report (repair step 1 standalone).

        The failing execution is synthesized from the report unless given;
        passing executions are synthesized from clean symbolic terminations
        unless given.  Both reuse the session's shared static artifacts and
        solver."""
        from ..repair import (
            LocalizationError,
            localize as run_localize,
            synthesize_passing_executions,
        )

        if failing is None:
            result = self.synthesize(report, config, workers=1)
            if not result.found:
                raise LocalizationError(
                    f"cannot localize: synthesis found no failing execution "
                    f"({result.reason})"
                )
            failing = result.execution_file
        if passing is None:
            passing = synthesize_passing_executions(
                self.module, count=passing_count, solver=self.solver,
            )
        return run_localize(self.module, [failing], passing, formula=formula)

    def repair(
        self,
        report: BugReport,
        *,
        config: Optional["RepairConfig"] = None,
        failing: Optional[ExecutionFile] = None,
        passing: Optional[Sequence[ExecutionFile]] = None,
        on_progress: Optional[EventCallback] = None,
        should_stop=None,
    ) -> "RepairResult":
        """The full localize -> patch -> validate pipeline for one report,
        on the session's shared static artifacts and solver.  Returns a
        :class:`~repro.repair.RepairResult` whose ``patch`` (when found) is
        a serializable, re-applicable edit validated by the paper's
        criterion."""
        from ..repair import RepairConfig as _RepairConfig, repair as run_repair

        if config is None:
            config = _RepairConfig()
        if config.esd is None:
            # Inherit the session's synthesis budget for the failing-execution
            # synthesis and the validation re-synthesis -- on a private copy,
            # never by mutating the caller's config object.
            config = _RepairConfig.from_dict(config.to_dict())
            config.esd = self.config
        return run_repair(
            self.module,
            report,
            config=config,
            failing=failing,
            passing=passing,
            statics=self.statics,
            solver=self.solver,
            on_progress=on_progress or self.on_progress,
            should_stop=should_stop,
        )
