"""The service API: a session facade plus the strategy/bug-class registry.

:class:`ReproSession` is the front door for everything the pipeline does --
synthesis (single, batch, portfolio), playback, and triage -- with the
static-phase artifacts cached per module.  :mod:`repro.api.registry` makes
search strategies and bug classes pluggable by name.
"""

from ..core.synthesis import StaticAnalysisCache, StaticStats
from ..search import SynthesisEvent
from . import registry
from .registry import (
    BugClassPlugin,
    UnknownBugClassError,
    UnknownStrategyError,
    available_bug_classes,
    available_searchers,
    get_bug_class,
    get_searcher,
    register_bug_class,
    register_searcher,
)
from .session import (
    BatchResult,
    PortfolioResult,
    ReproSession,
    TriageOutcome,
)

__all__ = [
    "BatchResult",
    "BugClassPlugin",
    "PortfolioResult",
    "ReproSession",
    "StaticAnalysisCache",
    "StaticStats",
    "SynthesisEvent",
    "TriageOutcome",
    "UnknownBugClassError",
    "UnknownStrategyError",
    "available_bug_classes",
    "available_searchers",
    "get_bug_class",
    "get_searcher",
    "register_bug_class",
    "register_searcher",
    "registry",
]
