"""The service API: jobs, a session facade, and the plugin registry.

:class:`ReproSession` is the single-tenant front door for everything the
pipeline does -- synthesis (single, batch, portfolio), playback, and
triage -- with the static-phase artifacts cached per module.
:mod:`repro.api.jobs` defines the versioned :class:`JobSpec`/
:class:`JobRecord` wire model the :class:`~repro.service.ReproService`
job queue runs on.  :mod:`repro.api.registry` makes search strategies and
bug classes pluggable by name.
"""

from ..core.synthesis import StaticAnalysisCache, StaticStats
from ..search import SynthesisEvent
from . import registry
from .jobs import (
    JOB_STATES,
    TERMINAL_STATES,
    JobError,
    JobRecord,
    JobSpec,
    ResultNotReadyError,
    SpecError,
    UnknownJobError,
)
from .registry import (
    BugClassPlugin,
    UnknownBugClassError,
    UnknownStrategyError,
    available_bug_classes,
    available_searchers,
    get_bug_class,
    get_searcher,
    register_bug_class,
    register_searcher,
)
from .session import (
    BatchResult,
    PortfolioResult,
    ReproSession,
    TriageOutcome,
)

__all__ = [
    "BatchResult",
    "BugClassPlugin",
    "JOB_STATES",
    "JobError",
    "JobRecord",
    "JobSpec",
    "PortfolioResult",
    "ReproSession",
    "ResultNotReadyError",
    "SpecError",
    "StaticAnalysisCache",
    "StaticStats",
    "SynthesisEvent",
    "TERMINAL_STATES",
    "TriageOutcome",
    "UnknownJobError",
    "UnknownBugClassError",
    "UnknownStrategyError",
    "available_bug_classes",
    "available_searchers",
    "get_bug_class",
    "get_searcher",
    "register_bug_class",
    "register_searcher",
    "registry",
]
