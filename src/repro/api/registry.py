"""Plugin registry: search strategies and bug classes looked up by name.

The synthesis driver used to hard-wire the proximity-guided searcher and the
deadlock/race schedule policies; now both are resolved here, so a new search
strategy or bug class is a registration away:

    from repro.api import registry

    @registry.register_searcher("my-search")
    def make(distances, intermediate, final, config):
        return MySearcher(...)

    result = session.synthesize(report, ESDConfig(strategy="my-search"))

A *searcher factory* receives ``(distances, intermediate_goals, final_goal,
config)`` and returns a :class:`~repro.search.Searcher`.  A *bug class*
bundles the schedule-policy construction for one ``report.bug_type`` (and,
for plugin bug classes the core does not know, an optional goal extractor).
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from .. import ir
from ..concurrency import (
    DeadlockSchedulePolicy,
    RaceDetector,
    RaceSchedulePolicy,
)
from ..search import (
    BFSSearcher,
    DFSSearcher,
    GoalSpec,
    ProximityGuidedSearcher,
    RandomPathSearcher,
    Searcher,
)
from ..symbex import SchedulerPolicy

if TYPE_CHECKING:  # pragma: no cover
    from ..analysis import DistanceSource
    from ..coredump import BugReport
    from ..core.goals import SynthesisGoal
    from ..core.synthesis import ESDConfig

SearcherFactory = Callable[
    ["DistanceSource", list[GoalSpec], GoalSpec, "ESDConfig"], Searcher
]
PolicyBuilder = Callable[
    [ir.Module, "SynthesisGoal", "ESDConfig"], list[SchedulerPolicy]
]
GoalExtractor = Callable[[ir.Module, "BugReport"], "SynthesisGoal"]


class UnknownStrategyError(LookupError):
    """No searcher registered under the requested name."""


class UnknownBugClassError(LookupError):
    """No bug class registered under the requested name."""


@dataclass(frozen=True, slots=True)
class BugClassPlugin:
    """One bug class: how to build its schedule policies, and (for classes
    the core goal extractor does not know) how to extract its goal."""

    name: str
    build_policies: PolicyBuilder
    extract: Optional[GoalExtractor] = None


_searchers: dict[str, SearcherFactory] = {}
_bug_classes: dict[str, BugClassPlugin] = {}


# -- searchers ---------------------------------------------------------------


def register_searcher(name: str, factory: Optional[SearcherFactory] = None):
    """Register a searcher factory under ``name`` (usable as a decorator)."""

    def _register(fn: SearcherFactory) -> SearcherFactory:
        _searchers[name] = fn
        return fn

    return _register if factory is None else _register(factory)


def get_searcher(name: str) -> SearcherFactory:
    try:
        return _searchers[name]
    except KeyError:
        raise UnknownStrategyError(
            f"unknown search strategy {name!r}; "
            f"available: {', '.join(available_searchers())}"
        ) from None


def available_searchers() -> tuple[str, ...]:
    return tuple(sorted(_searchers))


# -- bug classes -------------------------------------------------------------


def register_bug_class(plugin: BugClassPlugin) -> BugClassPlugin:
    _bug_classes[plugin.name] = plugin
    return plugin


def get_bug_class(name: str) -> BugClassPlugin:
    try:
        return _bug_classes[name]
    except KeyError:
        raise UnknownBugClassError(
            f"unknown bug class {name!r}; "
            f"available: {', '.join(available_bug_classes())}"
        ) from None


def find_bug_class(name: str) -> Optional[BugClassPlugin]:
    return _bug_classes.get(name)


def available_bug_classes() -> tuple[str, ...]:
    return tuple(sorted(_bug_classes))


# -- built-ins ---------------------------------------------------------------


@register_searcher("esd")
def _make_esd(distances, intermediate, final, config) -> Searcher:
    return ProximityGuidedSearcher(
        distances,
        intermediate,
        final,
        seed=config.seed,
        prune_unreachable=config.prune_unreachable,
        use_schedule_distance=config.use_schedule_distance,
    )


register_searcher("proximity", _make_esd)
register_searcher("dfs", lambda d, i, f, c: DFSSearcher())
register_searcher("bfs", lambda d, i, f, c: BFSSearcher())
register_searcher("random-path", lambda d, i, f, c: RandomPathSearcher(seed=c.seed))


# Memoized per module: whether any instruction creates a thread is a
# module-static property, and the service model calls _build_policy once per
# report -- rescanning every instruction each time would erode the static
# amortization the session API exists for.
_multithreaded_memo: "weakref.WeakKeyDictionary[ir.Module, bool]" = (
    weakref.WeakKeyDictionary()
)


def _multithreaded(module: ir.Module) -> bool:
    cached = _multithreaded_memo.get(module)
    if cached is None:
        cached = _multithreaded_memo[module] = any(
            isinstance(instr, ir.ThreadCreate)
            for func in module.functions.values()
            for _, instr in func.iter_instructions()
        )
    return cached


def _concurrency_policies(
    module: ir.Module, goal, config, *, force_race: bool
) -> list[SchedulerPolicy]:
    """Single-threaded programs need no schedule exploration; multi-threaded
    ones always get the deadlock snapshot policy, plus race preemption when
    the bug class (or config) asks for it.

    With ``use_static_pruning`` on, the lockset analysis narrows both
    policies: unlock preemptions are forked only where some lock is still
    held afterwards (a release outside every nested-lock window cannot help
    form a deadlock), and race preemptions only at statically-flagged
    candidate accesses."""
    if not _multithreaded(module):
        return []
    skip_release: frozenset = frozenset()
    static_racy = None
    if getattr(config, "use_static_pruning", False):
        from ..analysis.locks import analyze_locks

        conc = analyze_locks(module)
        skip_release = frozenset(
            ref for ref, held in conc.held_after_unlock.items() if not held
        )
        if conc.racy_refs:
            static_racy = conc.racy_refs
    policies: list[SchedulerPolicy] = [
        DeadlockSchedulePolicy(
            goal.inner_lock_refs,
            fork_at_unlock=config.fork_at_unlock,
            skip_release_refs=skip_release,
        )
    ]
    if force_race or config.with_race_detection:
        policies.append(
            RaceSchedulePolicy(
                RaceDetector(),
                gate_function=goal.gate_function,
                static_racy_refs=static_racy,
            )
        )
    return policies


register_bug_class(BugClassPlugin(
    "crash",
    lambda m, g, c: _concurrency_policies(m, g, c, force_race=False),
))
register_bug_class(BugClassPlugin(
    "deadlock",
    lambda m, g, c: _concurrency_policies(m, g, c, force_race=False),
))
register_bug_class(BugClassPlugin(
    "race",
    lambda m, g, c: _concurrency_policies(m, g, c, force_race=True),
))
