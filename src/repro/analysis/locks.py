"""Static concurrency analysis: locksets, lock-order graph, deadlock cycles.

The second leg of the static pipeline (the first is
:mod:`repro.analysis.absint`).  One interprocedural fixpoint computes, for
every instruction, the *may*- and *must*-held locksets, and from them:

* the **lock-order graph** -- an edge ``A -> B`` whenever some path acquires
  ``B`` while possibly holding ``A``.  A cycle among distinct locks is the
  static signature of an ABBA deadlock (HawkNL's ``nl_close`` vs
  ``nl_shutdown``, SQLite's recursive-lock bug, the paper's Listing 1);
* **per-unlock residual locksets** -- which locks may still be held after
  each ``unlock``.  ``DeadlockSchedulePolicy`` uses this to fork preemptions
  only inside nested-lock windows instead of at every release;
* **Eraser-style race candidates** -- globals reached from more than one
  thread root whose accesses share no common lock;
* lint findings: ``double-acquire`` (acquiring a mutex the path definitely
  already holds) and ``lock-not-released-on-path`` (a mutex this function
  both acquires and releases, yet some exit leaks it).

Branch conditions folded to constants (e.g. by a validated ``branch-flip``
repair) kill the guarded region here exactly as they do in the abstract
interpreter, so a patched module's deadlock cycle disappears statically.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from .. import ir
from .absint import Finding
from .cfg import CFG, CallGraph, build_call_graph
from .dataflow import DataflowProblem, Solution, solve

MAX_ROUNDS = 16

_EXIT_INTRINSICS = ("abort", "exit")


def _lock_name(value: ir.Value) -> str:
    if isinstance(value, ir.GlobalRef):
        return value.name
    return "<dynamic>"


@dataclass(frozen=True, slots=True)
class LockFact:
    """May/must-held locksets at one program point.

    ``rel_may`` / ``rel_must`` track locks this *function* has released
    since entry (on some path / on every path) and not re-acquired: they
    make call effects relative, so a helper shared by callers with
    different locksets does not leak one caller's locks into another.
    """

    may: FrozenSet[str] = frozenset()
    must: FrozenSet[str] = frozenset()
    rel_may: FrozenSet[str] = frozenset()
    rel_must: FrozenSet[str] = frozenset()
    reachable: bool = True

    @staticmethod
    def bottom() -> "LockFact":
        return LockFact(reachable=False)


def join_lock_facts(facts: Sequence[LockFact]) -> LockFact:
    live = [f for f in facts if f.reachable]
    if not live:
        return LockFact.bottom()
    may: FrozenSet[str] = frozenset()
    rel_may: FrozenSet[str] = frozenset()
    must = live[0].must
    rel_must = live[0].rel_must
    for f in live:
        may |= f.may
        rel_may |= f.rel_may
        must &= f.must
        rel_must &= f.rel_must
    return LockFact(may=may, must=must, rel_may=rel_may, rel_must=rel_must)


@dataclass(frozen=True, slots=True)
class LockOrderEdge:
    """``acquired`` was taken while ``held`` may already be held."""

    held: str
    acquired: str
    function: str
    line: int
    ref: ir.InstrRef


@dataclass(slots=True)
class ConcurrencyFacts:
    """Everything the executor, scheduler policy, and lint consume."""

    module_name: str
    multithreaded: bool
    thread_roots: Tuple[str, ...]
    order_edges: List[LockOrderEdge] = field(default_factory=list)
    cycles: List[Tuple[str, ...]] = field(default_factory=list)
    deadlock_sites: FrozenSet[ir.InstrRef] = frozenset()
    held_after_unlock: Dict[ir.InstrRef, FrozenSet[str]] = field(
        default_factory=dict)
    nested_acquires: FrozenSet[ir.InstrRef] = frozenset()
    racy_globals: FrozenSet[str] = frozenset()
    racy_refs: FrozenSet[ir.InstrRef] = frozenset()
    findings: List[Finding] = field(default_factory=list)
    entry_locksets: Dict[str, Tuple[FrozenSet[str], FrozenSet[str]]] = field(
        default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "module": self.module_name,
            "multithreaded": self.multithreaded,
            "thread_roots": list(self.thread_roots),
            "order_edges": [
                {
                    "held": e.held,
                    "acquired": e.acquired,
                    "function": e.function,
                    "line": e.line,
                    "ref": repr(e.ref),
                }
                for e in self.order_edges
            ],
            "cycles": [list(c) for c in self.cycles],
            "deadlock_sites": sorted(repr(r) for r in self.deadlock_sites),
            "held_after_unlock": {
                repr(ref): sorted(held)
                for ref, held in sorted(
                    self.held_after_unlock.items(), key=lambda kv: kv[0])
            },
            "nested_acquires": sorted(repr(r) for r in self.nested_acquires),
            "racy_globals": sorted(self.racy_globals),
            "racy_refs": sorted(repr(r) for r in self.racy_refs),
            "findings": [f.to_dict() for f in self.findings],
        }


class _Recorder:
    def __init__(self) -> None:
        self.edges: Dict[Tuple[str, str, ir.InstrRef], LockOrderEdge] = {}
        self.held_after_unlock: Dict[ir.InstrRef, FrozenSet[str]] = {}
        self.nested: Set[ir.InstrRef] = set()
        self.access_locks: Dict[str, FrozenSet[str]] = {}
        self.access_refs: Dict[str, Set[ir.InstrRef]] = {}
        self.global_writers: Set[str] = set()
        self.findings: List[Finding] = []
        self._seen: Set[Tuple[str, str, int]] = set()

    def finding(self, rule: str, func: str, ref: ir.InstrRef,
                line: int, message: str) -> None:
        key = (rule, func, line)
        if key in self._seen:
            return
        self._seen.add(key)
        self.findings.append(Finding(rule, func, line, ref, message))


class _LockProblem(DataflowProblem[LockFact]):
    """Forward may/must lockset propagation over one function."""

    direction = "forward"
    narrow_passes = 0

    def __init__(self, analyzer: "_LockAnalyzer", func: ir.Function) -> None:
        self.analyzer = analyzer
        self.func = func

    def bottom(self) -> LockFact:
        return LockFact.bottom()

    def boundary(self) -> LockFact:
        may, must = self.analyzer.entry_contexts.get(
            self.func.name, (frozenset(), frozenset()))
        return LockFact(may=may, must=must)

    def join(self, facts: Sequence[LockFact]) -> LockFact:
        return join_lock_facts(facts)

    def transfer(self, label: str, fact: LockFact) -> LockFact:
        return self.analyzer.exec_block(self.func, label, fact, record=None)

    def edge_fact(self, src: str, dst: str, fact: LockFact
                  ) -> Optional[LockFact]:
        term = self.func.blocks[src].terminator
        if isinstance(term, ir.CondBr) and isinstance(term.cond, ir.Const):
            taken = (term.then_target if term.cond.value != 0
                     else term.else_target)
            if dst != taken and term.then_target != term.else_target:
                return None
        if not fact.reachable:
            return None
        return fact


class _LockAnalyzer:
    def __init__(self, module: ir.Module) -> None:
        self.module = module
        self.callgraph: CallGraph = build_call_graph(module)
        self.thread_roots = self._thread_roots()
        self.entry_contexts: Dict[
            str, Tuple[FrozenSet[str], FrozenSet[str]]] = {}
        self.exit_facts: Dict[str, LockFact] = {}
        self.solutions: Dict[str, Solution[LockFact]] = {}
        self.cfgs = {
            name: CFG(func) for name, func in module.functions.items()
        }
        self._changed = False

    # -- thread structure ---------------------------------------------------

    def _thread_roots(self) -> Tuple[str, ...]:
        roots = ["main"] if "main" in self.module.functions else []
        for func in self.module.functions.values():
            for _, instr in func.iter_instructions():
                if isinstance(instr, ir.ThreadCreate) and isinstance(
                        instr.func, ir.FuncRef):
                    if instr.func.name not in roots:
                        roots.append(instr.func.name)
        return tuple(roots)

    def _reachable_from(self, root: str) -> Set[str]:
        seen: Set[str] = set()
        stack = [root]
        while stack:
            name = stack.pop()
            if name in seen or name not in self.module.functions:
                continue
            seen.add(name)
            stack.extend(self.callgraph.callees.get(name, ()))
        return seen

    # -- transfer -----------------------------------------------------------

    def _call_targets(self, instr: ir.Call) -> Tuple[str, ...]:
        if isinstance(instr.callee, ir.FuncRef):
            return (instr.callee.name,)
        return self.callgraph.address_taken.get(len(instr.args), ())

    def _contribute_entry(self, callee: str, fact: LockFact) -> None:
        prev = self.entry_contexts.get(callee)
        if prev is None:
            new = (fact.may, fact.must)
        else:
            new = (prev[0] | fact.may, prev[1] & fact.must)
        if prev != new:
            self.entry_contexts[callee] = new
            self._changed = True

    def exec_block(
        self,
        func: ir.Function,
        label: str,
        fact: LockFact,
        record: Optional[_Recorder],
    ) -> LockFact:
        block = func.blocks[label]
        may, must = fact.may, fact.must
        rel_may, rel_must = fact.rel_may, fact.rel_must
        reachable = fact.reachable
        # Per-block reg -> global-name map for access classification.
        regs_to_global: Dict[str, str] = {}
        for index, instr in enumerate(block.instrs):
            ref = ir.InstrRef(func.name, label, index)
            if isinstance(instr, ir.MutexLock):
                name = _lock_name(instr.mutex)
                if record is not None and reachable:
                    for held in sorted(may - {name}):
                        key = (held, name, ref)
                        record.edges.setdefault(key, LockOrderEdge(
                            held, name, func.name, instr.line, ref))
                    if may:
                        record.nested.add(ref)
                    if name in must:
                        record.finding(
                            "double-acquire", func.name, ref, instr.line,
                            f"mutex {name} is acquired while already held",
                        )
                may = may | {name}
                must = must | {name}
                rel_may = rel_may - {name}
                rel_must = rel_must - {name}
            elif isinstance(instr, ir.MutexUnlock):
                name = _lock_name(instr.mutex)
                may = may - {name}
                must = must - {name}
                rel_may = rel_may | {name}
                rel_must = rel_must | {name}
                if record is not None and reachable:
                    record.held_after_unlock[ref] = may
            elif isinstance(instr, ir.CondWait):
                # wait() releases and re-acquires the mutex; locks still
                # held across the wait form a nested window.
                name = _lock_name(instr.mutex)
                if record is not None and reachable:
                    record.held_after_unlock[ref] = may - {name}
            elif isinstance(instr, ir.Call):
                targets = self._call_targets(instr)
                known = [t for t in targets if t in self.module.functions]
                if known:
                    for callee in known:
                        self._contribute_entry(
                            callee, LockFact(may=may, must=must,
                                             reachable=reachable))
                    after = join_lock_facts([
                        self.exit_facts.get(t, LockFact.bottom())
                        for t in known
                    ])
                    # Relative call effect: what the callee *itself* left
                    # held is its exit-may minus its (all-callers) entry
                    # context; what it definitely released is subtracted
                    # from this caller's lockset.
                    entry_may: FrozenSet[str] = frozenset()
                    for t in known:
                        entry_may |= self.entry_contexts.get(
                            t, (frozenset(), frozenset()))[0]
                    gen_may = after.may - entry_may
                    gen_must = after.must - entry_may
                    may = (may - after.rel_must) | gen_may
                    must = (must - after.rel_may) | gen_must
                    rel_may = (rel_may | after.rel_may) - gen_must
                    rel_must = (rel_must | after.rel_must) - gen_may
                    reachable = reachable and after.reachable
            elif isinstance(instr, ir.Intrinsic):
                if instr.name in _EXIT_INTRINSICS:
                    reachable = False
            elif isinstance(instr, ir.ThreadCreate):
                pass  # the child starts with an empty lockset (a root)
            if record is not None and reachable:
                self._note_access(ref, instr, may, regs_to_global, record)
        return LockFact(may=may, must=must, rel_may=rel_may,
                        rel_must=rel_must, reachable=reachable)

    def _note_access(
        self,
        ref: ir.InstrRef,
        instr: ir.Instr,
        may: FrozenSet[str],
        regs_to_global: Dict[str, str],
        record: _Recorder,
    ) -> None:
        if isinstance(instr, (ir.Assign, ir.Gep)):
            base = instr.src if isinstance(instr, ir.Assign) else instr.base
            if isinstance(base, ir.GlobalRef) and isinstance(
                    instr.dst, ir.Reg):
                gvar = self.module.globals.get(base.name)
                if gvar is not None and not gvar.is_mutex and not gvar.is_cond:
                    regs_to_global[instr.dst.name] = base.name
            return
        addr = None
        is_write = False
        if isinstance(instr, ir.Load):
            addr = instr.addr
        elif isinstance(instr, ir.Store):
            addr = instr.addr
            is_write = True
        if addr is None:
            return
        name: Optional[str] = None
        if isinstance(addr, ir.GlobalRef):
            gvar = self.module.globals.get(addr.name)
            if gvar is not None and not gvar.is_mutex and not gvar.is_cond:
                name = addr.name
        elif isinstance(addr, ir.Reg):
            name = regs_to_global.get(addr.name)
        if name is None:
            return
        prev = record.access_locks.get(name)
        record.access_locks[name] = may if prev is None else (prev & may)
        record.access_refs.setdefault(name, set()).add(ref)
        if is_write:
            record.global_writers.add(name)

    # -- driver -------------------------------------------------------------

    def run(self) -> ConcurrencyFacts:
        module = self.module
        multithreaded = len(self.thread_roots) > 1
        for root in self.thread_roots:
            self.entry_contexts.setdefault(root, (frozenset(), frozenset()))

        order = [
            name for name in module.functions
            if any(name in self._reachable_from(r) for r in self.thread_roots)
        ] or list(module.functions)
        for _ in range(MAX_ROUNDS):
            self._changed = False
            for name in order:
                if name not in self.entry_contexts:
                    continue  # not reached from any thread root yet
                func = module.functions[name]
                solution = solve(self.cfgs[name], _LockProblem(self, func))
                self.solutions[name] = solution
                exit_fact = self._exit_fact(func, solution)
                if self.exit_facts.get(name) != exit_fact:
                    self.exit_facts[name] = exit_fact
                    self._changed = True
            if not self._changed:
                break

        record = _Recorder()
        for name, solution in self.solutions.items():
            func = module.functions[name]
            for label in func.blocks:
                if label in solution.unreached:
                    continue
                in_fact = solution.in_fact(label)
                if in_fact is None or not in_fact.reachable:
                    continue
                self.exec_block(func, label, in_fact, record=record)
            self._leak_findings(func, solution, record)

        edges = sorted(
            record.edges.values(),
            key=lambda e: (e.held, e.acquired, e.ref),
        )
        cycles, deadlock_sites = self._cycles(edges)
        for cycle in cycles:
            loop = " -> ".join(cycle + (cycle[0],))
            for edge in edges:
                if edge.ref in deadlock_sites and edge.acquired in cycle \
                        and edge.held in cycle:
                    record.finding(
                        "lock-order-inversion", edge.function, edge.ref,
                        edge.line,
                        f"acquiring {edge.acquired} while holding "
                        f"{edge.held} closes the cycle {loop}",
                    )

        racy: Set[str] = set()
        racy_refs: Set[ir.InstrRef] = set()
        if multithreaded:
            shared = self._shared_globals()
            for name, candidate in record.access_locks.items():
                if name not in shared or name not in record.global_writers:
                    continue
                if not candidate:
                    racy.add(name)
                    racy_refs |= record.access_refs.get(name, set())

        return ConcurrencyFacts(
            module_name=module.name,
            multithreaded=multithreaded,
            thread_roots=self.thread_roots,
            order_edges=edges,
            cycles=cycles,
            deadlock_sites=frozenset(deadlock_sites),
            held_after_unlock=dict(record.held_after_unlock),
            nested_acquires=frozenset(record.nested),
            racy_globals=frozenset(racy),
            racy_refs=frozenset(racy_refs),
            findings=sorted(
                record.findings,
                key=lambda f: (f.function, f.line, f.rule),
            ),
            entry_locksets=dict(self.entry_contexts),
        )

    def _exit_fact(self, func: ir.Function,
                   solution: Solution[LockFact]) -> LockFact:
        exits = []
        for label, block in func.blocks.items():
            if label in solution.unreached:
                continue
            if isinstance(block.terminator, ir.Ret):
                out = solution.out_fact(label)
                if out is not None:
                    exits.append(out)
        return join_lock_facts(exits) if exits else LockFact.bottom()

    def _leak_findings(self, func: ir.Function,
                       solution: Solution[LockFact],
                       record: _Recorder) -> None:
        """A mutex this function both acquires and releases, leaked on some
        exit path.  Locks deliberately passed out held (a lock primitive
        like ``rl_enter``) have no in-function release and stay exempt."""
        acquired: Dict[str, int] = {}
        released: Set[str] = set()
        for _, instr in func.iter_instructions():
            if isinstance(instr, ir.MutexLock):
                acquired.setdefault(_lock_name(instr.mutex), instr.line)
            elif isinstance(instr, ir.MutexUnlock):
                released.add(_lock_name(instr.mutex))
        if not acquired:
            return
        entry_may = self.entry_contexts.get(
            func.name, (frozenset(), frozenset()))[0]
        exit_fact = self._exit_fact(func, solution)
        if not exit_fact.reachable:
            return
        for name, line in sorted(acquired.items()):
            if name not in released or name in entry_may:
                continue
            if name in exit_fact.may and name not in exit_fact.must:
                ref = self._lock_ref(func, name)
                record.finding(
                    "lock-not-released-on-path", func.name, ref, line,
                    f"mutex {name} is released on some paths but may still "
                    f"be held when {func.name} returns",
                )

    def _lock_ref(self, func: ir.Function, name: str) -> ir.InstrRef:
        for ref, instr in func.iter_instructions():
            if isinstance(instr, ir.MutexLock) and \
                    _lock_name(instr.mutex) == name:
                return ref
        return ir.InstrRef(func.name, func.entry, 0)

    def _shared_globals(self) -> Set[str]:
        """Globals touched by functions reachable from two or more roots."""
        reach = {root: self._reachable_from(root) for root in self.thread_roots}
        owners: Dict[str, Set[str]] = {}
        for root, funcs in reach.items():
            for name in funcs:
                func = self.module.functions[name]
                for _, instr in func.iter_instructions():
                    for value in instr.operands():
                        if isinstance(value, ir.GlobalRef):
                            owners.setdefault(value.name, set()).add(root)
        return {name for name, roots in owners.items() if len(roots) >= 2}

    def _cycles(self, edges: List[LockOrderEdge]
                ) -> Tuple[List[Tuple[str, ...]], Set[ir.InstrRef]]:
        graph: Dict[str, Set[str]] = {}
        for edge in edges:
            if edge.held != edge.acquired:
                graph.setdefault(edge.held, set()).add(edge.acquired)
                graph.setdefault(edge.acquired, set())
        sccs = _tarjan(graph)
        cycles = [tuple(sorted(scc)) for scc in sccs if len(scc) >= 2]
        cycles.sort()
        cyclic = {name for cycle in cycles for name in cycle}
        sites = {
            edge.ref for edge in edges
            if edge.held in cyclic and edge.acquired in cyclic
            and edge.held != edge.acquired
            and any(edge.held in c and edge.acquired in c for c in cycles)
        }
        return cycles, sites


def _tarjan(graph: Dict[str, Set[str]]) -> List[Set[str]]:
    """Strongly connected components, iterative to spare the stack."""
    index: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[Set[str]] = []
    counter = 0
    for start in graph:
        if start in index:
            continue
        work: List[Tuple[str, int]] = [(start, 0)]
        while work:
            node, child_i = work[-1]
            if child_i == 0:
                index[node] = low[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            succs = sorted(graph.get(node, ()))
            for i in range(child_i, len(succs)):
                succ = succs[i]
                if succ not in index:
                    work[-1] = (node, i + 1)
                    work.append((succ, 0))
                    advanced = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                scc: Set[str] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.add(member)
                    if member == node:
                        break
                sccs.append(scc)
    return sccs


_MEMO: "weakref.WeakKeyDictionary[ir.Module, ConcurrencyFacts]" = (
    weakref.WeakKeyDictionary()
)


def analyze_locks(module: ir.Module, *, cache: bool = True
                  ) -> ConcurrencyFacts:
    """Whole-module concurrency facts, memoized per module object."""
    if cache:
        hit = _MEMO.get(module)
        if hit is not None:
            return hit
    facts = _LockAnalyzer(module).run()
    if cache:
        _MEMO[module] = facts
    return facts
