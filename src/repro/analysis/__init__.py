"""Static analyses: CFG, call graph, reaching definitions, critical edges,
intermediate goals, and the Algorithm-1 proximity heuristic."""

from .cfg import (
    CFG,
    CallGraph,
    CallSite,
    address_taken_functions,
    build_call_graph,
    reachable_functions,
)
from .critical import (
    CriticalEdge,
    IntermediateGoal,
    find_critical_edges,
    find_intermediate_goals,
)
from .distance import INF, RECURSION_COST, DistanceCalculator
from .reachdefs import (
    Definition,
    ReachingDefs,
    collect_global_definitions,
    local_address_regs,
    store_target,
)
from .reconstruct import ReconstructedCondition, reconstruct_condition

__all__ = [
    "CFG",
    "CallGraph",
    "CallSite",
    "CriticalEdge",
    "Definition",
    "DistanceCalculator",
    "INF",
    "IntermediateGoal",
    "ReachingDefs",
    "ReconstructedCondition",
    "RECURSION_COST",
    "address_taken_functions",
    "build_call_graph",
    "collect_global_definitions",
    "find_critical_edges",
    "find_intermediate_goals",
    "local_address_regs",
    "reachable_functions",
    "reconstruct_condition",
    "store_target",
]
