"""Static analyses: CFG, call graph, reaching definitions, critical edges,
intermediate goals, the Algorithm-1 proximity heuristic, the abstract
interpreter, the concurrency (lockset/lock-order) analysis, crash-site
backward slicing, and the IR lint pass."""

from .absint import Finding, ModuleFacts, analyze_module
from .cfg import (
    CFG,
    CallGraph,
    CallSite,
    address_taken_functions,
    build_call_graph,
    reachable_functions,
)
from .critical import (
    CriticalEdge,
    IntermediateGoal,
    find_critical_edges,
    find_intermediate_goals,
)
from .dataflow import DataflowProblem, Solution, solve
from .distance import INF, RECURSION_COST, DistanceCalculator
from .lint import LINT_FORMAT, LINT_SCHEMA_VERSION, LintReport, lint_module
from .locks import ConcurrencyFacts, LockOrderEdge, analyze_locks
from .reachdefs import (
    Definition,
    ReachingDefs,
    collect_global_definitions,
    local_address_regs,
    store_target,
)
from .reconstruct import ReconstructedCondition, reconstruct_condition
from .slice import ProgramSlice, slice_for_report, slice_from
from .summary import (
    ANALYSIS_FORMAT,
    ANALYSIS_SCHEMA_VERSION,
    analysis_document,
    check_analysis_document,
)

__all__ = [
    "ANALYSIS_FORMAT",
    "ANALYSIS_SCHEMA_VERSION",
    "CFG",
    "CallGraph",
    "CallSite",
    "ConcurrencyFacts",
    "CriticalEdge",
    "DataflowProblem",
    "Definition",
    "DistanceCalculator",
    "Finding",
    "INF",
    "IntermediateGoal",
    "LINT_FORMAT",
    "LINT_SCHEMA_VERSION",
    "LintReport",
    "LockOrderEdge",
    "ModuleFacts",
    "ProgramSlice",
    "ReachingDefs",
    "ReconstructedCondition",
    "RECURSION_COST",
    "Solution",
    "address_taken_functions",
    "analysis_document",
    "analyze_locks",
    "analyze_module",
    "build_call_graph",
    "check_analysis_document",
    "collect_global_definitions",
    "find_critical_edges",
    "find_intermediate_goals",
    "lint_module",
    "local_address_regs",
    "reachable_functions",
    "reconstruct_condition",
    "slice_for_report",
    "slice_from",
    "solve",
    "store_target",
]
