"""Static analyses: CFG, call graph, reaching definitions, critical edges,
intermediate goals, the Algorithm-1 proximity heuristic, the abstract
interpreter, the concurrency (lockset/lock-order) analysis, crash-site
backward slicing, compositional function summaries, goal-directed
reachability with necessary-precondition inference, and the IR lint pass."""

from .absint import Finding, ModuleFacts, analyze_module
from .cfg import (
    CFG,
    CallGraph,
    CallSite,
    address_taken_functions,
    build_call_graph,
    reachable_functions,
)
from .critical import (
    CriticalEdge,
    IntermediateGoal,
    find_critical_edges,
    find_intermediate_goals,
)
from .dataflow import DataflowProblem, Solution, solve
from .distance import (
    INF,
    RECURSION_COST,
    DistanceCalculator,
    DistanceSource,
    GoalGatedDistances,
)
from .lint import LINT_FORMAT, LINT_SCHEMA_VERSION, LintReport, lint_module
from .locks import ConcurrencyFacts, LockOrderEdge, analyze_locks
from .reachdefs import (
    Definition,
    ReachingDefs,
    collect_global_definitions,
    local_address_regs,
    store_target,
)
from .reach import GoalReach, compute_reach
from .reconstruct import ReconstructedCondition, reconstruct_condition
from .slice import ProgramSlice, slice_for_report, slice_from
from .summaries import FunctionSummary, ModuleSummaries, summarize_module
from .summary import (
    ANALYSIS_FORMAT,
    ANALYSIS_SCHEMA_VERSION,
    analysis_document,
    check_analysis_document,
)
from .wp import (
    FALSE,
    NecessaryConditions,
    StaticPruneStats,
    compute_necessary_conditions,
)

__all__ = [
    "ANALYSIS_FORMAT",
    "ANALYSIS_SCHEMA_VERSION",
    "CFG",
    "CallGraph",
    "CallSite",
    "ConcurrencyFacts",
    "CriticalEdge",
    "DataflowProblem",
    "Definition",
    "DistanceCalculator",
    "DistanceSource",
    "FALSE",
    "Finding",
    "FunctionSummary",
    "GoalGatedDistances",
    "GoalReach",
    "INF",
    "IntermediateGoal",
    "LINT_FORMAT",
    "LINT_SCHEMA_VERSION",
    "LintReport",
    "LockOrderEdge",
    "ModuleFacts",
    "ModuleSummaries",
    "NecessaryConditions",
    "ProgramSlice",
    "ReachingDefs",
    "ReconstructedCondition",
    "RECURSION_COST",
    "Solution",
    "StaticPruneStats",
    "address_taken_functions",
    "analysis_document",
    "analyze_locks",
    "analyze_module",
    "build_call_graph",
    "check_analysis_document",
    "collect_global_definitions",
    "compute_necessary_conditions",
    "compute_reach",
    "find_critical_edges",
    "find_intermediate_goals",
    "lint_module",
    "local_address_regs",
    "reachable_functions",
    "reconstruct_condition",
    "slice_for_report",
    "slice_from",
    "solve",
    "store_target",
    "summarize_module",
]
