"""Proximity heuristic: estimated instructions to reach a goal (Algorithm 1).

``distance(I, G)`` estimates the fewest instructions from instruction ``I``
to goal ``G``: shortest acyclic path within the procedure, where each call
along the path costs the callee's shortest entry-to-return path (function
``dist2ret``), recursion costs a fixed ``RECURSION_COST`` (the paper uses
1000), and unresolved indirect calls cost the average over possible targets.
When the goal is not in the current procedure, the estimate walks the call
stack: return from the current frame (``dist2ret``), resume in the caller,
and so on (Algorithm 1 lines 3-6).

The paper's listing is "(Simplified)"; one thing it leaves implicit is that
the goal may live in a *callee* of the current procedure.  We compute block
tables with call-descent edges (entering a call costs 1 plus the callee's
entry-to-goal distance), which generalizes the listing and is required for
any program whose failure point is below ``main``.

Everything is cached: per-function suffix cost arrays, entry-to-return
costs, and per-goal block tables ("we speed up the computation of the
distance to the goal during synthesis by caching computed distances",
section 6.2).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import FrozenSet, Protocol

from .. import ir
from ..ir import InstrRef
from .cfg import CFG, CallGraph, build_call_graph

INF = float("inf")
RECURSION_COST = 1000
SYSCALL_COST = 1  # intrinsics model environment calls

# The per-call-stack memo in state_distance is keyed by every distinct call
# stack a search explores; a calculator that lives for a whole ReproSession
# (thousands of reports) would otherwise grow it without bound.  When full
# it is simply dropped -- entries are cheap to recompute from the persistent
# goal tables.
STATE_CACHE_LIMIT = 200_000


class DistanceSource(Protocol):
    """What a searcher needs from a distance provider -- satisfied both by
    :class:`DistanceCalculator` and by goal-gated wrappers around it."""

    def instruction_distance(self, ref: InstrRef, goal: InstrRef) -> float:
        ...

    def state_distance(self, frames: list[InstrRef], goal: InstrRef) -> float:
        ...


@dataclass(slots=True)
class _BlockInfo:
    # suffix[i] = cost of executing instructions [i, end] of the block,
    # counting each call as 1 + its callee cost.
    suffix: list[int]
    # (index, cost-contribution-of-this-call, possible callees)
    calls: list[tuple[int, int, tuple[str, ...]]]


class DistanceCalculator:
    """All distance queries for one module."""

    def __init__(self, module: ir.Module) -> None:
        self.module = module
        self.callgraph: CallGraph = build_call_graph(module)
        self.cfgs: dict[str, CFG] = {
            name: CFG(func) for name, func in module.functions.items()
        }
        self._func_cost: dict[str, float] = {}
        self._block_info: dict[tuple[str, str], _BlockInfo] = {}
        self._ret_tables: dict[str, dict[str, float]] = {}
        self._goal_tables: dict[InstrRef, "_GoalTable"] = {}
        self._state_cache: dict[tuple, float] = {}

    # ------------------------------------------------------------------
    # Per-instruction call costs
    # ------------------------------------------------------------------

    def call_cost(self, name: str) -> float:
        """Shortest entry-to-return instruction count of a function, with
        recursive call edges weighted RECURSION_COST (paper section 3.4)."""
        cached = self._func_cost.get(name)
        if cached is not None:
            return cached
        self._compute_func_costs(name, in_progress=set())
        return self._func_cost[name]

    def _compute_func_costs(self, name: str, in_progress: set[str]) -> float:
        cached = self._func_cost.get(name)
        if cached is not None:
            return cached
        if name in in_progress:
            return RECURSION_COST
        if name not in self.module.functions:
            return SYSCALL_COST
        in_progress.add(name)
        func = self.module.functions[name]
        # Dijkstra over blocks toward any Ret, with call costs resolved
        # recursively (cycles in the call graph cost RECURSION_COST).
        block_cost: dict[str, float] = {}
        ret_blocks: list[str] = []
        for label, block in func.blocks.items():
            cost = 0.0
            for instr in list(block.instrs) + [block.terminator]:
                cost += self._instr_cost(instr, in_progress)
            block_cost[label] = cost
            if isinstance(block.terminator, ir.Ret):
                ret_blocks.append(label)
        dist = _dijkstra_to_targets(self.cfgs[name], block_cost, ret_blocks)
        entry_cost = dist.get(func.entry, INF)
        in_progress.discard(name)
        self._func_cost[name] = entry_cost
        return entry_cost

    def _instr_cost(self, instr: ir.Instr, in_progress: set[str]) -> float:
        if isinstance(instr, ir.Call):
            if isinstance(instr.callee, ir.FuncRef):
                return 1 + self._compute_func_costs(instr.callee.name, in_progress)
            targets = self.callgraph.address_taken.get(len(instr.args), ())
            if not targets:
                return 1 + SYSCALL_COST
            costs = [self._compute_func_costs(t, in_progress) for t in targets]
            finite = [c for c in costs if c != INF]
            return 1 + (sum(finite) / len(finite) if finite else RECURSION_COST)
        return 1

    # ------------------------------------------------------------------
    # Block info (suffix costs, call sites)
    # ------------------------------------------------------------------

    def _info(self, func: str, label: str) -> _BlockInfo:
        key = (func, label)
        cached = self._block_info.get(key)
        if cached is not None:
            return cached
        block = self.module.functions[func].blocks[label]
        instrs = list(block.instrs) + [block.terminator]
        suffix = [0] * (len(instrs) + 1)
        calls: list[tuple[int, int, tuple[str, ...]]] = []
        for i in range(len(instrs) - 1, -1, -1):
            instr = instrs[i]
            cost = self._instr_cost(instr, set())
            if isinstance(instr, ir.Call):
                if isinstance(instr.callee, ir.FuncRef):
                    targets: tuple[str, ...] = (instr.callee.name,)
                else:
                    targets = self.callgraph.address_taken.get(len(instr.args), ())
                calls.append((i, int(cost), targets))
            elif isinstance(instr, ir.ThreadCreate):
                # Spawning a thread is a descent point: the new thread starts
                # at the routine's entry (the spawn itself costs 1).
                if isinstance(instr.func, ir.FuncRef):
                    targets = (instr.func.name,)
                else:
                    targets = self.callgraph.address_taken.get(1, ())
                calls.append((i, int(cost), targets))
            suffix[i] = suffix[i + 1] + int(cost)
        calls.reverse()
        info = _BlockInfo(suffix, calls)
        self._block_info[key] = info
        return info

    def _cost_between(self, func: str, label: str, start: int, end: int) -> int:
        """Cost of executing instruction range [start, end) of a block."""
        suffix = self._info(func, label).suffix
        return suffix[start] - suffix[end]

    # ------------------------------------------------------------------
    # dist2ret
    # ------------------------------------------------------------------

    def _ret_table(self, func: str) -> dict[str, float]:
        cached = self._ret_tables.get(func)
        if cached is not None:
            return cached
        function = self.module.functions[func]
        block_cost: dict[str, float] = {}
        ret_blocks: list[str] = []
        for label, block in function.blocks.items():
            block_cost[label] = float(self._info(func, label).suffix[0])
            if isinstance(block.terminator, ir.Ret):
                ret_blocks.append(label)
        table = _dijkstra_to_targets(self.cfgs[func], block_cost, ret_blocks)
        self._ret_tables[func] = table
        return table

    def dist2ret(self, ref: InstrRef) -> float:
        """Fewest instructions from ``ref`` to returning from its function."""
        info = self._info(ref.function, ref.block)
        block = self.module.functions[ref.function].blocks[ref.block]
        own = float(info.suffix[ref.index])
        if isinstance(block.terminator, ir.Ret):
            return own
        table = self._ret_table(ref.function)
        best = INF
        for succ in block.terminator.successors():
            best = min(best, table.get(succ, INF))
        return own + best if best != INF else INF

    # ------------------------------------------------------------------
    # distance to a goal
    # ------------------------------------------------------------------

    def _goal_table(self, goal: InstrRef) -> "_GoalTable":
        cached = self._goal_tables.get(goal)
        if cached is not None:
            return cached
        table = _GoalTable(self, goal)
        self._goal_tables[goal] = table
        return table

    def instruction_distance(self, ref: InstrRef, goal: InstrRef) -> float:
        """Distance from executing at ``ref`` to reaching ``goal``, allowing
        descent into callees but not returns (Algorithm 1's ``distance``)."""
        return self._goal_table(goal).from_position(ref)

    def state_distance(self, frames: list[InstrRef], goal: InstrRef) -> float:
        """Algorithm 1: distance for a call stack (innermost ref first)."""
        if not frames:
            return INF
        key = (tuple(frames), goal)
        cached = self._state_cache.get(key)
        if cached is not None:
            return cached
        best = self.instruction_distance(frames[0], goal)
        acc = self.dist2ret(frames[0]) + 1
        for resume in frames[1:]:
            if acc == INF:
                break
            best = min(best, acc + self.instruction_distance(resume, goal))
            acc += self.dist2ret(resume) + 1
        if len(self._state_cache) >= STATE_CACHE_LIMIT:
            self._state_cache.clear()
        self._state_cache[key] = best
        return best


class _GoalTable:
    """Per-goal distances with call-descent, computed by a global Dijkstra
    running backward from the goal over (function, block) nodes."""

    def __init__(self, calc: DistanceCalculator, goal: InstrRef) -> None:
        self.calc = calc
        self.goal = goal
        # block_dist[(func, label)] = min cost from the *start* of the block
        # to the goal.
        self.block_dist: dict[tuple[str, str], float] = {}
        self._compute()

    def _compute(self) -> None:
        calc = self.calc
        module = calc.module
        dist = self.block_dist
        goal = self.goal
        # Worklist Bellman-Ford: all edge weights are positive, the graph is
        # small, and cross-function descent edges make Dijkstra's one-pass
        # property awkward, so iterate to fixpoint.
        seed_key = (goal.function, goal.block)
        seed_cost = float(calc._cost_between(goal.function, goal.block, 0, goal.index))
        dist[seed_key] = seed_cost
        worklist = [seed_key]
        entry_of = {
            name: (name, func.entry) for name, func in module.functions.items()
        }

        # Precompute reverse edges once: which (func,label) nodes can relax
        # when a node's distance improves.  Intra edges: predecessors.
        # Descent edges: callers' blocks containing calls to this function
        # relax when the function's entry distance improves.
        while worklist:
            key = worklist.pop()
            func, label = key
            base = dist.get(key, INF)
            if base == INF:
                continue
            cfg = calc.cfgs[func]
            # Intra-procedural relaxation of predecessors.
            for pred in cfg.preds.get(label, ()):  # pred -> label edge
                cost = float(calc._info(func, pred).suffix[0]) + base
                pkey = (func, pred)
                if cost < dist.get(pkey, INF):
                    dist[pkey] = cost
                    worklist.append(pkey)
            # Descent relaxation: if this is a function entry, every caller
            # block containing a call site gets a shortcut.
            if entry_of.get(func) == key:
                for caller in calc.callgraph.callers.get(func, ()):
                    for (cfunc, clabel), sites in calc.callgraph.sites_by_block.items():
                        if cfunc != caller:
                            continue
                        for site in sites:
                            if func not in site.targets:
                                continue
                            prefix = float(
                                calc._cost_between(cfunc, clabel, 0, site.ref.index)
                            )
                            cost = prefix + 1 + base
                            ckey = (cfunc, clabel)
                            if cost < dist.get(ckey, INF):
                                dist[ckey] = cost
                                worklist.append(ckey)

    def from_position(self, ref: InstrRef) -> float:
        calc = self.calc
        goal = self.goal
        best = INF
        # Straight to the goal within this block.
        if (ref.function, ref.block) == (goal.function, goal.block) and ref.index <= goal.index:
            best = float(
                calc._cost_between(ref.function, ref.block, ref.index, goal.index)
            )
        info = calc._info(ref.function, ref.block)
        # Descend into a call later in this block.
        for index, _cost, targets in info.calls:
            if index < ref.index:
                continue
            prefix = float(calc._cost_between(ref.function, ref.block, ref.index, index))
            for target in targets:
                entry_dist = self.block_dist.get(
                    (target, calc.module.functions[target].entry)
                    if target in calc.module.functions else ("", ""),
                    INF,
                )
                best = min(best, prefix + 1 + entry_dist)
        # Fall off the end of the block into a successor.
        block = calc.module.functions[ref.function].blocks[ref.block]
        if block.terminator is not None:
            tail = float(info.suffix[ref.index])
            for succ in block.terminator.successors():
                succ_dist = self.block_dist.get((ref.function, succ), INF)
                best = min(best, tail + succ_dist)
        return best


class GoalGatedDistances:
    """A :class:`DistanceSource` that scores provably-dead positions INF.

    Wraps the syntactic :class:`DistanceCalculator` with a goal-directed
    reach set (:class:`repro.analysis.reach.GoalReach`): a frame positioned
    in a ``(function, block)`` node outside the set cannot reach the goal
    without first returning, so its per-frame distance is ``INF``.  The
    Algorithm-1 stack walk is unchanged -- outer frames still contribute
    through their own (gated) positions, and ``dist2ret`` stays ungated
    because returning is exactly the escape the reach set does not cover.

    The searcher then drops states whose *every* frame is outside the set
    (their distance is INF), which is the proximity-heuristic face of the
    same soundness argument the executor's necessary-condition check uses.
    """

    __slots__ = ("base", "reach_blocks", "_state_cache")

    def __init__(
        self,
        base: DistanceCalculator,
        reach_blocks: FrozenSet[tuple[str, str]],
    ) -> None:
        self.base = base
        self.reach_blocks = reach_blocks
        self._state_cache: dict[tuple, float] = {}

    def instruction_distance(self, ref: InstrRef, goal: InstrRef) -> float:
        if (ref.function, ref.block) not in self.reach_blocks:
            return INF
        return self.base.instruction_distance(ref, goal)

    def state_distance(self, frames: list[InstrRef], goal: InstrRef) -> float:
        if not frames:
            return INF
        key = (tuple(frames), goal)
        cached = self._state_cache.get(key)
        if cached is not None:
            return cached
        best = self.instruction_distance(frames[0], goal)
        acc = self.base.dist2ret(frames[0]) + 1
        for resume in frames[1:]:
            if acc == INF:
                break
            best = min(best, acc + self.instruction_distance(resume, goal))
            acc += self.base.dist2ret(resume) + 1
        if len(self._state_cache) >= STATE_CACHE_LIMIT:
            self._state_cache.clear()
        self._state_cache[key] = best
        return best


def _dijkstra_to_targets(
    cfg: CFG, block_cost: dict[str, float], targets: list[str]
) -> dict[str, float]:
    """Min cost from the start of each block to finishing any target block,
    where finishing a block costs ``block_cost`` and edges are CFG successors.
    """
    dist: dict[str, float] = {}
    heap: list[tuple[float, str]] = []
    for label in targets:
        cost = block_cost[label]
        dist[label] = cost
        heapq.heappush(heap, (cost, label))
    while heap:
        cost, label = heapq.heappop(heap)
        if cost > dist.get(label, INF):
            continue
        for pred in cfg.preds.get(label, ()):
            candidate = block_cost[pred] + cost
            if candidate < dist.get(pred, INF):
                dist[pred] = candidate
                heapq.heappush(heap, (candidate, pred))
    return dist
