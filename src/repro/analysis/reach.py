"""Goal-directed may-reach sets over the statically pruned program graph.

For a goal (a set of crash-site instruction refs), :func:`compute_reach`
answers "from the start of which ``(function, block)`` nodes can execution
possibly reach the goal?" -- the backward closure of the goal over
intra-procedural CFG edges plus call-descent edges (a caller block reaches
the goal when it contains a call site into a function whose entry reaches
it).  The graph is pruned first with the abstract interpreter's facts: blocks
it proved semantically dead and conditional-branch edges it proved never
taken do not propagate reachability.

The result over-approximates the syntactic relation the proximity heuristic
(:mod:`.distance`) computes, *minus* the statically dead regions -- so a
block outside the reach set provably cannot reach the goal without first
returning from its function, and the searcher may score it ``INF``
(:class:`repro.analysis.distance.GoalGatedDistances`) or the executor prune
it (:mod:`.wp`), modulo the return-path escape both consumers check.

Only meaningful when the abstract facts are ``pruning_sound``; callers gate
on that (the facts' dead blocks/edges are themselves only sound then).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from .. import ir
from .absint import ModuleFacts, analyze_module
from .cfg import CFG, CallGraph, build_call_graph


@dataclass(frozen=True, slots=True)
class GoalReach:
    """May-reach closure of one goal over the pruned program graph."""

    goal_refs: Tuple[ir.InstrRef, ...]
    # (function, block) nodes from whose *entry* the goal may be reachable
    # without returning out of ``function``.
    blocks: FrozenSet[Tuple[str, str]]
    functions: FrozenSet[str]

    def block_may_reach(self, function: str, label: str) -> bool:
        return (function, label) in self.blocks

    def to_dict(self) -> Dict[str, object]:
        per_function: Dict[str, List[str]] = {}
        for function, label in self.blocks:
            per_function.setdefault(function, []).append(label)
        return {
            "goal": [repr(ref) for ref in self.goal_refs],
            "blocks": {
                function: sorted(labels)
                for function, labels in sorted(per_function.items())
            },
            "functions": sorted(self.functions),
        }


def _dead_edges(
    module: ir.Module, facts: ModuleFacts
) -> Dict[Tuple[str, str], str]:
    """(func, block) -> the one successor a decided CondBr can never take."""
    dead: Dict[Tuple[str, str], str] = {}
    for ref, side in facts.branch_facts.items():
        func = module.functions.get(ref.function)
        if func is None:
            continue
        block = func.blocks.get(ref.block)
        if block is None or not isinstance(block.terminator, ir.CondBr):
            continue
        term = block.terminator
        if term.then_target == term.else_target:
            continue
        dead[(ref.function, ref.block)] = (
            term.else_target if side == "then" else term.then_target
        )
    return dead


def compute_reach(
    module: ir.Module,
    goal_refs: Sequence[ir.InstrRef],
    facts: Optional[ModuleFacts] = None,
    callgraph: Optional[CallGraph] = None,
) -> GoalReach:
    """Backward may-reach closure of ``goal_refs`` with absint pruning."""
    if facts is None:
        facts = analyze_module(module)
    if callgraph is None:
        callgraph = build_call_graph(module)
    # Dead blocks/edges are only trustworthy from a converged single-threaded
    # run; otherwise fall back to the purely syntactic closure.
    if facts.pruning_sound:
        dead_blocks = facts.unreachable
        dead_edges = _dead_edges(module, facts)
    else:
        dead_blocks = {}
        dead_edges = {}

    cfgs = {name: CFG(func) for name, func in module.functions.items()}

    def alive(function: str, label: str) -> bool:
        return label not in dead_blocks.get(function, frozenset())

    # Reverse call-descent edges: callee -> caller blocks with a site on it.
    sites_of: Dict[str, List[Tuple[str, str]]] = {}
    for (caller, label), sites in callgraph.sites_by_block.items():
        for site in sites:
            for target in site.targets:
                if target in module.functions:
                    sites_of.setdefault(target, []).append((caller, label))

    reached: Set[Tuple[str, str]] = set()
    worklist: List[Tuple[str, str]] = []
    for ref in goal_refs:
        if ref.function not in module.functions:
            continue
        node = (ref.function, ref.block)
        if alive(*node) and node not in reached:
            reached.add(node)
            worklist.append(node)
    if not reached and goal_refs:
        # The goal sits in a block the interpreter called dead -- a crash
        # report contradicting the analysis.  Trust the report: fall back to
        # the unpruned syntactic closure rather than declaring everything
        # unreachable.
        dead_blocks = {}
        dead_edges = {}
        for ref in goal_refs:
            if ref.function not in module.functions:
                continue
            node = (ref.function, ref.block)
            if node not in reached:
                reached.add(node)
                worklist.append(node)

    while worklist:
        function, label = worklist.pop()
        for pred in cfgs[function].preds.get(label, ()):
            if not alive(function, pred):
                continue
            if dead_edges.get((function, pred)) == label:
                continue
            node = (function, pred)
            if node not in reached:
                reached.add(node)
                worklist.append(node)
        if label == module.functions[function].entry:
            for node in sites_of.get(function, ()):
                if alive(*node) and node not in reached:
                    reached.add(node)
                    worklist.append(node)

    return GoalReach(
        goal_refs=tuple(goal_refs),
        blocks=frozenset(reached),
        functions=frozenset(function for function, _ in reached),
    )
