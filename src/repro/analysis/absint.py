"""Interval + constant-propagation abstract interpretation over the IR.

The interpreter runs the generic worklist framework (:mod:`.dataflow`) over
every reachable function with a product domain per value:

* ``num``  -- an interval of possible *integer* values,
* ``ptrs`` -- a set of abstract memory objects the value may point into,
* ``off``  -- an interval of cell offsets into those objects.

Scalar stack locals whose address never escapes are tracked flow-sensitively
with strong updates; global scalars are tracked flow-sensitively between
"interference points" (calls that may write them, synchronization); all other
memory (arrays, heap, escaped locals, symbolic input buffers) is summarized
flow-insensitively as the join of its initial contents and every store in the
module.  An interprocedural fixpoint joins argument values into callee
parameter summaries and return values back to call sites.

Arithmetic is *overflow-widened*: the concrete semantics wrap at 32 bits
(:func:`repro.ir.values.wrap32`) while plain interval arithmetic clamps, so
any operation whose raw result bounds leave the 32-bit range goes to ``FULL``
rather than silently clamping -- that keeps every fact an over-approximation
of the wrap-around executor.

Outputs (:class:`ModuleFacts`):

* ``branch_facts``   -- conditional branches with a statically decided side,
* ``access_safe``    -- loads/stores provably in-bounds and non-null,
* ``nonzero_divisors`` -- divisions whose divisor provably is not zero,
* ``unreachable``    -- per-function semantically dead blocks,
* ``findings``       -- bug smells (possible null deref / out-of-bounds /
  free of non-heap memory) consumed by :mod:`.lint`.

The first three are consulted by the symbolic executor to answer feasibility
probes with zero solver queries.  They are exported only when the module is
single-threaded and the fixpoint converged: flow-sensitive reasoning about
globals is sequential, and a preempting thread could invalidate it.  Findings
and per-block facts are always produced (lint is advisory).
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from .. import ir
from ..solver.intervals import FULL, HI_MAX, LO_MIN, Interval
from .cfg import CFG, CallGraph, build_call_graph, reachable_functions
from .dataflow import DataflowProblem, Solution, solve

EMPTY_IV = Interval(1, 0)
ZERO_IV = Interval(0, 0)
BYTE_IV = Interval(0, 255)
BOOL_IV = Interval(0, 1)

# Integer addresses below this are treated as "page zero": dereferencing a
# value that may land there is the null-dereference smell.
NULL_PAGE = 4096

# Interprocedural rounds: widen summaries after WIDEN_ROUNDS, give up (and
# withhold executor-facing facts) after MAX_ROUNDS without convergence.
WIDEN_ROUNDS = 4
MAX_ROUNDS = 16


# ---------------------------------------------------------------------------
# Abstract values
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class PtrObj:
    """One abstract memory object.

    ``kind`` is ``global`` / ``stack`` / ``heap`` / ``input`` / ``func`` /
    ``unknown``; ``key`` identifies the object within its kind; ``size`` is
    the cell count when statically known.
    """

    kind: str
    key: str
    size: Optional[int] = None

    def __repr__(self) -> str:
        size = f"[{self.size}]" if self.size is not None else ""
        return f"{self.kind}:{self.key}{size}"


UNKNOWN_OBJ = PtrObj("unknown", "?")


@dataclass(frozen=True, slots=True)
class AbsVal:
    """Abstract value: possible integers + possible pointer targets."""

    num: Interval = EMPTY_IV
    ptrs: FrozenSet[PtrObj] = frozenset()
    off: Interval = EMPTY_IV

    @property
    def is_bottom(self) -> bool:
        return self.num.empty and not self.ptrs

    @property
    def may_be_pointer(self) -> bool:
        return bool(self.ptrs)

    def __repr__(self) -> str:
        parts = []
        if not self.num.empty:
            parts.append(repr(self.num))
        if self.ptrs:
            objs = "|".join(sorted(map(repr, self.ptrs)))
            parts.append(f"ptr({objs})+{self.off!r}")
        return "⊥" if not parts else " ∪ ".join(parts)


BOTTOM = AbsVal()
TOP = AbsVal(num=FULL, ptrs=frozenset({UNKNOWN_OBJ}), off=FULL)


def integer(iv: Interval) -> AbsVal:
    return AbsVal(num=iv) if not iv.empty else BOTTOM


def const_val(value: int) -> AbsVal:
    return AbsVal(num=Interval(value, value))


def pointer(objs: FrozenSet[PtrObj], off: Interval) -> AbsVal:
    return AbsVal(ptrs=objs, off=off)


def join_vals(a: AbsVal, b: AbsVal) -> AbsVal:
    if a.is_bottom:
        return b
    if b.is_bottom:
        return a
    return AbsVal(
        num=a.num.union(b.num),
        ptrs=a.ptrs | b.ptrs,
        off=a.off.union(b.off),
    )


def _widen_iv(old: Interval, new: Interval) -> Interval:
    if old.empty:
        return new
    if new.empty:
        return old
    lo = old.lo if new.lo >= old.lo else LO_MIN
    hi = old.hi if new.hi <= old.hi else HI_MAX
    return Interval(lo, hi)


def widen_vals(old: AbsVal, new: AbsVal) -> AbsVal:
    if old.is_bottom:
        return new
    if new.is_bottom:
        return old
    return AbsVal(
        num=_widen_iv(old.num, new.num),
        ptrs=old.ptrs | new.ptrs,
        off=_widen_iv(old.off, new.off),
    )


# ---------------------------------------------------------------------------
# Overflow-widened interval arithmetic
# ---------------------------------------------------------------------------
#
# The rails ``LO_MIN`` / ``HI_MAX`` behave as -inf / +inf: a railed bound is
# (almost always) an artifact of widening, not a value the program computed,
# so arithmetic on it saturates at the rail instead of being declared a wrap
# (the standard no-signed-wrap assumption).  A *finite* bound escaping 32
# bits is a genuine overflow and widens the whole interval to ``FULL``.

_NEG_INF = float("-inf")
_POS_INF = float("inf")


def _ext(iv: Interval) -> tuple:
    """The interval's bounds with the rails mapped to +-infinity."""
    lo = _NEG_INF if iv.lo <= LO_MIN else iv.lo
    hi = _POS_INF if iv.hi >= HI_MAX else iv.hi
    return lo, hi


def _mk(lo, hi) -> Interval:
    """Extended-arithmetic bounds -> interval (rails clamp, wraps widen)."""
    if lo == _NEG_INF:
        lo = LO_MIN
    elif lo < LO_MIN or lo > HI_MAX:
        return FULL
    if hi == _POS_INF:
        hi = HI_MAX
    elif hi > HI_MAX or hi < LO_MIN:
        return FULL
    return Interval(int(lo), int(hi))


def _xmul(x, y):
    """Multiplication over the extended bounds (0 * inf is 0, not NaN)."""
    if x == 0 or y == 0:
        return 0
    return x * y


def _arith(op: str, a: Interval, b: Interval) -> Interval:
    if a.empty or b.empty:
        return EMPTY_IV
    alo, ahi = _ext(a)
    blo, bhi = _ext(b)
    if op == "+":
        return _mk(alo + blo, ahi + bhi)
    if op == "-":
        return _mk(alo - bhi, ahi - blo)
    if op == "*":
        products = (_xmul(alo, blo), _xmul(alo, bhi),
                    _xmul(ahi, blo), _xmul(ahi, bhi))
        return _mk(min(products), max(products))
    if op == "/":
        if 0 in b:
            return FULL
        if LO_MIN in a and -1 in b:
            return FULL  # INT_MIN / -1 wraps
        if (blo == _NEG_INF or bhi == _POS_INF) and (
                alo == _NEG_INF or ahi == _POS_INF):
            return FULL  # inf/inf corners are meaningless
        quotients = []
        for x in (alo, ahi):
            for y in (blo, bhi):
                q = abs(x) // abs(y)
                quotients.append(-q if (x < 0) != (y < 0) else q)
        return _mk(min(quotients), max(quotients))
    if op == "%":
        if b.singleton and b.lo > 0:
            c = b.lo
            if a.lo >= 0:
                return a if a.hi < c else Interval(0, c - 1)
            return Interval(-(c - 1), c - 1)
        if a.lo >= 0 and b.lo >= 1:
            # x % y for x >= 0, y >= 1 lands in [0, min(x, y - 1)].
            return Interval(0, min(a.hi, b.hi - 1))
        return FULL
    if op == "<<":
        if b.singleton and 0 <= b.lo <= 31 and a.lo >= 0:
            hi = _POS_INF if ahi == _POS_INF else ahi << b.lo
            return _mk(alo << b.lo, hi)
        return FULL
    if op == ">>":
        if b.singleton and 0 <= b.lo <= 31:
            return Interval(a.lo >> b.lo, a.hi >> b.lo)
        return FULL
    if op == "&":
        if a.lo >= 0 and b.lo >= 0:
            return Interval(0, min(a.hi, b.hi))
        return FULL
    if op in ("|", "^"):
        if a.lo >= 0 and b.lo >= 0:
            bound = 1
            top = max(a.hi, b.hi)
            while bound <= top:
                bound <<= 1
            return Interval(0, min(bound - 1, HI_MAX))
        return FULL
    raise KeyError(op)


def _compare_iv(op: str, a: Interval, b: Interval) -> Interval:
    if a.empty or b.empty:
        return EMPTY_IV
    if op == "==":
        if a.singleton and b.singleton:
            return Interval(1, 1) if a.lo == b.lo else ZERO_IV
        return ZERO_IV if a.intersect(b).empty else BOOL_IV
    if op == "!=":
        inner = _compare_iv("==", a, b)
        if inner.singleton:
            return Interval(1 - inner.lo, 1 - inner.lo)
        return BOOL_IV
    if op == "<":
        if a.hi < b.lo:
            return Interval(1, 1)
        if a.lo >= b.hi:
            return ZERO_IV
        return BOOL_IV
    if op == "<=":
        if a.hi <= b.lo:
            return Interval(1, 1)
        if a.lo > b.hi:
            return ZERO_IV
        return BOOL_IV
    if op == ">":
        return _compare_iv("<", b, a)
    if op == ">=":
        return _compare_iv("<=", b, a)
    raise KeyError(op)


def truthiness(value: AbsVal) -> Interval:
    """``TRUE``/``FALSE``/``BOOL`` interval for a value used as a condition.

    Runtime pointers are distinct :class:`~repro.symbex.memory.Pointer`
    objects, never the integer 0, so a may-be-pointer value may be truthy.
    """
    if value.is_bottom:
        return EMPTY_IV
    may_true = bool(value.ptrs) or value.num.hi > 0 or value.num.lo < 0
    may_false = (not value.num.empty) and (0 in value.num)
    if may_true and may_false:
        return BOOL_IV
    return Interval(1, 1) if may_true else ZERO_IV


def _as_num(value: AbsVal) -> Interval:
    """The integer view of a value; pointers contribute ``FULL``."""
    if value.ptrs:
        return FULL
    return value.num


def abs_binop(op: str, a: AbsVal, b: AbsVal) -> AbsVal:
    if a.is_bottom or b.is_bottom:
        return BOTTOM
    if op == "+":
        result = BOTTOM
        if a.ptrs and not b.num.empty:
            result = join_vals(result, pointer(a.ptrs, _arith("+", a.off, b.num)))
        if b.ptrs and not a.num.empty:
            result = join_vals(result, pointer(b.ptrs, _arith("+", b.off, a.num)))
        if not a.num.empty and not b.num.empty:
            result = join_vals(result, integer(_arith("+", a.num, b.num)))
        if a.ptrs and b.ptrs:
            result = join_vals(result, integer(FULL))
        return result
    if op == "-":
        result = BOTTOM
        if a.ptrs and not b.num.empty:
            result = join_vals(result, pointer(a.ptrs, _arith("-", a.off, b.num)))
        if not a.num.empty and not b.num.empty:
            result = join_vals(result, integer(_arith("-", a.num, b.num)))
        if b.ptrs and (a.ptrs or not a.num.empty):
            result = join_vals(result, integer(FULL))
        return result
    if op in ("&&", "||"):
        ta, tb = truthiness(a), truthiness(b)
        if op == "&&":
            if ta == ZERO_IV or tb == ZERO_IV:
                return const_val(0)
            if ta == Interval(1, 1) and tb == Interval(1, 1):
                return const_val(1)
        else:
            if ta == Interval(1, 1) or tb == Interval(1, 1):
                return const_val(1)
            if ta == ZERO_IV and tb == ZERO_IV:
                return const_val(0)
        return integer(BOOL_IV)
    if op in ("==", "!="):
        # Pointers never equal plain integers, and pointers into provably
        # different objects never compare equal.
        pure_ptr_a = a.ptrs and a.num.empty
        pure_ptr_b = b.ptrs and b.num.empty
        if pure_ptr_a and not b.ptrs or pure_ptr_b and not a.ptrs:
            return const_val(0 if op == "==" else 1)
        if (
            pure_ptr_a
            and pure_ptr_b
            and UNKNOWN_OBJ not in a.ptrs
            and UNKNOWN_OBJ not in b.ptrs
            and not (a.ptrs & b.ptrs)
        ):
            return const_val(0 if op == "==" else 1)
        return integer(_compare_iv(op, _as_num(a), _as_num(b)))
    if op in ("<", "<=", ">", ">="):
        return integer(_compare_iv(op, _as_num(a), _as_num(b)))
    return integer(_arith(op, _as_num(a), _as_num(b)))


def abs_unop(op: str, value: AbsVal) -> AbsVal:
    if value.is_bottom:
        return BOTTOM
    if op == "!":
        t = truthiness(value)
        if t.singleton:
            return const_val(1 - t.lo)
        return integer(BOOL_IV)
    iv = _as_num(value)
    if iv.empty:
        return integer(FULL)
    if op == "-":
        if LO_MIN in iv:
            return integer(FULL)  # -INT_MIN wraps
        return integer(Interval(-iv.hi, -iv.lo))
    if op == "~":
        return integer(Interval(~iv.hi, ~iv.lo))
    raise KeyError(op)


# ---------------------------------------------------------------------------
# Environments (per-block dataflow facts)
# ---------------------------------------------------------------------------


class Env:
    """Register + tracked-cell state at one program point."""

    __slots__ = ("regs", "cells", "globals")

    def __init__(
        self,
        regs: Optional[Dict[str, AbsVal]] = None,
        cells: Optional[Dict[str, AbsVal]] = None,
        globals_: Optional[Dict[str, AbsVal]] = None,
    ) -> None:
        self.regs: Dict[str, AbsVal] = regs if regs is not None else {}
        self.cells: Dict[str, AbsVal] = cells if cells is not None else {}
        self.globals: Dict[str, AbsVal] = globals_ if globals_ is not None else {}

    def copy(self) -> "Env":
        return Env(dict(self.regs), dict(self.cells), dict(self.globals))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Env):
            return NotImplemented
        return (
            self.regs == other.regs
            and self.cells == other.cells
            and self.globals == other.globals
        )

    def __hash__(self) -> int:  # pragma: no cover - envs are not hashed
        raise TypeError("Env is unhashable")

    def __repr__(self) -> str:
        return f"<env regs={self.regs} cells={self.cells} globals={self.globals}>"


def _join_keep_single(maps: Sequence[Dict[str, AbsVal]]) -> Dict[str, AbsVal]:
    """Pointwise join keeping keys present on any path (registers/locals are
    only read on paths that defined them)."""
    result: Dict[str, AbsVal] = {}
    for m in maps:
        for key, val in m.items():
            old = result.get(key)
            result[key] = val if old is None else join_vals(old, val)
    return result


def _join_intersect(maps: Sequence[Dict[str, AbsVal]]) -> Dict[str, AbsVal]:
    """Pointwise join keeping only keys present on *every* path (a missing
    global refinement means "no information", not bottom)."""
    if not maps:
        return {}
    keys = set(maps[0])
    for m in maps[1:]:
        keys &= set(m)
    return {key: _join_key(maps, key) for key in keys}


def _join_key(maps: Sequence[Dict[str, AbsVal]], key: str) -> AbsVal:
    result = BOTTOM
    for m in maps:
        result = join_vals(result, m[key])
    return result


def join_envs(envs: Sequence[Env]) -> Env:
    if len(envs) == 1:
        return envs[0].copy()
    return Env(
        _join_keep_single([e.regs for e in envs]),
        _join_keep_single([e.cells for e in envs]),
        _join_intersect([e.globals for e in envs]),
    )


def _widen_map(
    old: Dict[str, AbsVal], new: Dict[str, AbsVal]
) -> Dict[str, AbsVal]:
    result = dict(new)
    for key, nv in new.items():
        ov = old.get(key)
        if ov is not None:
            result[key] = widen_vals(ov, nv)
    return result


def widen_envs(old: Env, new: Env) -> Env:
    # Global refinements must stay an *intersection*: a key widened from a
    # round where it was absent would resurrect stale flow-sensitivity.
    globals_ = {
        key: widen_vals(old.globals[key], nv)
        for key, nv in new.globals.items()
        if key in old.globals
    }
    return Env(_widen_map(old.regs, new.regs), _widen_map(old.cells, new.cells), globals_)


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Finding:
    """One bug smell discovered statically."""

    rule: str
    function: str
    line: int
    ref: Optional[ir.InstrRef]
    message: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "function": self.function,
            "line": self.line,
            "ref": repr(self.ref) if self.ref is not None else None,
            "message": self.message,
        }


@dataclass(slots=True)
class ModuleFacts:
    """Everything the abstract interpreter learned about one module."""

    module_name: str
    single_threaded: bool
    converged: bool
    rounds: int
    branch_facts: Dict[ir.InstrRef, str] = field(default_factory=dict)
    access_safe: FrozenSet[ir.InstrRef] = frozenset()
    nonzero_divisors: FrozenSet[ir.InstrRef] = frozenset()
    unreachable: Dict[str, FrozenSet[str]] = field(default_factory=dict)
    findings: List[Finding] = field(default_factory=list)
    block_facts: Dict[str, Dict[str, Dict[str, str]]] = field(default_factory=dict)
    # Per-function return-value intervals (empty interval = never returns a
    # scalar).  Exported only when ``pruning_sound``: mid-fixpoint summaries
    # are under-approximations and thread interference breaks the global
    # reasoning they rest on.  Consumed by :mod:`.summaries`.
    ret_intervals: Dict[str, Interval] = field(default_factory=dict)

    @property
    def pruning_sound(self) -> bool:
        """Whether executor-facing facts may be consulted."""
        return self.single_threaded and self.converged

    def to_dict(self) -> Dict[str, object]:
        return {
            "module": self.module_name,
            "single_threaded": self.single_threaded,
            "converged": self.converged,
            "rounds": self.rounds,
            "pruning_sound": self.pruning_sound,
            "branch_facts": {
                repr(ref): side for ref, side in sorted(self.branch_facts.items())
            },
            "access_safe": sorted(repr(ref) for ref in self.access_safe),
            "nonzero_divisors": sorted(repr(ref) for ref in self.nonzero_divisors),
            "unreachable": {
                func: sorted(labels)
                for func, labels in sorted(self.unreachable.items())
                if labels
            },
            "findings": [f.to_dict() for f in self.findings],
            "block_facts": self.block_facts,
            "ret_intervals": {
                name: [iv.lo, iv.hi]
                for name, iv in sorted(self.ret_intervals.items())
            },
        }


# ---------------------------------------------------------------------------
# Function summaries
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class FuncSummary:
    params: List[AbsVal]
    ret: AbsVal = BOTTOM


class _Recorder:
    """Per-instruction observations collected on the final annotate pass."""

    __slots__ = ("branch_facts", "access_safe", "nonzero_divisors", "findings")

    def __init__(self) -> None:
        self.branch_facts: Dict[ir.InstrRef, str] = {}
        self.access_safe: Set[ir.InstrRef] = set()
        self.nonzero_divisors: Set[ir.InstrRef] = set()
        self.findings: Dict[Tuple[str, str, int], Finding] = {}

    def finding(self, rule: str, ref: ir.InstrRef, line: int, message: str) -> None:
        key = (rule, ref.function, line)
        if key not in self.findings:
            self.findings[key] = Finding(rule, ref.function, line, ref, message)


# ---------------------------------------------------------------------------
# The analyzer
# ---------------------------------------------------------------------------


class _FuncProblem(DataflowProblem[Env]):
    """Forward abstract interpretation of one function."""

    direction = "forward"

    def __init__(self, analyzer: "_Analyzer", func: ir.Function) -> None:
        self.analyzer = analyzer
        self.func = func

    def bottom(self) -> Env:
        return Env()

    def boundary(self) -> Env:
        summary = self.analyzer.summaries[self.func.name]
        regs = {
            name: summary.params[i] if i < len(summary.params) else BOTTOM
            for i, name in enumerate(self.func.params)
        }
        return Env(regs=regs)

    def join(self, facts: Sequence[Env]) -> Env:
        return join_envs(facts)

    def transfer(self, label: str, fact: Env) -> Env:
        env = fact.copy()
        self.analyzer.exec_block(self.func, label, env, record=None)
        return env

    def widen(self, old: Env, new: Env, visits: int) -> Env:
        return widen_envs(old, new)

    def edge_fact(self, src: str, dst: str, fact: Env) -> Optional[Env]:
        return self.analyzer.refine_edge(self.func, src, dst, fact)


class _Analyzer:
    def __init__(self, module: ir.Module) -> None:
        self.module = module
        self.callgraph: CallGraph = build_call_graph(module)
        self.reachable = (
            reachable_functions(module, self.callgraph)
            if "main" in module.functions
            else set(module.functions)
        )
        self.single_threaded = not any(
            isinstance(instr, ir.ThreadCreate)
            for name in self.reachable
            for _, instr in module.functions[name].iter_instructions()
        )
        self.cfgs: Dict[str, CFG] = {
            name: CFG(module.functions[name]) for name in self.reachable
        }
        self.global_objs: Dict[str, PtrObj] = {
            name: PtrObj("global", name, var.size)
            for name, var in module.globals.items()
        }
        self.summaries: Dict[str, FuncSummary] = {
            name: FuncSummary([BOTTOM] * len(module.functions[name].params))
            for name in module.functions
        }
        if "main" in module.functions:
            main = self.summaries["main"]
            main.params = [integer(FULL) for _ in main.params]
        self.mem: Dict[PtrObj, AbsVal] = {}
        self.tracked: Dict[str, Dict[str, str]] = {
            name: _tracked_locals(module.functions[name]) for name in self.reachable
        }
        self.write_sets: Dict[str, Set[str]] = _global_write_sets(
            module, self.callgraph, self.reachable
        )
        self.havocked = False
        self.widen_round = False
        self._changed = False
        # Summary recording happens only on dedicated collection sweeps over
        # each function's *converged* solution: recording during fixpoint
        # iteration would ratchet transient (pre-narrowing) imprecision into
        # the monotone interprocedural summaries.
        self.collecting = False
        self._input_objs: Dict[str, PtrObj] = {}
        self.solutions: Dict[str, Solution[Env]] = {}
        self._tracked_keys: Dict[str, Dict[str, str]] = {}

    # -- memory summaries ---------------------------------------------------

    def _base_contents(self, obj: PtrObj) -> AbsVal:
        if obj.kind == "global":
            var = self.module.globals.get(obj.key)
            if var is None:
                return TOP
            cells = list(var.init) + [0] * (var.size - len(var.init))
            if not cells:
                return const_val(0)
            return integer(Interval(min(cells), max(cells)))
        if obj.kind in ("stack", "heap"):
            return const_val(0)  # MemObject cells are zero-initialized
        if obj.kind == "input":
            return integer(BYTE_IV)
        return TOP

    def mem_read(self, obj: PtrObj) -> AbsVal:
        if self.havocked and obj.kind != "func":
            return TOP
        stored = self.mem.get(obj)
        base = self._base_contents(obj)
        return base if stored is None else join_vals(base, stored)

    def mem_store(self, obj: PtrObj, value: AbsVal) -> None:
        if not self.collecting:
            return
        old = self.mem.get(obj, BOTTOM)
        new = widen_vals(old, value) if self.widen_round else join_vals(old, value)
        if new != old:
            self.mem[obj] = new
            self._changed = True

    def havoc(self) -> None:
        if self.collecting and not self.havocked:
            self.havocked = True
            self._changed = True

    def _input_obj(self, key: str, size: Optional[int]) -> PtrObj:
        obj = self._input_objs.get(key)
        if obj is None or (obj.size is None and size is not None):
            obj = PtrObj("input", key, size)
            self._input_objs[key] = obj
        return obj

    # -- value evaluation ---------------------------------------------------

    def eval_value(self, value: ir.Value, env: Env) -> AbsVal:
        if isinstance(value, ir.Const):
            return const_val(value.value)
        if isinstance(value, ir.Reg):
            return env.regs.get(value.name, TOP)
        if isinstance(value, ir.GlobalRef):
            obj = self.global_objs.get(value.name, UNKNOWN_OBJ)
            return pointer(frozenset({obj}), ZERO_IV)
        if isinstance(value, ir.FuncRef):
            return pointer(frozenset({PtrObj("func", value.name)}), ZERO_IV)
        if isinstance(value, ir.Hole):
            return integer(Interval(value.lo, value.hi))
        return TOP

    def load(self, addr: AbsVal, env: Env) -> AbsVal:
        # Executions that survive the dereference had a real pointer in
        # hand, so the integer component contributes nothing.
        result = BOTTOM
        for obj in addr.ptrs:
            if obj.kind in ("unknown", "func"):
                result = join_vals(result, TOP)
            elif obj.kind == "stack" and obj.key in env.cells:
                result = join_vals(result, env.cells[obj.key])
            elif obj.kind == "global" and obj.key in env.globals:
                result = join_vals(result, env.globals[obj.key])
            else:
                result = join_vals(result, self.mem_read(obj))
        return result

    def store(self, addr: AbsVal, value: AbsVal, env: Env) -> None:
        if UNKNOWN_OBJ in addr.ptrs:
            self.havoc()
            env.globals.clear()
            env.cells.clear()
            return
        single = len(addr.ptrs) == 1
        for obj in addr.ptrs:
            if obj.kind == "stack" and obj.key in env.cells:
                if single and addr.off == ZERO_IV:
                    env.cells[obj.key] = value
                else:
                    env.cells[obj.key] = join_vals(env.cells.get(obj.key, BOTTOM), value)
                continue
            if obj.kind == "global" and obj.size == 1:
                if single and addr.off == ZERO_IV:
                    env.globals[obj.key] = value
                else:
                    env.globals[obj.key] = join_vals(
                        env.globals.get(obj.key, self.mem_read(obj)), value
                    )
            elif obj.kind == "global" and obj.key in env.globals:
                del env.globals[obj.key]
            self.mem_store(obj, value)

    def _invalidate_globals(self, env: Env, names: Optional[Set[str]]) -> None:
        if names is None:
            env.globals.clear()
            return
        for name in names:
            env.globals.pop(name, None)

    # -- instruction transfer ----------------------------------------------

    def exec_block(
        self,
        func: ir.Function,
        label: str,
        env: Env,
        record: Optional[_Recorder],
    ) -> None:
        block = func.blocks[label]
        tracked = self.tracked[func.name]
        for index, instr in enumerate(block.instrs):
            ref = ir.InstrRef(func.name, label, index)
            self._exec_instr(func, ref, instr, env, tracked, record)
        if record is not None and isinstance(block.terminator, ir.CondBr):
            ref = ir.InstrRef(func.name, label, len(block.instrs))
            cond = self.eval_value(block.terminator.cond, env)
            t = truthiness(cond)
            if t == Interval(1, 1):
                record.branch_facts[ref] = "then"
            elif t == ZERO_IV:
                record.branch_facts[ref] = "else"

    def _exec_instr(
        self,
        func: ir.Function,
        ref: ir.InstrRef,
        instr: ir.Instr,
        env: Env,
        tracked: Dict[str, str],
        record: Optional[_Recorder],
    ) -> None:
        if isinstance(instr, ir.Assign):
            env.regs[instr.dst.name] = self.eval_value(instr.src, env)  # type: ignore[union-attr]
        elif isinstance(instr, ir.BinOp):
            lhs = self.eval_value(instr.lhs, env)
            rhs = self.eval_value(instr.rhs, env)
            env.regs[instr.dst.name] = abs_binop(instr.op, lhs, rhs)  # type: ignore[union-attr]
            if record is not None and instr.op in ("/", "%"):
                t = truthiness(rhs)
                if t == Interval(1, 1):
                    record.nonzero_divisors.add(ref)
        elif isinstance(instr, ir.UnOp):
            env.regs[instr.dst.name] = abs_unop(  # type: ignore[union-attr]
                instr.op, self.eval_value(instr.value, env)
            )
        elif isinstance(instr, ir.Alloc):
            self._exec_alloc(func, ref, instr, env, tracked)
        elif isinstance(instr, ir.Free):
            self._exec_free(ref, instr, env, record)
        elif isinstance(instr, ir.Load):
            addr = self.eval_value(instr.addr, env)
            self._check_access(ref, instr.line, addr, record)
            env.regs[instr.dst.name] = self.load(addr, env)  # type: ignore[union-attr]
        elif isinstance(instr, ir.Store):
            addr = self.eval_value(instr.addr, env)
            self._check_access(ref, instr.line, addr, record)
            self.store(addr, self.eval_value(instr.value, env), env)
        elif isinstance(instr, ir.Gep):
            base = self.eval_value(instr.base, env)
            offset = self.eval_value(instr.offset, env)
            env.regs[instr.dst.name] = abs_binop("+", base, offset)  # type: ignore[union-attr]
        elif isinstance(instr, ir.Call):
            self._exec_call(ref, instr, env)
        elif isinstance(instr, ir.Intrinsic):
            self._exec_intrinsic(ref, instr, env)
        elif isinstance(instr, ir.ThreadCreate):
            self._exec_spawn(instr, env)
        elif isinstance(instr, ir.ThreadJoin):
            if instr.dst is not None:
                env.regs[instr.dst.name] = integer(FULL)  # type: ignore[union-attr]
            self._invalidate_globals(env, None)
        elif isinstance(instr, (ir.MutexLock, ir.MutexUnlock, ir.CondWait, ir.CondSignal)):
            # Preemption points: another thread may rewrite any global.
            if not self.single_threaded:
                self._invalidate_globals(env, None)
        # Assert: refinement opportunity only; skipped.

    def _exec_alloc(
        self,
        func: ir.Function,
        ref: ir.InstrRef,
        instr: ir.Alloc,
        env: Env,
        tracked: Dict[str, str],
    ) -> None:
        size_val = self.eval_value(instr.size, env)
        size = size_val.num.lo if size_val.num.singleton else None
        kind = "heap" if instr.heap else "stack"
        key = f"{func.name}.{instr.name or instr.defined}@{ref.block}:{ref.index}"
        obj = PtrObj(kind, key, size)
        if instr.dst is not None:
            env.regs[instr.dst.name] = pointer(frozenset({obj}), ZERO_IV)  # type: ignore[union-attr]
        if (
            kind == "stack"
            and instr.defined is not None
            and tracked.get(instr.defined) is not None
        ):
            env.cells[key] = const_val(0)
            self._tracked_keys.setdefault(func.name, {})[tracked[instr.defined]] = key

    def _exec_free(
        self,
        ref: ir.InstrRef,
        instr: ir.Free,
        env: Env,
        record: Optional[_Recorder],
    ) -> None:
        if record is None:
            return
        target = self.eval_value(instr.ptr, env)
        bad = sorted(
            repr(obj) for obj in target.ptrs if obj.kind in ("global", "stack")
        )
        if bad:
            record.finding(
                "free-of-non-heap",
                ref,
                instr.line,
                f"free() may target non-heap memory: {', '.join(bad)}",
            )

    def _check_access(
        self,
        ref: ir.InstrRef,
        line: int,
        addr: AbsVal,
        record: Optional[_Recorder],
    ) -> None:
        if record is None or addr.is_bottom:
            return
        # Flag only when the address has *no* pointer component at all: a
        # mixed null-or-pointer value is usually an interprocedural join
        # with an error path the caller has already excluded.
        if (not addr.ptrs and not addr.num.empty
                and addr.num.hi >= 0 and addr.num.lo < NULL_PAGE):
            record.finding(
                "possible-null-deref",
                ref,
                line,
                f"address may be a small integer {addr.num!r} (page zero)",
            )
        oob: List[str] = []
        safe = bool(addr.ptrs) and addr.num.empty and not addr.off.empty
        for obj in addr.ptrs:
            if obj.kind in ("unknown", "func"):
                safe = False
                continue
            if obj.size is None:
                safe = False
                continue
            if addr.off.lo < 0 or addr.off.hi >= obj.size:
                safe = False
                # Only a possibly-negative index is reported: a forward scan
                # over NUL-terminated content legitimately has no static
                # upper bound, so a widened high offset is noise, but no
                # loop shape justifies indexing before the object.
                if addr.off.lo < 0:
                    oob.append(f"{obj!r} with offset {addr.off!r}")
        if oob:
            record.finding(
                "possible-oob",
                ref,
                line,
                f"offset may escape object bounds: {', '.join(oob)}",
            )
        if safe:
            record.access_safe.add(ref)

    def _exec_call(self, ref: ir.InstrRef, instr: ir.Call, env: Env) -> None:
        targets: Tuple[str, ...]
        unknown_target = False
        if isinstance(instr.callee, ir.FuncRef):
            targets = (instr.callee.name,)
        else:
            targets = self.callgraph.address_taken.get(len(instr.args), ())
            unknown_target = not targets
        arg_vals = [self.eval_value(arg, env) for arg in instr.args]
        ret = BOTTOM
        invalidate: Optional[Set[str]] = set()
        for name in targets:
            summary = self.summaries.get(name)
            if summary is None:
                unknown_target = True
                continue
            self._record_args(name, arg_vals)
            ret = join_vals(ret, summary.ret)
            ws = self.write_sets.get(name)
            if ws is None or invalidate is None:
                invalidate = None
            else:
                invalidate |= ws
        if unknown_target:
            ret = join_vals(ret, TOP)
            invalidate = None
        self._invalidate_globals(env, invalidate)
        if instr.dst is not None:
            env.regs[instr.dst.name] = ret  # type: ignore[union-attr]

    def _exec_spawn(self, instr: ir.ThreadCreate, env: Env) -> None:
        if isinstance(instr.func, ir.FuncRef):
            targets: Tuple[str, ...] = (instr.func.name,)
        else:
            targets = self.callgraph.address_taken.get(1, ())
        arg = self.eval_value(instr.arg, env)
        for name in targets:
            self._record_args(name, [arg])
        self._invalidate_globals(env, None)
        if instr.dst is not None:
            env.regs[instr.dst.name] = integer(Interval(0, HI_MAX))  # type: ignore[union-attr]

    def _record_args(self, name: str, arg_vals: List[AbsVal]) -> None:
        if not self.collecting:
            return
        summary = self.summaries[name]
        for i, val in enumerate(arg_vals):
            if i >= len(summary.params):
                break
            old = summary.params[i]
            new = widen_vals(old, val) if self.widen_round else join_vals(old, val)
            if new != old:
                summary.params[i] = new
                self._changed = True

    def _exec_intrinsic(self, ref: ir.InstrRef, instr: ir.Intrinsic, env: Env) -> None:
        result: Optional[AbsVal] = None
        if instr.name == "getchar":
            result = integer(BYTE_IV)
        elif instr.name == "argc":
            result = integer(Interval(1, HI_MAX))
        elif instr.name == "getenv":
            key = "env"
            if instr.args and isinstance(instr.args[0], ir.GlobalRef):
                key = f"env:{instr.args[0].name}"
            result = pointer(frozenset({self._input_obj(key, None)}), ZERO_IV)
        elif instr.name == "arg":
            result = pointer(frozenset({self._input_obj("argv", None)}), ZERO_IV)
        elif instr.name == "read_input":
            size: Optional[int] = None
            if len(instr.args) > 1 and isinstance(instr.args[1], ir.Const):
                size = instr.args[1].value
            result = pointer(frozenset({self._input_obj(f"input@{ref}", size)}), ZERO_IV)
        if instr.dst is not None:
            env.regs[instr.dst.name] = result if result is not None else TOP  # type: ignore[union-attr]

    # -- edge refinement ----------------------------------------------------

    def refine_edge(
        self, func: ir.Function, src: str, dst: str, fact: Env
    ) -> Optional[Env]:
        block = func.blocks[src]
        term = block.terminator
        if not isinstance(term, ir.CondBr) or term.then_target == term.else_target:
            return fact
        want_true = dst == term.then_target
        cond = self.eval_value(term.cond, fact)
        t = truthiness(cond)
        if t == Interval(1, 1) and not want_true:
            return None
        if t == ZERO_IV and want_true:
            return None
        if not isinstance(term.cond, ir.Reg):
            return fact
        env = fact.copy()
        node = self._trace(func, block, len(block.instrs), term.cond, env)
        if not self._refine(node, want_true, env):
            return None
        return env

    def _trace(
        self,
        func: ir.Function,
        block: ir.BasicBlock,
        upto: int,
        value: ir.Value,
        env: Env,
    ) -> Tuple[object, ...]:
        if isinstance(value, ir.Const):
            return ("const", value.value)
        if not isinstance(value, ir.Reg):
            return ("val", self.eval_value(value, env))
        for i in range(upto - 1, -1, -1):
            instr = block.instrs[i]
            if instr.defined != value.name:
                continue
            if isinstance(instr, ir.Assign):
                return self._trace(func, block, i, instr.src, env)
            if isinstance(instr, ir.BinOp):
                return (
                    "bin",
                    instr.op,
                    self._trace(func, block, i, instr.lhs, env),
                    self._trace(func, block, i, instr.rhs, env),
                )
            if isinstance(instr, ir.UnOp) and instr.op == "!":
                return ("not", self._trace(func, block, i, instr.value, env))
            if isinstance(instr, ir.Load):
                # The refinement applies at the block's *edge*, so the cell
                # must stay unclobbered through the end of the block.
                cell = self._cell_for_load(
                    func, block, i, len(block.instrs), instr, env
                )
                if cell is not None:
                    return cell
                return ("val", env.regs.get(value.name, TOP))
            break
        return ("val", env.regs.get(value.name, TOP))

    def _cell_for_load(
        self,
        func: ir.Function,
        block: ir.BasicBlock,
        index: int,
        upto: int,
        instr: ir.Load,
        env: Env,
    ) -> Optional[Tuple[object, ...]]:
        """A load of one tracked scalar cell, unclobbered up to ``upto``."""
        addr = self.eval_value(instr.addr, env)
        if len(addr.ptrs) != 1 or not addr.num.empty or addr.off != ZERO_IV:
            return None
        obj = next(iter(addr.ptrs))
        if obj.kind == "stack" and obj.key in env.cells:
            kind = "cell"
        elif obj.kind == "global" and obj.size == 1:
            kind = "global"
        else:
            return None
        # A later store or interference point would make the refinement
        # apply to a stale value.
        for j in range(index + 1, upto):
            later = block.instrs[j]
            if isinstance(later, ir.Store):
                target = self.eval_value(later.addr, env)
                if obj in target.ptrs or UNKNOWN_OBJ in target.ptrs:
                    return None
            elif isinstance(later, (ir.Call, ir.Intrinsic, *ir.SYNC_INSTRS)):
                if kind == "global":
                    return None
        return (kind, obj)

    def _cell_value(self, kind: str, obj: PtrObj, env: Env) -> AbsVal:
        if kind == "cell":
            return env.cells.get(obj.key, BOTTOM)
        return env.globals.get(obj.key, self.mem_read(obj))

    def _set_cell(self, kind: str, obj: PtrObj, value: AbsVal, env: Env) -> None:
        if kind == "cell":
            env.cells[obj.key] = value
        else:
            env.globals[obj.key] = value

    def _eval_node(self, node: Tuple[object, ...], env: Env) -> AbsVal:
        tag = node[0]
        if tag == "const":
            return const_val(node[1])  # type: ignore[arg-type]
        if tag == "val":
            return node[1]  # type: ignore[return-value]
        if tag in ("cell", "global"):
            return self._cell_value(tag, node[1], env)  # type: ignore[arg-type]
        if tag == "not":
            return abs_unop("!", self._eval_node(node[1], env))  # type: ignore[arg-type]
        # ('bin', op, lhs, rhs)
        return abs_binop(
            node[1],  # type: ignore[arg-type]
            self._eval_node(node[2], env),  # type: ignore[arg-type]
            self._eval_node(node[3], env),  # type: ignore[arg-type]
        )

    def _refine(self, node: Tuple[object, ...], want_true: bool, env: Env) -> bool:
        tag = node[0]
        if tag == "const":
            return bool(node[1]) == want_true
        if tag == "val":
            t = truthiness(node[1])  # type: ignore[arg-type]
            if t.singleton:
                return bool(t.lo) == want_true
            return True
        if tag == "not":
            return self._refine(node[1], not want_true, env)  # type: ignore[arg-type]
        if tag in ("cell", "global"):
            return self._refine_truthy(tag, node[1], want_true, env)  # type: ignore[arg-type]
        if tag == "bin":
            op = node[1]
            lhs, rhs = node[2], node[3]  # type: ignore[assignment]
            if op == "&&":
                if want_true:
                    return self._refine(lhs, True, env) and self._refine(rhs, True, env)
                return self._refine_falsified_conj(lhs, rhs, env)
            if op == "||":
                if not want_true:
                    return self._refine(lhs, False, env) and self._refine(rhs, False, env)
                return True
            if op in ir.COMPARISON_OPS:
                return self._refine_compare(op, lhs, rhs, want_true, env)  # type: ignore[arg-type]
            value = self._eval_node(node, env)
            t = truthiness(value)
            if t.singleton:
                return bool(t.lo) == want_true
            return True
        return True

    def _refine_falsified_conj(
        self, lhs: Tuple[object, ...], rhs: Tuple[object, ...], env: Env
    ) -> bool:
        # !(a && b): if one side is definitely true, the other must be false.
        lt = truthiness(self._eval_node(lhs, env))
        rt = truthiness(self._eval_node(rhs, env))
        if lt == Interval(1, 1):
            return self._refine(rhs, False, env)
        if rt == Interval(1, 1):
            return self._refine(lhs, False, env)
        if lt == ZERO_IV and rt == ZERO_IV:
            return True
        return True

    def _refine_truthy(
        self, kind: str, obj: PtrObj, want_true: bool, env: Env
    ) -> bool:
        current = self._cell_value(kind, obj, env)
        if want_true:
            num = current.num
            if not num.empty:
                # Exclude zero when it sits at an endpoint of the interval.
                if num.lo == 0 and num.hi == 0:
                    num = EMPTY_IV
                elif num.lo == 0:
                    num = Interval(1, num.hi)
                elif num.hi == 0:
                    num = Interval(num.lo, -1)
            refined = AbsVal(num=num, ptrs=current.ptrs, off=current.off)
            if refined.is_bottom:
                return False
            self._set_cell(kind, obj, refined, env)
            return True
        if current.num.empty or 0 not in current.num:
            return False
        self._set_cell(kind, obj, const_val(0), env)
        return True

    _NEGATED = {"==": "!=", "!=": "==", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}
    _SWAPPED = {"==": "==", "!=": "!=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}

    def _refine_compare(
        self,
        op: str,
        lhs: Tuple[object, ...],
        rhs: Tuple[object, ...],
        want_true: bool,
        env: Env,
    ) -> bool:
        if not want_true:
            op = self._NEGATED[op]
        lv = self._eval_node(lhs, env)
        rv = self._eval_node(rhs, env)
        outcome = abs_binop(op, lv, rv)
        t = truthiness(outcome)
        if t == ZERO_IV:
            return False
        if lhs[0] in ("cell", "global") and not self._apply_cmp(
            lhs[0], lhs[1], op, rv, env  # type: ignore[arg-type]
        ):
            return False
        swapped = self._SWAPPED[op]
        if rhs[0] in ("cell", "global") and not self._apply_cmp(
            rhs[0], rhs[1], swapped, lv, env  # type: ignore[arg-type]
        ):
            return False
        return True

    def _apply_cmp(
        self, kind: str, obj: PtrObj, op: str, other: AbsVal, env: Env
    ) -> bool:
        current = self._cell_value(kind, obj, env)
        num = current.num
        ptrs = current.ptrs
        bound = _as_num(other)
        if bound.empty:
            return True
        if op == "==":
            num = num.intersect(bound) if not num.empty else num
            if not other.ptrs:
                # Equal to a plain integer: the pointer component dies
                # (pointers never equal integers).
                ptrs = frozenset()
            elif other.num.empty:
                num = EMPTY_IV
                ptrs = ptrs & other.ptrs if UNKNOWN_OBJ not in other.ptrs else ptrs
        elif op == "!=":
            if bound.singleton and not num.empty:
                if num.lo == bound.lo == num.hi:
                    num = EMPTY_IV
                elif num.lo == bound.lo:
                    num = Interval(num.lo + 1, num.hi)
                elif num.hi == bound.lo:
                    num = Interval(num.lo, num.hi - 1)
        elif op == "<":
            if not num.empty:
                num = num.intersect(Interval(LO_MIN, bound.hi - 1))
        elif op == "<=":
            if not num.empty:
                num = num.intersect(Interval(LO_MIN, bound.hi))
        elif op == ">":
            if not num.empty:
                num = num.intersect(Interval(bound.lo + 1, HI_MAX))
        elif op == ">=":
            if not num.empty:
                num = num.intersect(Interval(bound.lo, HI_MAX))
        refined = AbsVal(num=num, ptrs=ptrs, off=current.off)
        if refined.is_bottom:
            return False
        self._set_cell(kind, obj, refined, env)
        return True

    # -- driver -------------------------------------------------------------

    def run(self) -> ModuleFacts:
        order = sorted(
            self.reachable,
            key=lambda name: (name != "main", name),
        )
        rounds = 0
        converged = False
        while rounds < MAX_ROUNDS:
            rounds += 1
            self.widen_round = rounds > WIDEN_ROUNDS
            self._changed = False
            for name in order:
                func = self.module.functions[name]
                problem = _FuncProblem(self, func)
                solution = solve(self.cfgs[name], problem)
                self.solutions[name] = solution
                self._collect(func, solution)
                self._record_return(func, solution)
            if not self._changed:
                converged = True
                break

        recorder = _Recorder()
        unreachable: Dict[str, FrozenSet[str]] = {}
        block_facts: Dict[str, Dict[str, Dict[str, str]]] = {}
        for name in order:
            func = self.module.functions[name]
            solution = self.solutions[name]
            unreachable[name] = frozenset(solution.unreached)
            rendered: Dict[str, Dict[str, str]] = {}
            for label in func.blocks:
                if label in solution.unreached:
                    continue
                in_fact = solution.in_fact(label)
                if in_fact is None:
                    continue
                env = in_fact.copy()
                self.exec_block(func, label, env, record=recorder)
                rendered[label] = _render_env(env, self._tracked_keys.get(name, {}))
            block_facts[name] = rendered

        facts = ModuleFacts(
            module_name=self.module.name,
            single_threaded=self.single_threaded,
            converged=converged,
            rounds=rounds,
            unreachable=unreachable,
            findings=sorted(
                recorder.findings.values(),
                key=lambda f: (f.function, f.line, f.rule),
            ),
            block_facts=block_facts,
        )
        if facts.pruning_sound:
            facts.branch_facts = dict(recorder.branch_facts)
            facts.access_safe = frozenset(recorder.access_safe)
            facts.nonzero_divisors = frozenset(recorder.nonzero_divisors)
            facts.ret_intervals = {
                name: self.summaries[name].ret.num for name in order
            }
        return facts

    def _collect(self, func: ir.Function, solution: Solution[Env]) -> None:
        """Replay the converged facts once, recording summary side effects."""
        self.collecting = True
        try:
            for label in func.blocks:
                if label in solution.unreached:
                    continue
                in_fact = solution.in_fact(label)
                if in_fact is None:
                    continue
                env = in_fact.copy()
                self.exec_block(func, label, env, record=None)
        finally:
            self.collecting = False

    def _record_return(self, func: ir.Function, solution: Solution[Env]) -> None:
        summary = self.summaries[func.name]
        for label, block in func.blocks.items():
            if label in solution.unreached:
                continue
            term = block.terminator
            if not isinstance(term, ir.Ret) or term.value is None:
                continue
            out = solution.out_fact(label)
            if out is None:
                continue
            val = self.eval_value(term.value, out)
            new = (
                widen_vals(summary.ret, val)
                if self.widen_round
                else join_vals(summary.ret, val)
            )
            if new != summary.ret:
                summary.ret = new
                self._changed = True


def _render_env(env: Env, tracked_keys: Dict[str, str]) -> Dict[str, str]:
    rendered: Dict[str, str] = {}
    key_to_name = {key: name for name, key in tracked_keys.items()}
    for key, val in sorted(env.cells.items()):
        rendered[key_to_name.get(key, key)] = repr(val)
    for name, val in sorted(env.globals.items()):
        rendered[f"@{name}"] = repr(val)
    return rendered


# ---------------------------------------------------------------------------
# Pre-passes
# ---------------------------------------------------------------------------


def _tracked_locals(func: ir.Function) -> Dict[str, str]:
    """Scalar stack locals whose address never escapes: Alloc dst -> name.

    The address register may only ever be used as the address operand of a
    load or store; any other use (gep base, call argument, stored value,
    return...) escapes the cell and demotes it to the summary domain.
    """
    candidates: Dict[str, str] = {}
    for _, instr in func.iter_instructions():
        if (
            isinstance(instr, ir.Alloc)
            and not instr.heap
            and isinstance(instr.size, ir.Const)
            and instr.size.value == 1
            and instr.defined is not None
        ):
            candidates[instr.defined] = instr.name or instr.defined
    if not candidates:
        return {}
    for _, instr in func.iter_instructions():
        if isinstance(instr, ir.Load):
            uses: Tuple[ir.Value, ...] = ()
        elif isinstance(instr, ir.Store):
            uses = (instr.value,)
        else:
            uses = instr.operands()
        for op in uses:
            if isinstance(op, ir.Reg) and op.name in candidates:
                del candidates[op.name]
    return candidates


def _global_write_sets(
    module: ir.Module, callgraph: CallGraph, reachable: Set[str]
) -> Dict[str, Set[str]]:
    """Per function: globals it (or any transitive callee) may write.

    Functions containing indirect stores or unresolved calls get ``None``ish
    treatment by writing every global.
    """
    all_globals = set(module.globals)
    direct: Dict[str, Set[str]] = {}
    for name in module.functions:
        writes: Set[str] = set()
        for _, instr in module.functions[name].iter_instructions():
            if isinstance(instr, ir.Store):
                if isinstance(instr.addr, ir.GlobalRef):
                    writes.add(instr.addr.name)
                else:
                    # The store may go through any pointer; global-precise
                    # resolution happens in the abstract domain, but the
                    # write set must stay conservative.
                    writes = set(all_globals)
                    break
        direct[name] = writes
    result = {name: set(ws) for name, ws in direct.items()}
    changed = True
    while changed:
        changed = False
        for name in module.functions:
            for callee in callgraph.callees.get(name, ()):
                before = len(result[name])
                result[name] |= result.get(callee, all_globals)
                if len(result[name]) != before:
                    changed = True
    return result


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------

_memo: "weakref.WeakKeyDictionary[ir.Module, ModuleFacts]" = weakref.WeakKeyDictionary()


def analyze_module(module: ir.Module, *, cache: bool = True) -> ModuleFacts:
    """Run whole-module abstract interpretation (memoized per module)."""
    if cache:
        cached = _memo.get(module)
        if cached is not None:
            return cached
    facts = _Analyzer(module).run()
    if cache:
        _memo[module] = facts
    return facts


# ---------------------------------------------------------------------------
# Static-phase query answering
# ---------------------------------------------------------------------------


def decide_pinned(required: object, var: object, value: int) -> Optional[bool]:
    """Decide ``feasible([required, var == value])`` without the solver.

    The static phase's intermediate-goal derivation pins a condition
    variable to a reaching definition's constant and asks the solver
    whether the branch condition can still hold.  When ``required``
    mentions no variable besides ``var``, substituting the pinned constant
    reduces the query to concrete evaluation -- the constant-propagation
    half of the abstract domain, applied to one query.  Returns ``True`` /
    ``False`` when the answer is provably identical to the solver's, and
    ``None`` when it is not (another variable appears, or evaluation traps)
    so the caller must fall back to a real query.
    """
    from ..solver.expr import Expr, Var, evaluate

    if not isinstance(required, Expr) or not isinstance(var, Var):
        return None
    if required.variables() - {var}:
        return None  # a second variable: pinning one does not decide it
    if not (var.lo <= value <= var.hi):
        return False  # the pin itself is unsatisfiable
    try:
        return bool(evaluate(required, {var.name: value}))
    except ZeroDivisionError:
        return None
