"""Critical edges and intermediate goals (paper section 3.2).

A *critical edge* is a CFG edge that must be traversed on every path to the
goal.  ESD finds them by walking backward from the goal block: at each step
it takes the unique predecessor; if that predecessor branches and only one of
its outgoing edges can lead to the goal, the edge is critical.  The walk
stops at the first block with multiple predecessors (the paper notes its
prototype explores a single predecessor chain).

An *intermediate goal* is a basic block that must execute for a critical
edge to be traversable: a block containing a reaching definition that can
give the branch condition its required value.  Where several definitions
qualify, the alternatives form a disjunctive goal set.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import ir
from ..ir import InstrRef
from ..solver import Solver
from ..solver.expr import Atom, Var, binop, negate, truthy
from .absint import analyze_module, decide_pinned
from .cfg import CFG
from .reachdefs import Definition, ReachingDefs, VarId
from .reconstruct import reconstruct_condition


@dataclass(frozen=True, slots=True)
class CriticalEdge:
    """The branch at ``branch`` must take ``required_target``."""

    branch: InstrRef
    required_target: str
    other_target: str
    # True if the required target is the then-edge (condition must be true).
    condition_value: bool


@dataclass(frozen=True, slots=True)
class IntermediateGoal:
    """A disjunctive set of blocks, one of which must execute (a "must have"
    anchor for the guided search)."""

    alternatives: tuple[InstrRef, ...]
    variable: str
    edge: CriticalEdge


def find_critical_edges(module: ir.Module, goal: InstrRef) -> list[CriticalEdge]:
    """Walk the unique-predecessor chain backward from the goal block.

    Every block on the chain lies on *every* path to the goal (each chain
    node's only way in is the next chain node, so no path can splice into
    the middle).  Consequently, when a chain node ends in a conditional
    branch, the edge that stays on the chain must eventually be taken: even
    if the other side can loop back toward the goal, it re-enters the chain
    above this block and must branch here again.  That "must eventually
    evaluate this way" is exactly the property the intermediate-goal
    derivation needs.
    """
    func = module.functions[goal.function]
    cfg = CFG(func)
    edges: list[CriticalEdge] = []
    visited = {goal.block}
    node = goal.block
    while True:
        preds = [p for p in cfg.preds.get(node, []) if p != node]
        if len(preds) != 1:
            break  # paper: the walk explores a single-predecessor chain only
        pred = preds[0]
        if pred in visited:
            break
        visited.add(pred)
        block = func.blocks[pred]
        term = block.terminator
        if isinstance(term, ir.CondBr):
            condition_value = term.then_target == node
            other = term.else_target if condition_value else term.then_target
            edges.append(
                CriticalEdge(
                    branch=InstrRef(goal.function, pred, len(block.instrs)),
                    required_target=node,
                    other_target=other,
                    condition_value=condition_value,
                )
            )
        node = pred
    return edges


def find_intermediate_goals(
    module: ir.Module,
    goal: InstrRef,
    solver: Solver | None = None,
    max_depth: int = 3,
    *,
    static_eval: bool = False,
) -> list[IntermediateGoal]:
    """Intermediate goals for ``goal``, derived *recursively*.

    Level 0 finds the blocks whose definitions can satisfy the critical
    edges guarding the goal.  Each such block is itself a "must execute"
    target, so its own critical edges are analyzed in turn (e.g. a deadlock
    guarded by ``gate == 1``, where ``gate = 1`` executes only under
    ``flag0 == 1 && flag1 == 1``, yields goals for the flag definitions
    too).  This realizes the paper's "break down the search for a path to
    the final goal into smaller searches for sub-paths from one
    intermediate goal to the next" across procedure boundaries.

    With ``static_eval`` on, pinned-constant feasibility probes that the
    abstract interpreter's constant domain can decide are answered without
    the solver (counted in ``solver.stats.static_answers``), and -- when
    the facts are ``pruning_sound`` -- definitions in blocks the abstract
    interpreter proved unreachable are not offered as alternatives (a
    store that can never execute can never satisfy the edge).  The pinned
    decision procedure only answers when its verdict is provably the
    solver's; the dead-definition filter can shrink the goal set, which is
    why callers memoize per flag value.
    """
    solver = solver or Solver()
    goals: list[IntermediateGoal] = []
    seen_targets: set[InstrRef] = {goal}
    seen_alternatives: set[tuple[InstrRef, ...]] = set()
    frontier = [goal]
    for _ in range(max_depth):
        next_frontier: list[InstrRef] = []
        for target in frontier:
            for ig in _direct_intermediate_goals(module, target, solver, static_eval):
                if ig.alternatives in seen_alternatives:
                    continue
                seen_alternatives.add(ig.alternatives)
                goals.append(ig)
                # Single-alternative goals are unconditional "must execute"
                # blocks: recurse into what guards them.  (Disjunctive sets
                # are not must-blocks individually, so recursion stops.)
                if len(ig.alternatives) == 1:
                    ref = ig.alternatives[0]
                    if ref not in seen_targets:
                        seen_targets.add(ref)
                        next_frontier.append(ref)
        if not next_frontier:
            break
        frontier = next_frontier
    return goals


def _direct_intermediate_goals(
    module: ir.Module,
    goal: InstrRef,
    solver: Solver,
    static_eval: bool = False,
) -> list[IntermediateGoal]:
    """Blocks containing reaching definitions that can satisfy each critical
    edge's branch condition.

    For each variable in a reconstructible branch condition: a definition
    storing a constant qualifies if the condition is satisfiable with that
    constant substituted (checked with the solver); a definition storing a
    non-constant value cannot be excluded statically and also qualifies.  If
    the variable's *initial value* already satisfies the condition, no goal
    is emitted for it (nothing must execute).
    """
    edges = find_critical_edges(module, goal)
    goals: list[IntermediateGoal] = []
    reachdefs = ReachingDefs(module, goal.function)
    dead_blocks: dict[str, frozenset[str]] = {}
    if static_eval:
        facts = analyze_module(module)
        if facts.pruning_sound:
            dead_blocks = dict(facts.unreachable)

    for edge in edges:
        block = module.functions[goal.function].blocks[edge.branch.block]
        term = block.terminator
        assert isinstance(term, ir.CondBr)
        if not isinstance(term.cond, ir.Reg):
            continue
        recon = reconstruct_condition(module, goal.function, term.cond.name)
        if recon is None:
            continue
        required = truthy(recon.expr) if edge.condition_value else negate(recon.expr)
        if isinstance(required, int):
            continue

        local_defs = reachdefs.reaching_at(edge.branch)
        for var_id, var in recon.variables.items():
            if var_id[0] == "global":
                defs = reachdefs.global_definitions(var_id[1])
                initial = _global_initial(module, var_id[1])
            else:
                defs = local_defs.get(var_id, set())
                initial = 0
            if initial is not None and _pinned_feasible(
                solver, required, var, initial, static_eval
            ):
                continue  # no store needed for this variable
            alternatives = _qualifying_blocks(
                solver, required, var, defs, static_eval, dead_blocks
            )
            if alternatives:
                goals.append(
                    IntermediateGoal(tuple(sorted(alternatives)), _var_label(var_id), edge)
                )
    return goals


def _qualifying_blocks(
    solver: Solver,
    required: Atom,
    var: Var,
    defs: set[Definition],
    static_eval: bool = False,
    dead_blocks: dict[str, frozenset[str]] | None = None,
) -> set[InstrRef]:
    blocks: set[InstrRef] = set()
    for definition in defs:
        if dead_blocks and definition.ref.block in dead_blocks.get(
            definition.ref.function, frozenset()
        ):
            continue  # the defining block provably never executes
        constant = definition.constant
        if constant is None:
            qualifies = True  # statically unknown value: cannot exclude
        else:
            qualifies = _pinned_feasible(solver, required, var, constant, static_eval)
        if qualifies:
            blocks.add(InstrRef(definition.ref.function, definition.ref.block, 0))
    return blocks


def _pinned_feasible(
    solver: Solver,
    required: Atom,
    var: Var,
    value: int,
    static_eval: bool,
) -> bool:
    """``feasible([required, var == value])``, answered by the abstract
    interpreter's constant domain when that is provably equivalent."""
    if static_eval:
        verdict = decide_pinned(required, var, value)
        if verdict is not None:
            solver.stats.static_answers += 1
            return verdict
    return solver.feasible([required, binop("==", var, value)])


def _global_initial(module: ir.Module, name: str) -> int | None:
    var = module.globals.get(name)
    if var is None or var.size != 1:
        return None
    return var.init[0] if var.init else 0


def _var_label(var_id: VarId) -> str:
    return var_id[-1]
