"""Compositional per-function summaries, bottom-up over the call graph.

Each function gets one :class:`FunctionSummary` -- the globals it (or any
transitive callee) may write (``mods``) or read (``refs``), whether an
indirect store makes its write effect unknowable (``writes_unknown``), the
interval of values it may return (from the abstract interpreter's converged
summaries), and the set of functions it may transitively call.  Summaries
compose: a caller's effect is its own instructions' effect joined with its
callees' summaries, so the whole module is summarized in one bottom-up pass
over the call graph's strongly connected components (Tarjan; members of one
SCC share the union of their effects).

Unlike the abstract interpreter's internal write sets, stores through
registers are classified by a per-function pointer-taint pass: an address
computed only from local ``Alloc`` results can never alias a global, so
stores through it do not touch the global state.  Anything else (parameters,
loaded pointers, call results, ``GlobalRef`` arithmetic) conservatively may.

Consumers: the backward necessary-precondition inference (:mod:`.wp`) uses
``mods`` to kill conditions across calls, goal-directed reachability
(:mod:`.reach`) uses the transitive callee sets, and the crash slicer uses
``mods``/``refs`` to keep irrelevant callees out of slices.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set, Tuple

from .. import ir
from ..solver.intervals import FULL, Interval
from .absint import analyze_module
from .cfg import CallGraph, build_call_graph


@dataclass(frozen=True, slots=True)
class FunctionSummary:
    """The externally observable effect of one function, callees included."""

    name: str
    # Globals possibly written / read by the function or any transitive
    # callee.  When ``writes_unknown`` holds, ``mods`` already contains
    # every global (an indirect store could target any of them).
    mods: FrozenSet[str]
    refs: FrozenSet[str]
    writes_unknown: bool
    reads_unknown: bool
    # Interval of scalar return values (``FULL`` when nothing is known;
    # empty when the function never returns a scalar).
    ret: Interval
    # Functions transitively callable from this one (module functions only).
    callees: FrozenSet[str]

    def may_reach(self, func: str) -> bool:
        """May execution entering this function reach ``func``'s body?"""
        return func == self.name or func in self.callees

    def to_dict(self) -> Dict[str, object]:
        return {
            "mods": sorted(self.mods),
            "refs": sorted(self.refs),
            "writes_unknown": self.writes_unknown,
            "reads_unknown": self.reads_unknown,
            "ret": None if self.ret.empty else [self.ret.lo, self.ret.hi],
            "callees": sorted(self.callees),
        }


@dataclass(slots=True)
class ModuleSummaries:
    """All function summaries for one module, plus call-graph structure."""

    module_name: str
    functions: Dict[str, FunctionSummary]
    # Strongly connected components in bottom-up order: every SCC appears
    # after all SCCs it calls into.
    sccs: List[Tuple[str, ...]]
    # Functions involved in recursion (non-trivial SCC or a self loop).
    recursive: FrozenSet[str]
    # Whether return intervals come from a converged, single-threaded
    # abstract interpretation (otherwise they are FULL).
    sound: bool

    def may_reach(self, caller: str, target: str) -> bool:
        summary = self.functions.get(caller)
        return summary is not None and summary.may_reach(target)

    def to_dict(self) -> Dict[str, object]:
        return {
            "module": self.module_name,
            "sound": self.sound,
            "sccs": [list(scc) for scc in self.sccs],
            "recursive": sorted(self.recursive),
            "functions": {
                name: summary.to_dict()
                for name, summary in sorted(self.functions.items())
            },
        }


# ---------------------------------------------------------------------------
# Pointer taint: which address registers may alias a global
# ---------------------------------------------------------------------------


def _value_may_alias_global(value: ir.Value, unsafe: Set[str]) -> bool:
    if isinstance(value, ir.Reg):
        return value.name in unsafe
    if isinstance(value, ir.Const):
        return False
    # GlobalRef, FuncRef, Hole, anything else: treat as possibly global.
    return True


def global_unsafe_regs(func: ir.Function) -> Set[str]:
    """Registers that may hold a pointer into a global.

    A register derived only from local ``Alloc`` results (through ``Gep`` /
    ``Assign`` chains) can never alias a global; everything else --
    parameters, loaded values, call results, ``GlobalRef`` arithmetic --
    conservatively may.
    """
    unsafe: Set[str] = set(func.params)
    changed = True
    while changed:
        changed = False
        for _, instr in func.iter_instructions():
            dst = instr.defined
            if dst is None or dst in unsafe:
                continue
            if isinstance(instr, ir.Alloc):
                risky = False
            elif isinstance(instr, ir.Gep):
                risky = _value_may_alias_global(instr.base, unsafe)
            elif isinstance(instr, ir.Assign):
                risky = _value_may_alias_global(instr.src, unsafe)
            else:
                # Load / Call / BinOp / Intrinsic / ThreadJoin results.
                risky = True
            if risky:
                unsafe.add(dst)
                changed = True
    return unsafe


# ---------------------------------------------------------------------------
# Direct (intraprocedural) effects
# ---------------------------------------------------------------------------


def _direct_effects(
    module: ir.Module, func: ir.Function
) -> Tuple[Set[str], Set[str], bool, bool]:
    """(mods, refs, writes_unknown, reads_unknown) of ``func`` alone."""
    all_globals = set(module.globals)
    unsafe = global_unsafe_regs(func)
    mods: Set[str] = set()
    refs: Set[str] = set()
    writes_unknown = False
    reads_unknown = False
    for _, instr in func.iter_instructions():
        if isinstance(instr, ir.Store):
            addr = instr.addr
            if isinstance(addr, ir.GlobalRef):
                mods.add(addr.name)
            elif not (isinstance(addr, ir.Reg) and addr.name not in unsafe):
                writes_unknown = True
        elif isinstance(instr, ir.Load):
            addr = instr.addr
            if isinstance(addr, ir.GlobalRef):
                refs.add(addr.name)
            elif not (isinstance(addr, ir.Reg) and addr.name not in unsafe):
                reads_unknown = True
        elif isinstance(instr, ir.Intrinsic):
            # Environment calls may fill caller-provided buffers, which can
            # alias globals through escaped pointers.
            if any(_value_may_alias_global(arg, unsafe) for arg in instr.args):
                writes_unknown = True
                reads_unknown = True
    if writes_unknown:
        mods = set(all_globals)
    if reads_unknown:
        refs = set(all_globals)
    return mods, refs, writes_unknown, reads_unknown


# ---------------------------------------------------------------------------
# Tarjan SCCs (iterative) in bottom-up (callee-first) order
# ---------------------------------------------------------------------------


def _tarjan_sccs(
    nodes: List[str], edges: Dict[str, Set[str]]
) -> List[Tuple[str, ...]]:
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[Tuple[str, ...]] = []
    counter = 0

    for root in nodes:
        if root in index:
            continue
        work: List[Tuple[str, int]] = [(root, 0)]
        while work:
            node, child_index = work[-1]
            if child_index == 0:
                index[node] = lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            children = sorted(edges.get(node, ()))
            for position in range(child_index, len(children)):
                child = children[position]
                if child not in index:
                    work[-1] = (node, position + 1)
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                members: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    members.append(member)
                    if member == node:
                        break
                sccs.append(tuple(sorted(members)))
    # Tarjan emits an SCC only after every SCC reachable from it, so the
    # emission order is already callee-first (bottom-up).
    return sccs


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def _build(module: ir.Module, callgraph: CallGraph) -> ModuleSummaries:
    facts = analyze_module(module)
    ret_intervals = facts.ret_intervals if facts.pruning_sound else {}
    edges = {
        name: {c for c in callgraph.callees.get(name, ()) if c in module.functions}
        for name in module.functions
    }
    sccs = _tarjan_sccs(sorted(module.functions), edges)

    recursive: Set[str] = set()
    for scc in sccs:
        if len(scc) > 1 or scc[0] in edges.get(scc[0], ()):
            recursive.update(scc)

    summaries: Dict[str, FunctionSummary] = {}
    closures: Dict[str, FrozenSet[str]] = {}
    for scc in sccs:
        mods: Set[str] = set()
        refs: Set[str] = set()
        writes_unknown = False
        reads_unknown = False
        callees: Set[str] = set()
        for name in scc:
            d_mods, d_refs, d_wu, d_ru = _direct_effects(
                module, module.functions[name]
            )
            mods |= d_mods
            refs |= d_refs
            writes_unknown |= d_wu
            reads_unknown |= d_ru
            for callee in edges.get(name, ()):
                callees.add(callee)
                if callee not in scc:
                    callees |= closures[callee]
                    below = summaries[callee]
                    mods |= below.mods
                    refs |= below.refs
                    writes_unknown |= below.writes_unknown
                    reads_unknown |= below.reads_unknown
        if len(scc) > 1:
            callees.update(scc)
        closure = frozenset(callees)
        for name in scc:
            closures[name] = closure
            summaries[name] = FunctionSummary(
                name=name,
                mods=frozenset(mods),
                refs=frozenset(refs),
                writes_unknown=writes_unknown,
                reads_unknown=reads_unknown,
                ret=ret_intervals.get(name, FULL),
                callees=closure,
            )

    return ModuleSummaries(
        module_name=module.name,
        functions=summaries,
        sccs=sccs,
        recursive=frozenset(recursive),
        sound=facts.pruning_sound,
    )


_memo: "weakref.WeakKeyDictionary[ir.Module, ModuleSummaries]" = (
    weakref.WeakKeyDictionary()
)


def summarize_module(module: ir.Module, *, cache: bool = True) -> ModuleSummaries:
    """Build (memoized) compositional summaries for every function."""
    if cache:
        cached = _memo.get(module)
        if cached is not None:
            return cached
    summaries = _build(module, build_call_graph(module))
    if cache:
        _memo[module] = summaries
    return summaries
