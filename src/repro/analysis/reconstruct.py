"""Reconstruct a branch condition as a symbolic expression over named
variables.

Used by the intermediate-goal analysis (paper section 3.2): given the
register a ``CondBr`` tests, walk the register def-use chain back to loads of
named variables and constants, producing a solver expression plus the map
from named variables to solver variables.  Conditions that depend on calls,
array cells, or multiply-defined registers are not reconstructible and the
caller skips them (losing precision, never soundness -- intermediate goals
are hints).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .. import ir
from ..solver.expr import Atom, Var, binop, make_var, unop
from .reachdefs import VarId, local_address_regs

INT32_MIN = -(2**31)
INT32_MAX = 2**31 - 1


@dataclass(slots=True)
class ReconstructedCondition:
    expr: Atom
    variables: dict[VarId, Var]


class _Bail(Exception):
    pass


def reconstruct_condition(
    module: ir.Module, func_name: str, reg: str
) -> Optional[ReconstructedCondition]:
    func = module.functions[func_name]
    defs: dict[str, list[ir.Instr]] = {}
    for _, instr in func.iter_instructions():
        name = instr.defined
        if name is not None:
            defs.setdefault(name, []).append(instr)
    addr_regs = local_address_regs(func)
    variables: dict[VarId, Var] = {}

    def var_for(var_id: VarId) -> Var:
        existing = variables.get(var_id)
        if existing is None:
            label = ".".join(var_id)
            existing = make_var(f"$rc.{label}", INT32_MIN, INT32_MAX)
            variables[var_id] = existing
        return existing

    def build_value(value: ir.Value) -> Atom:
        if isinstance(value, ir.Const):
            return value.value
        if isinstance(value, ir.Reg):
            return build_reg(value.name)
        raise _Bail

    def build_reg(name: str) -> Atom:
        instrs = defs.get(name)
        if instrs is None or len(instrs) != 1:
            raise _Bail  # undefined or multiply-defined (e.g. short-circuit temps)
        instr = instrs[0]
        if isinstance(instr, ir.Assign):
            return build_value(instr.src)
        if isinstance(instr, ir.BinOp):
            return binop(instr.op, build_value(instr.lhs), build_value(instr.rhs))
        if isinstance(instr, ir.UnOp):
            return unop(instr.op, build_value(instr.value))
        if isinstance(instr, ir.Load):
            addr = instr.addr
            if isinstance(addr, ir.GlobalRef):
                return var_for(("global", addr.name))
            if isinstance(addr, ir.Reg) and addr.name in addr_regs:
                return var_for(("local", func_name, addr_regs[addr.name]))
        raise _Bail

    try:
        expr = build_reg(reg)
    except _Bail:
        return None
    return ReconstructedCondition(expr, variables)
