"""Static backward slicing from a crash site (the repair-focusing analysis).

A slice answers "which statements could have influenced the crash line?" by
chasing two dependence kinds backward from the criterion:

* **data dependence** -- register def-use chains inside a function, plus a
  root-based may-alias treatment of memory: every address is walked back
  (through ``Assign``/``Gep``/``Call`` results) to a set of *roots* -- a
  global, a named local, a parameter, a callee's return value -- and a load
  depends on every store whose address shares a root;
* **control dependence** -- the classic postdominator formulation: a block
  depends on the branches that decide whether it executes at all.

Interprocedurally the slicer is calling-context closed: touching any
instruction of a function pulls in that function's direct call sites (so the
slice explains *how execution got there*), a used parameter pulls in the
argument computations at those call sites, and a *used* call result pulls in
the callee's return statements (a call whose result is ignored influences
the caller only through memory, which the root analysis covers).  Call
effects on memory use the compositional mod/ref summaries
(:mod:`.summaries`): a load from a global also depends on the indirect
stores of exactly those functions whose summary says they may write it,
rather than every store through every escaped pointer in the module.

The result feeds repair (:mod:`repro.repair`): template instantiation is
restricted to slice members first, and slice membership is a prior added to
the Ochiai/Tarantula suspiciousness ranking.  Both uses tolerate
over-approximation, so every alias decision here errs toward inclusion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional

from .. import ir
from ..ir import InstrRef
from .cfg import CFG

if TYPE_CHECKING:
    from ..coredump import BugReport

# (function, line) -- the same key the localization spectra use.
SliceKey = tuple[str, int]

# A memory root: ('global', name) | ('local', func, reg) | ('param', func, name)
# | ('ret', func) | ('unknown', func).
Root = tuple[str, ...]


@dataclass(slots=True)
class ProgramSlice:
    """The closed backward slice from one or more criterion lines."""

    module_name: str
    criteria: tuple[SliceKey, ...]
    refs: frozenset[InstrRef] = frozenset()
    lines: frozenset[SliceKey] = frozenset()
    functions: frozenset[str] = frozenset()
    # True when no instruction matched any criterion line: the slice fell
    # back to whole-function seeds and callers should not use it to *exclude*
    # anything.
    degenerate: bool = False

    def contains(self, function: str, line: int) -> bool:
        return (function, line) in self.lines

    def contains_ref(self, ref: InstrRef) -> bool:
        return ref in self.refs

    @property
    def usable(self) -> bool:
        """Whether the slice may be used to deprioritize non-members."""
        return bool(self.lines) and not self.degenerate

    def to_dict(self) -> dict:
        return {
            "module": self.module_name,
            "criteria": [[f, ln] for f, ln in self.criteria],
            "degenerate": self.degenerate,
            "functions": sorted(self.functions),
            "lines": [[f, ln] for f, ln in sorted(self.lines)],
            "instructions": len(self.refs),
        }


def slice_from(
    module: ir.Module, criteria: Iterable[SliceKey]
) -> ProgramSlice:
    """The backward slice from one or more ``(function, line)`` criteria."""
    return _Slicer(module).run(tuple(criteria))


def slice_for_report(
    module: ir.Module, report: "BugReport"
) -> Optional[ProgramSlice]:
    """Slice criteria straight out of a bug report's coredump.

    A crash slices from the faulting instruction; a hang slices from every
    blocked thread's program counter (each blocked lock/wait site is part of
    the failure).  Returns ``None`` when the dump pins no usable site.
    """
    dump = report.coredump
    criteria: list[SliceKey] = []
    if dump.fault_ref is not None:
        line = dump.fault_line
        if line <= 0:
            try:
                line = module.instruction(dump.fault_ref).line
            except KeyError:
                line = 0
        if line > 0:
            criteria.append((dump.fault_ref.function, line))
    for thread in dump.blocked_threads():
        top = thread.top
        if top is not None and top.line > 0:
            criteria.append((top.function, top.line))
    if not criteria:
        return None
    deduped = tuple(dict.fromkeys(criteria))
    return slice_from(module, deduped)


# ---------------------------------------------------------------------------
# Per-function dependence structures
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class _FuncInfo:
    func: ir.Function
    cfg: CFG
    # register name -> refs of instructions defining it
    reg_defs: dict[str, tuple[InstrRef, ...]] = field(default_factory=dict)
    # block label -> terminator refs the block is control dependent on
    control: dict[str, tuple[InstrRef, ...]] = field(default_factory=dict)
    ret_refs: tuple[InstrRef, ...] = ()


def _build_func_info(func: ir.Function) -> _FuncInfo:
    info = _FuncInfo(func=func, cfg=CFG(func))
    defs: dict[str, list[InstrRef]] = {}
    rets: list[InstrRef] = []
    for ref, instr in func.iter_instructions():
        name = instr.defined
        if name is not None:
            defs.setdefault(name, []).append(ref)
        if isinstance(instr, ir.Ret):
            rets.append(ref)
    info.reg_defs = {name: tuple(refs) for name, refs in defs.items()}
    info.ret_refs = tuple(rets)
    info.control = _control_dependence(func, info.cfg)
    return info


def _postdominators(func: ir.Function, cfg: CFG) -> dict[str, set[str]]:
    """Iterative postdominator sets with a virtual exit joining every
    CFG-exit block (and nothing else: blocks trapped in an infinite loop
    keep the full set, which makes them control-dependent on nothing extra)."""
    labels = list(func.blocks)
    full = set(labels)
    exits = {label for label in labels if not cfg.succs.get(label)}
    pdom: dict[str, set[str]] = {}
    for label in labels:
        pdom[label] = {label} if label in exits else set(full)
    changed = True
    while changed:
        changed = False
        for label in labels:
            if label in exits:
                continue
            succs = cfg.succs.get(label, ())
            merged = set(full)
            for succ in succs:
                merged &= pdom[succ]
            merged.add(label)
            if merged != pdom[label]:
                pdom[label] = merged
                changed = True
    return pdom


def _control_dependence(
    func: ir.Function, cfg: CFG
) -> dict[str, tuple[InstrRef, ...]]:
    """Ferrante-style control dependence from postdominator sets: block B
    depends on branch block A when B postdominates some successor of A but
    does not strictly postdominate A itself."""
    pdom = _postdominators(func, cfg)
    deps: dict[str, set[InstrRef]] = {label: set() for label in func.blocks}
    for branch, succs in cfg.succs.items():
        if len(succs) < 2:
            continue
        block = func.blocks[branch]
        term_ref = InstrRef(func.name, branch, len(block.instrs))
        strict = pdom[branch] - {branch}
        candidates: set[str] = set()
        for succ in succs:
            candidates |= pdom[succ]
        for dependent in candidates - strict:
            deps[dependent].add(term_ref)
    return {label: tuple(sorted(refs)) for label, refs in deps.items()}


# ---------------------------------------------------------------------------
# The slicer
# ---------------------------------------------------------------------------


class _Slicer:
    def __init__(self, module: ir.Module) -> None:
        self.module = module
        self._info: dict[str, _FuncInfo] = {}
        self._roots_memo: dict[tuple[str, ir.Value], frozenset[Root]] = {}
        # root -> refs of stores that may write through it (built lazily,
        # module-wide, one pass)
        self._stores_by_root: Optional[dict[Root, list[InstrRef]]] = None
        # function -> refs of its stores through escaped (possibly global-
        # aliasing) pointers; paired with mod summaries in _chase_root.
        self._indirect_stores: Optional[dict[str, list[InstrRef]]] = None
        self._summaries = None
        # callee -> direct call / thread-create sites
        self._call_sites: Optional[dict[str, list[InstrRef]]] = None
        self._sliced: set[InstrRef] = set()
        self._worklist: list[InstrRef] = []
        self._functions_seen: set[str] = set()
        self._roots_done: set[Root] = set()

    # -- lazy module indexes -------------------------------------------------

    def info(self, name: str) -> _FuncInfo:
        cached = self._info.get(name)
        if cached is None:
            cached = _build_func_info(self.module.functions[name])
            self._info[name] = cached
        return cached

    def call_sites(self, callee: str) -> list[InstrRef]:
        if self._call_sites is None:
            sites: dict[str, list[InstrRef]] = {}
            for func in self.module.functions.values():
                for ref, instr in func.iter_instructions():
                    target: Optional[str] = None
                    if isinstance(instr, ir.Call) and isinstance(
                        instr.callee, ir.FuncRef
                    ):
                        target = instr.callee.name
                    elif isinstance(instr, ir.ThreadCreate) and isinstance(
                        instr.func, ir.FuncRef
                    ):
                        target = instr.func.name
                    if target is not None:
                        sites.setdefault(target, []).append(ref)
            self._call_sites = sites
        return self._call_sites.get(callee, [])

    def stores_by_root(self) -> dict[Root, list[InstrRef]]:
        if self._stores_by_root is None:
            index: dict[Root, list[InstrRef]] = {}
            for func in self.module.functions.values():
                for ref, instr in func.iter_instructions():
                    if not isinstance(instr, ir.Store):
                        continue
                    for root in self.value_roots(func.name, instr.addr):
                        index.setdefault(root, []).append(ref)
            self._stores_by_root = index
        return self._stores_by_root

    # -- root analysis -------------------------------------------------------

    def value_roots(self, func_name: str, value: ir.Value) -> frozenset[Root]:
        """The memory roots a value (used as an address) may point into."""
        return self._roots(func_name, value, set())

    def _roots(
        self, func_name: str, value: ir.Value, active: set
    ) -> frozenset[Root]:
        if isinstance(value, ir.GlobalRef):
            return frozenset({("global", value.name)})
        if isinstance(value, (ir.Const, ir.FuncRef, ir.Hole)):
            return frozenset()
        if not isinstance(value, ir.Reg):
            return frozenset({("unknown", func_name)})
        key = (func_name, value)
        memo = self._roots_memo.get(key)
        if memo is not None:
            return memo
        if key in active:
            return frozenset()  # cyclic chain (loop-carried pointer): settled below
        active.add(key)
        info = self.info(func_name)
        roots: set[Root] = set()
        defs = info.reg_defs.get(value.name, ())
        if not defs and value.name in info.func.params:
            roots.add(("param", func_name, value.name))
        for ref in defs:
            instr = self.module.instruction(ref)
            if isinstance(instr, ir.Alloc):
                roots.add(("local", func_name, value.name))
            elif isinstance(instr, ir.Assign):
                roots |= self._roots(func_name, instr.src, active)
            elif isinstance(instr, ir.Gep):
                roots |= self._roots(func_name, instr.base, active)
            elif isinstance(instr, ir.Call) and isinstance(
                instr.callee, ir.FuncRef
            ):
                roots.add(("ret", instr.callee.name))
            elif isinstance(instr, (ir.Load, ir.Intrinsic, ir.Call)):
                roots.add(("unknown", func_name))
            elif isinstance(instr, (ir.BinOp, ir.UnOp)):
                for op in instr.operands():
                    roots |= self._roots(func_name, op, active)
        active.discard(key)
        result = frozenset(roots)
        self._roots_memo[key] = result
        return result

    # -- worklist ------------------------------------------------------------

    def add(self, ref: InstrRef) -> None:
        if ref not in self._sliced:
            self._sliced.add(ref)
            self._worklist.append(ref)

    def run(self, criteria: tuple[SliceKey, ...]) -> ProgramSlice:
        degenerate = False
        for function, line in criteria:
            func = self.module.functions.get(function)
            if func is None:
                degenerate = True
                continue
            matched = False
            for ref, instr in func.iter_instructions():
                if instr.line == line:
                    self.add(ref)
                    matched = True
            if not matched:
                # No instruction carries the criterion line (synthetic or
                # stale): seed the whole function so the slice still covers
                # the failure's neighborhood, but mark it unusable for
                # exclusion decisions.
                degenerate = True
                for ref, _ in func.iter_instructions():
                    self.add(ref)

        while self._worklist:
            self._process(self._worklist.pop())

        lines = {
            (ref.function, self.module.instruction(ref).line)
            for ref in self._sliced
        }
        return ProgramSlice(
            module_name=self.module.name,
            criteria=criteria,
            refs=frozenset(self._sliced),
            lines=frozenset(k for k in lines if k[1] > 0),
            functions=frozenset(ref.function for ref in self._sliced),
            degenerate=degenerate,
        )

    def _process(self, ref: InstrRef) -> None:
        info = self.info(ref.function)
        instr = self.module.instruction(ref)

        # Calling context: the first touch of a function pulls in every
        # direct call site (how execution reached this code at all).
        if ref.function not in self._functions_seen:
            self._functions_seen.add(ref.function)
            for site in self.call_sites(ref.function):
                self.add(site)

        # Control dependence: the branches deciding this block runs.
        for term_ref in info.control.get(ref.block, ()):
            self.add(term_ref)

        # Data dependence through registers.
        for op in instr.operands():
            self._chase_value(info, op)

        # Memory dependence: a load depends on the stores sharing a root.
        if isinstance(instr, ir.Load):
            for root in self.value_roots(ref.function, instr.addr):
                self._chase_root(root)

        # A call whose *result is used* depends on what the callee returns;
        # with the result ignored the callee reaches the caller only through
        # memory, which the root analysis (plus mod summaries) covers.
        if (
            isinstance(instr, ir.Call)
            and instr.dst is not None
            and isinstance(instr.callee, ir.FuncRef)
        ):
            callee = instr.callee.name
            if callee in self.module.functions:
                for ret_ref in self.info(callee).ret_refs:
                    self.add(ret_ref)

    def _chase_value(self, info: _FuncInfo, value: ir.Value) -> None:
        if not isinstance(value, ir.Reg):
            return
        defs = info.reg_defs.get(value.name, ())
        for def_ref in defs:
            self.add(def_ref)
        if not defs and value.name in info.func.params:
            # Parameter: the argument computations live at the call sites,
            # which the calling-context closure adds (processing a Call ref
            # chases every argument's definition chain).
            for site in self.call_sites(info.func.name):
                self.add(site)

    def indirect_store_sites(self) -> dict[str, list[InstrRef]]:
        """Per function, its stores through pointers that may alias a global
        (the stores a mod summary's ``writes_unknown`` is made of)."""
        if self._indirect_stores is None:
            from .summaries import global_unsafe_regs

            index: dict[str, list[InstrRef]] = {}
            for func in self.module.functions.values():
                unsafe = global_unsafe_regs(func)
                for ref, instr in func.iter_instructions():
                    if not isinstance(instr, ir.Store):
                        continue
                    addr = instr.addr
                    if isinstance(addr, ir.GlobalRef):
                        continue  # direct: already indexed under its root
                    if isinstance(addr, ir.Reg) and addr.name not in unsafe:
                        continue  # provably local-only pointer
                    index.setdefault(func.name, []).append(ref)
            self._indirect_stores = index
        return self._indirect_stores

    def summaries(self):
        if self._summaries is None:
            from .summaries import summarize_module

            self._summaries = summarize_module(self.module)
        return self._summaries

    def _chase_root(self, root: Root) -> None:
        if root in self._roots_done:
            return
        self._roots_done.add(root)
        for store_ref in self.stores_by_root().get(root, ()):
            self.add(store_ref)
        if root[0] == "global":
            # Indirect writes: only functions whose mod summary says they
            # may write this global contribute their escaped-pointer stores
            # (the summaries are what keeps every other callee out).
            name = root[1]
            for func_name, refs in self.indirect_store_sites().items():
                summary = self.summaries().functions.get(func_name)
                if summary is None or name not in summary.mods:
                    continue
                for store_ref in refs:
                    self.add(store_ref)
        if root[0] == "ret":
            # Loading through a returned pointer: stores into the callee's
            # returned object alias through the roots of its return values.
            callee = root[1]
            func = self.module.functions.get(callee)
            if func is None:
                return
            for ret_ref in self.info(callee).ret_refs:
                self.add(ret_ref)
                ret = self.module.instruction(ret_ref)
                if isinstance(ret, ir.Ret) and ret.value is not None:
                    for sub in self.value_roots(callee, ret.value):
                        self._chase_root(sub)
