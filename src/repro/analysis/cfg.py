"""Control-flow graphs and the call graph (paper section 3.2).

The CFG is per-function and block-granular.  The call graph resolves direct
calls exactly and approximates indirect calls with an address-taken analysis:
any function whose address escapes (a ``FuncRef`` used outside a direct call)
is a possible target of any indirect call with a matching arity -- the
paper's "resolves as many function pointers as possible ... may lose
precision" compromise.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from .. import ir


class CFG:
    """Successor/predecessor maps for one function."""

    def __init__(self, func: ir.Function) -> None:
        self.function = func
        self.succs: dict[str, tuple[str, ...]] = {}
        self.preds: dict[str, list[str]] = {label: [] for label in func.blocks}
        for label, block in func.blocks.items():
            targets = block.terminator.successors() if block.terminator else ()
            self.succs[label] = targets
            for target in targets:
                self.preds[target].append(label)

    def reachable_from_entry(self) -> set[str]:
        return self._reach(self.function.entry, self.succs)

    def blocks_reaching(self, target: str) -> set[str]:
        """All blocks with an intra-procedural path to ``target`` (inclusive)."""
        preds_as_succs = {label: tuple(p) for label, p in self.preds.items()}
        return self._reach(target, preds_as_succs)

    @staticmethod
    def _reach(start: str, edges: dict[str, tuple[str, ...]]) -> set[str]:
        seen = {start}
        queue = deque([start])
        while queue:
            label = queue.popleft()
            for nxt in edges.get(label, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    queue.append(nxt)
        return seen


@dataclass(slots=True)
class CallSite:
    """A call instruction and its possible targets."""

    ref: ir.InstrRef
    targets: tuple[str, ...]
    direct: bool


@dataclass(slots=True)
class CallGraph:
    callees: dict[str, set[str]] = field(default_factory=dict)
    callers: dict[str, set[str]] = field(default_factory=dict)
    # (func, block) -> [(index, targets, direct)]
    sites_by_block: dict[tuple[str, str], list[CallSite]] = field(default_factory=dict)
    address_taken: dict[int, tuple[str, ...]] = field(default_factory=dict)

    def call_sites(self, func: str, label: str) -> list[CallSite]:
        return self.sites_by_block.get((func, label), [])


def address_taken_functions(module: ir.Module) -> dict[int, tuple[str, ...]]:
    """Functions whose address escapes, grouped by arity."""
    taken: set[str] = set()
    for func in module.functions.values():
        for _, instr in func.iter_instructions():
            operands = instr.operands()
            if isinstance(instr, ir.Call):
                # A FuncRef used as the callee is a direct call, not an escape;
                # a FuncRef passed as an argument escapes.
                operands = tuple(instr.args)
            if isinstance(instr, ir.ThreadCreate):
                operands = (instr.arg,)  # the start routine is "called", arg may escape
            for op in operands:
                if isinstance(op, ir.FuncRef):
                    taken.add(op.name)
    by_arity: dict[int, list[str]] = {}
    for name in sorted(taken):
        arity = len(module.functions[name].params)
        by_arity.setdefault(arity, []).append(name)
    return {arity: tuple(names) for arity, names in by_arity.items()}


def build_call_graph(module: ir.Module) -> CallGraph:
    graph = CallGraph()
    for name in module.functions:
        graph.callees[name] = set()
        graph.callers[name] = set()
    graph.address_taken = address_taken_functions(module)

    for func in module.functions.values():
        for ref, instr in func.iter_instructions():
            targets: tuple[str, ...] = ()
            direct = True
            if isinstance(instr, ir.Call):
                if isinstance(instr.callee, ir.FuncRef):
                    targets = (instr.callee.name,)
                else:
                    direct = False
                    targets = graph.address_taken.get(len(instr.args), ())
            elif isinstance(instr, ir.ThreadCreate):
                if isinstance(instr.func, ir.FuncRef):
                    targets = (instr.func.name,)
                else:
                    direct = False
                    targets = graph.address_taken.get(1, ())
            else:
                continue
            site = CallSite(ref, targets, direct)
            graph.sites_by_block.setdefault((func.name, ref.block), []).append(site)
            for target in targets:
                if target in module.functions:
                    graph.callees[func.name].add(target)
                    graph.callers[target].add(func.name)
    return graph


def reachable_functions(module: ir.Module, graph: CallGraph, root: str = "main") -> set[str]:
    """Functions reachable from ``root`` through the call graph (plus thread
    start routines, which the call graph already includes as callees)."""
    seen = {root}
    queue = deque([root])
    while queue:
        name = queue.popleft()
        for callee in graph.callees.get(name, ()):
            if callee not in seen:
                seen.add(callee)
                queue.append(callee)
    return seen
