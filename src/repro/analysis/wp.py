"""Backward necessary-precondition inference from goal sites.

For every block of every function that may reach the goal, compute a
condition any goal-reaching execution must satisfy *at that block's entry*
(before returning out of the function -- the interprocedural "return then
reach the goal from the caller" escape is the consumer's job to check, see
:meth:`NecessaryConditions.condition_at` and the executor's reach-escape
test).  A condition is a conjunction of interval constraints over the
stable memory cells the IR can track syntactically -- size-1 globals and
non-escaping scalar stack locals -- or the sentinel :data:`FALSE` ("no
execution from here reaches the goal").

The inference is the generic backward dataflow (:mod:`.dataflow`) with:

* **seeds** at goal sites (condition ``TRUE``) and at call sites into
  functions that may reach the goal (the callee's entry condition,
  restricted to globals) -- interprocedural propagation is bottom-up over
  the call graph using :mod:`.summaries`;
* **join** = disjunction over goal-reaching paths, over-approximated as
  key-intersection with interval hull (``FALSE`` is the identity);
* **transfer** = backward kill/discharge per instruction: a store of a
  constant inside the condition's interval *discharges* the key, a store
  of a constant outside it makes the path ``FALSE``, any other write to
  the key (including calls that may write the global, per the callee's
  mod summary) drops the key;
* **edge refinement** = conditional branches whose condition traces to an
  unclobbered load of a tracked cell against a constant constrain the key
  along each edge (the same syntactic discipline the abstract interpreter
  uses), and absint-decided dead edges propagate nothing.

Soundness: every transfer/join weakens toward ``TRUE``, so the least
fixpoint over-approximates the exact necessary condition.  The solver's
visit cap can stop *before* a fixpoint, which would be unsound here, so a
verification pass re-applies every equation once and discards a function's
conditions unless the solution is a genuine post-fixpoint.  Consumers must
additionally gate on ``ModuleFacts.pruning_sound`` (thread interference
invalidates the sequential reasoning, exactly as for absint's facts).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple, Union

from .. import ir
from ..solver.intervals import FULL, HI_MAX, LO_MIN, Interval
from .absint import ModuleFacts, _tracked_locals, analyze_module
from .cfg import CFG, CallGraph, build_call_graph
from .dataflow import BACKWARD, DataflowProblem, Solution, solve
from .reach import GoalReach, _dead_edges, compute_reach
from .summaries import (
    ModuleSummaries,
    _value_may_alias_global,
    global_unsafe_regs,
    summarize_module,
)

# One tracked memory cell: ('global', '', name) or ('local', func, alloc_reg).
VarKey = Tuple[str, str, str]


class _FalseCond:
    """Sentinel: no execution from this point reaches the goal."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "FALSE"


FALSE = _FalseCond()

# A necessary condition: FALSE, or a conjunction {cell: allowed interval}.
# The empty dict is TRUE (no information).
Cond = Union[_FalseCond, Dict[VarKey, Interval]]


def cond_join(conds: Sequence[Cond]) -> Cond:
    """Disjunction, over-approximated: common keys, interval hulls."""
    real = [c for c in conds if not isinstance(c, _FalseCond)]
    if not real:
        return FALSE
    keys = set(real[0])
    for cond in real[1:]:
        keys &= set(cond)
    out: Dict[VarKey, Interval] = {}
    for key in keys:
        hull = real[0][key]
        for cond in real[1:]:
            hull = hull.union(cond[key])
        if hull != FULL:
            out[key] = hull
    return out


def cond_and_key(cond: Cond, key: VarKey, interval: Interval) -> Cond:
    """Conjoin one interval constraint; FALSE when it contradicts."""
    if isinstance(cond, _FalseCond):
        return cond
    current = cond.get(key, FULL)
    refined = current.intersect(interval)
    if refined.empty:
        return FALSE
    out = dict(cond)
    out[key] = refined
    return out


def cond_widen(old: Cond, new: Cond) -> Cond:
    """Extrapolate: keep shared keys, jump growing bounds to the extremes."""
    if isinstance(old, _FalseCond):
        return new
    if isinstance(new, _FalseCond):
        return old
    out: Dict[VarKey, Interval] = {}
    for key, new_iv in new.items():
        old_iv = old.get(key)
        if old_iv is None:
            continue
        lo = new_iv.lo if new_iv.lo >= old_iv.lo else LO_MIN
        hi = new_iv.hi if new_iv.hi <= old_iv.hi else HI_MAX
        if lo == LO_MIN and hi == HI_MAX:
            continue
        out[key] = Interval(lo, hi)
    return out


def cond_equal(a: Cond, b: Cond) -> bool:
    if isinstance(a, _FalseCond) or isinstance(b, _FalseCond):
        return a is b
    return a == b


def cond_implied_by(strong: Cond, weak: Cond) -> bool:
    """Is ``weak`` implied by ``strong`` (strong's executions ⊆ weak's)?"""
    if isinstance(strong, _FalseCond):
        return True
    if isinstance(weak, _FalseCond):
        return False
    for key, weak_iv in weak.items():
        strong_iv = strong.get(key)
        if strong_iv is None:
            return False
        refined = strong_iv.intersect(weak_iv)
        if refined != strong_iv:
            return False
    return True


def _globals_only(cond: Cond) -> Cond:
    if isinstance(cond, _FalseCond):
        return cond
    return {key: iv for key, iv in cond.items() if key[0] == "global"}


def _drop_globals(cond: Cond) -> Cond:
    if isinstance(cond, _FalseCond):
        return cond
    out = {key: iv for key, iv in cond.items() if key[0] != "global"}
    return out if len(out) != len(cond) else cond


def _render_cond(cond: Cond) -> object:
    if isinstance(cond, _FalseCond):
        return False
    if not cond:
        return True
    return {
        (f"@{name}" if kind == "global" else f"{func}:{name}"):
            [iv.lo, iv.hi]
        for (kind, func, name), iv in sorted(cond.items())
    }


# ---------------------------------------------------------------------------
# Branch-condition tracing (syntactic, absint's unclobbered-load discipline)
# ---------------------------------------------------------------------------

_CMP_OPS = frozenset({"==", "!=", "<", "<=", ">", ">="})
_NEGATED = {
    "==": "!=", "!=": "==", "<": ">=", ">=": "<", ">": "<=", "<=": ">",
    "truthy": "falsy", "falsy": "truthy",
}
_SWAPPED = {"==": "==", "!=": "!=", "<": ">", ">": "<", "<=": ">=", ">=": "<="}


def _edge_interval(op: str, const: int, then_edge: bool) -> Optional[Interval]:
    """Allowed interval for the traced cell along one CondBr edge."""
    if not then_edge:
        op = _NEGATED[op]
    if op == "==":
        return Interval(const, const)
    if op == "<":
        return Interval(LO_MIN, const - 1)
    if op == "<=":
        return Interval(LO_MIN, const)
    if op == ">":
        return Interval(const + 1, HI_MAX)
    if op == ">=":
        return Interval(const, HI_MAX)
    if op == "falsy":
        return Interval(0, 0)
    return None  # '!=' / 'truthy': not a single interval


class _FunctionContext:
    """Per-function syntactic context shared by transfer and tracing."""

    __slots__ = ("module", "func", "tracked", "unsafe")

    def __init__(
        self, module: ir.Module, func: ir.Function, unsafe: Set[str]
    ) -> None:
        self.module = module
        self.func = func
        self.tracked: Dict[str, str] = _tracked_locals(func)
        self.unsafe = unsafe

    def load_key(self, instr: ir.Load) -> Optional[VarKey]:
        addr = instr.addr
        if isinstance(addr, ir.GlobalRef):
            var = self.module.globals.get(addr.name)
            if var is not None and var.size == 1:
                return ("global", "", addr.name)
            return None
        if isinstance(addr, ir.Reg) and addr.name in self.tracked:
            return ("local", self.func.name, addr.name)
        return None

    def store_key(self, instr: ir.Store) -> Optional[VarKey]:
        addr = instr.addr
        if isinstance(addr, ir.GlobalRef):
            return ("global", "", addr.name)
        if isinstance(addr, ir.Reg) and addr.name in self.tracked:
            return ("local", self.func.name, addr.name)
        return None

    def clobbered(
        self, block: ir.Block, start: int, key: VarKey
    ) -> bool:
        """May instructions [start, end of block) overwrite ``key``?"""
        for index in range(start, len(block.instrs)):
            instr = block.instrs[index]
            if isinstance(instr, ir.Store):
                skey = self.store_key(instr)
                if skey == key:
                    return True
                if skey is None and key[0] == "global":
                    addr = instr.addr
                    safe_local = (
                        isinstance(addr, ir.Reg)
                        and addr.name not in self.unsafe
                    )
                    if not safe_local:
                        return True
            elif isinstance(
                instr, (ir.Call, ir.Intrinsic, ir.ThreadCreate, *ir.SYNC_INSTRS)
            ) and key[0] == "global":
                return True
        return False


def _resolve_term(
    ctx: _FunctionContext, block: ir.Block, upto: int, value: ir.Value
) -> Union[VarKey, int, None]:
    """Resolve a comparison operand to a constant or an unclobbered cell."""
    for _ in range(32):
        if isinstance(value, ir.Const):
            return value.value if isinstance(value.value, int) else None
        if not isinstance(value, ir.Reg):
            return None
        def_index = None
        for index in range(upto - 1, -1, -1):
            if block.instrs[index].defined == value.name:
                def_index = index
                break
        if def_index is None:
            return None
        instr = block.instrs[def_index]
        if isinstance(instr, ir.Assign):
            value = instr.src
            upto = def_index
            continue
        if isinstance(instr, ir.Load):
            key = ctx.load_key(instr)
            if key is None or ctx.clobbered(block, def_index + 1, key):
                return None
            return key
        return None
    return None


def _trace_branch(
    ctx: _FunctionContext, block: ir.Block
) -> Optional[Tuple[VarKey, str, int]]:
    """Trace a CondBr condition to ``(cell, op, const)`` when possible."""
    term = block.terminator
    if not isinstance(term, ir.CondBr):
        return None
    value: ir.Value = term.cond
    negations = 0
    upto = len(block.instrs)
    for _ in range(32):
        if not isinstance(value, ir.Reg):
            return None
        def_index = None
        for index in range(upto - 1, -1, -1):
            if block.instrs[index].defined == value.name:
                def_index = index
                break
        if def_index is None:
            return None
        instr = block.instrs[def_index]
        if isinstance(instr, ir.Assign):
            value = instr.src
            upto = def_index
            continue
        if isinstance(instr, ir.UnOp) and instr.op == "!":
            negations += 1
            value = instr.value
            upto = def_index
            continue
        if isinstance(instr, ir.Load):
            key = ctx.load_key(instr)
            if key is None or ctx.clobbered(block, def_index + 1, key):
                return None
            op = "falsy" if negations % 2 else "truthy"
            return (key, op, 0)
        if isinstance(instr, ir.BinOp) and instr.op in _CMP_OPS:
            left = _resolve_term(ctx, block, def_index, instr.lhs)
            right = _resolve_term(ctx, block, def_index, instr.rhs)
            op = instr.op
            if isinstance(left, tuple) and isinstance(right, int):
                key, const = left, right
            elif isinstance(right, tuple) and isinstance(left, int):
                key, const, op = right, left, _SWAPPED[op]
            else:
                return None
            if negations % 2:
                op = _NEGATED[op]
            return (key, op, const)
        return None
    return None


# ---------------------------------------------------------------------------
# The per-function backward problem
# ---------------------------------------------------------------------------


class _WpProblem(DataflowProblem[Cond]):
    direction = BACKWARD

    def __init__(
        self,
        ctx: _FunctionContext,
        seeds: Dict[str, List[Tuple[int, Cond]]],
        summaries: ModuleSummaries,
        callgraph: CallGraph,
        dead_edges: Dict[Tuple[str, str], str],
    ) -> None:
        self.ctx = ctx
        self.seeds = seeds
        self.summaries = summaries
        self.callgraph = callgraph
        self.dead_edges = dead_edges
        self._traces: Dict[str, Optional[Tuple[VarKey, str, int]]] = {}

    def bottom(self) -> Cond:
        return FALSE

    def boundary(self) -> Cond:
        # Falling off an exit block leaves the function: no intra-procedural
        # path to the goal remains.
        return FALSE

    def join(self, facts: Sequence[Cond]) -> Cond:
        return cond_join(facts)

    def widen(self, old: Cond, new: Cond, visits: int) -> Cond:
        return cond_widen(old, new)

    def equal(self, a: Cond, b: Cond) -> bool:
        return cond_equal(a, b)

    def extra_seeds(self) -> Sequence[str]:
        return sorted(self.seeds)

    def transfer(self, label: str, fact: Cond) -> Cond:
        block = self.ctx.func.blocks[label]
        sites = self.seeds.get(label, ())
        at_terminator = [c for i, c in sites if i >= len(block.instrs)]
        if at_terminator:
            fact = cond_join([*at_terminator, fact])
        for index in range(len(block.instrs) - 1, -1, -1):
            fact = self._step(block.instrs[index], fact)
            here = [c for i, c in sites if i == index]
            if here:
                fact = cond_join([*here, fact])
        return fact

    def edge_fact(self, src: str, dst: str, fact: Cond) -> Optional[Cond]:
        block = self.ctx.func.blocks[src]
        term = block.terminator
        if not isinstance(term, ir.CondBr) or term.then_target == term.else_target:
            return fact
        if self.dead_edges.get((self.ctx.func.name, src)) == dst:
            return None
        if isinstance(fact, _FalseCond):
            return fact
        if src not in self._traces:
            self._traces[src] = _trace_branch(self.ctx, block)
        trace = self._traces[src]
        if trace is None:
            return fact
        key, op, const = trace
        interval = _edge_interval(op, const, dst == term.then_target)
        if interval is None:
            return fact
        return cond_and_key(fact, key, interval)

    # -- instruction semantics, applied backward ---------------------------

    def _step(self, instr: ir.Instr, fact: Cond) -> Cond:
        if isinstance(fact, _FalseCond):
            return fact
        if isinstance(instr, ir.Store):
            key = self.ctx.store_key(instr)
            if key is not None:
                if key in fact:
                    value = instr.value
                    if isinstance(value, ir.Const) and isinstance(value.value, int):
                        if value.value in fact[key]:
                            out = dict(fact)
                            del out[key]  # the store establishes the condition
                            return out
                        return FALSE  # the store contradicts it
                    out = dict(fact)
                    del out[key]
                    return out
                return fact
            addr = instr.addr
            if isinstance(addr, ir.Reg) and addr.name not in self.ctx.unsafe:
                return fact  # store through a local-only pointer
            return _drop_globals(fact)
        if isinstance(instr, ir.Alloc):
            dst = instr.defined
            if dst is not None and dst in self.ctx.tracked:
                key: VarKey = ("local", self.ctx.func.name, dst)
                if key in fact:
                    if 0 in fact[key]:  # fresh cells are zero-filled
                        out = dict(fact)
                        del out[key]
                        return out
                    return FALSE
            return fact
        if isinstance(instr, ir.Call):
            mods, unknown = self._call_mods(instr)
            if unknown:
                return _drop_globals(fact)
            if mods:
                out = {
                    k: v for k, v in fact.items()
                    if not (k[0] == "global" and k[2] in mods)
                }
                return out if len(out) != len(fact) else fact
            return fact
        if isinstance(instr, ir.Intrinsic):
            # Same refinement as the summary layer's direct-effect pass: an
            # environment call can only write a global through a pointer
            # argument that may alias one (getchar() and friends cannot).
            if any(
                _value_may_alias_global(arg, self.ctx.unsafe)
                for arg in instr.args
            ):
                return _drop_globals(fact)
            return fact
        if isinstance(instr, (ir.ThreadCreate, ir.ThreadJoin, *ir.SYNC_INSTRS)):
            return {} if fact else fact
        return fact

    def _call_mods(self, instr: ir.Call) -> Tuple[Set[str], bool]:
        if isinstance(instr.callee, ir.FuncRef):
            targets: Tuple[str, ...] = (instr.callee.name,)
        else:
            targets = self.callgraph.address_taken.get(len(instr.args), ())
        mods: Set[str] = set()
        unknown = False
        for target in targets:
            summary = self.summaries.functions.get(target)
            if summary is None:
                continue  # external: writes nothing (absint's convention)
            mods |= summary.mods
            unknown |= summary.writes_unknown
        return mods, unknown


def _verify_post_fixpoint(
    cfg: CFG, problem: _WpProblem, solution: Solution[Cond]
) -> bool:
    """True when re-applying every equation cannot strengthen the solution.

    The visit-capped solver may stop before a fixpoint; a genuine
    post-fixpoint (``transfer(join(...)) ⊑ recorded``) over-approximates
    the exact necessary condition, anything else must be discarded.
    """
    exit_set = {
        label for label, succs in cfg.succs.items() if not succs
    } or set(cfg.function.blocks)
    for label in cfg.function.blocks:
        incoming: List[Cond] = []
        if label in exit_set:
            incoming.append(problem.boundary())
        for succ in cfg.succs.get(label, ()):
            succ_in = solution.in_fact(succ)
            if succ_in is None:
                succ_in = FALSE
            refined = problem.edge_fact(label, succ, succ_in)
            if refined is not None:
                incoming.append(refined)
        out = cond_join(incoming) if incoming else FALSE
        new_in = problem.transfer(label, out)
        recorded = solution.in_fact(label)
        if recorded is None:
            recorded = FALSE
        if not cond_implied_by(new_in, recorded):
            return False
    return True


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class StaticPruneStats:
    """What necessary-precondition checks bought the executor."""

    checks: int = 0          # fork points where conditions were consulted
    branch_prunes: int = 0   # branch directions pruned without a probe
    state_kills: int = 0     # states killed outright (every direction dead)
    probes_avoided: int = 0  # solver feasibility probes skipped

    def to_dict(self) -> Dict[str, int]:
        return {
            "checks": self.checks,
            "branch_prunes": self.branch_prunes,
            "state_kills": self.state_kills,
            "probes_avoided": self.probes_avoided,
        }


@dataclass(slots=True)
class NecessaryConditions:
    """Per-block necessary conditions for reaching one goal."""

    module_name: str
    goal_refs: Tuple[ir.InstrRef, ...]
    # Block-entry conditions, complete for every verified function.
    conditions: Dict[Tuple[str, str], Cond] = field(default_factory=dict)
    # Functions from which the goal is transitively callable (or that
    # contain it); everything else is FALSE without returning first.
    may_reach_functions: FrozenSet[str] = frozenset()
    # Functions whose backward solution verified as a post-fixpoint.
    analyzed: FrozenSet[str] = frozenset()
    # The pruned may-reach closure (consumers' return-path escape check).
    reach_blocks: FrozenSet[Tuple[str, str]] = frozenset()

    def condition_at(self, function: str, label: str) -> Cond:
        """Necessary condition at ``label``'s entry, goal reached *without*
        first returning out of ``function`` (callers must separately allow
        for the return path, e.g. via :attr:`reach_blocks`)."""
        cond = self.conditions.get((function, label))
        if cond is not None:
            return cond
        if function in self.may_reach_functions:
            return {}
        return FALSE

    @property
    def dead_blocks(self) -> FrozenSet[Tuple[str, str]]:
        return frozenset(
            node for node, cond in self.conditions.items()
            if isinstance(cond, _FalseCond)
        )

    def to_dict(self) -> Dict[str, object]:
        rendered: Dict[str, Dict[str, object]] = {}
        for (function, label), cond in sorted(self.conditions.items()):
            rendered.setdefault(function, {})[label] = _render_cond(cond)
        return {
            "module": self.module_name,
            "goal": [repr(ref) for ref in self.goal_refs],
            "may_reach_functions": sorted(self.may_reach_functions),
            "analyzed": sorted(self.analyzed),
            "conditions": rendered,
        }


# ---------------------------------------------------------------------------
# The interprocedural driver
# ---------------------------------------------------------------------------


def compute_necessary_conditions(
    module: ir.Module,
    goal_refs: Sequence[ir.InstrRef],
    facts: Optional[ModuleFacts] = None,
    summaries: Optional[ModuleSummaries] = None,
    reach: Optional[GoalReach] = None,
    callgraph: Optional[CallGraph] = None,
) -> NecessaryConditions:
    """Bottom-up necessary-precondition inference toward ``goal_refs``."""
    if facts is None:
        facts = analyze_module(module)
    if summaries is None:
        summaries = summarize_module(module)
    if callgraph is None:
        callgraph = build_call_graph(module)
    if reach is None:
        reach = compute_reach(module, goal_refs, facts, callgraph)

    goal_functions = {
        ref.function for ref in goal_refs if ref.function in module.functions
    }
    may_reach = {
        name for name in module.functions
        if name in goal_functions
        or any(summaries.may_reach(name, g) for g in goal_functions)
    }
    dead_edges = _dead_edges(module, facts) if facts.pruning_sound else {}

    order = [
        name for scc in summaries.sccs for name in scc if name in may_reach
    ]

    entry_conditions: Dict[str, Cond] = {}
    conditions: Dict[Tuple[str, str], Cond] = {}
    analyzed: Set[str] = set()

    for name in order:
        func = module.functions[name]
        ctx = _FunctionContext(module, func, global_unsafe_regs(func))

        seeds: Dict[str, List[Tuple[int, Cond]]] = {}
        for ref in goal_refs:
            if ref.function == name and ref.block in func.blocks:
                seeds.setdefault(ref.block, []).append((ref.index, {}))
        for (site_func, label), sites in callgraph.sites_by_block.items():
            if site_func != name or label not in func.blocks:
                continue
            for site in sites:
                relevant = [t for t in site.targets if t in may_reach]
                if not relevant:
                    continue
                seed = cond_join([
                    _globals_only(entry_conditions.get(t, {}))
                    for t in relevant
                ])
                if isinstance(seed, _FalseCond):
                    continue  # no callee path reaches the goal
                seeds.setdefault(label, []).append((site.ref.index, seed))

        if not seeds:
            # May-reach via the call graph but no live descent path (e.g.
            # every relevant callee's entry condition proved FALSE).
            entry_conditions[name] = FALSE
            for label in func.blocks:
                conditions[(name, label)] = FALSE
            analyzed.add(name)
            continue

        problem = _WpProblem(ctx, seeds, summaries, callgraph, dead_edges)
        cfg = CFG(func)
        solution = solve(cfg, problem)
        if not _verify_post_fixpoint(cfg, problem, solution):
            entry_conditions[name] = {}
            continue  # unverified: leave the function at TRUE

        for label in func.blocks:
            fact = solution.in_fact(label)
            conditions[(name, label)] = FALSE if fact is None else fact
        entry_conditions[name] = _globals_only(
            conditions[(name, func.entry)]
        )
        analyzed.add(name)

    return NecessaryConditions(
        module_name=module.name,
        goal_refs=tuple(goal_refs),
        conditions=conditions,
        may_reach_functions=frozenset(may_reach),
        analyzed=frozenset(analyzed),
        reach_blocks=reach.blocks,
    )
