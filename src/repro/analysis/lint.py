"""The IR lint pass: hygiene checks plus the aggregated static bug smells.

``lint_module`` runs three cheap hygiene analyses of its own --

* **use-before-def** -- a scalar local is loaded on a path where *no* store
  to it can have executed (must-uninitialized, so a variable assigned on
  only some paths is not flagged);
* **dead-store** -- a scalar local is stored and then stored again in the
  same block with no intervening load (the first write can never be
  observed; restricted to variables whose address never escapes);
* **unreachable-block** -- a basic block no terminator path from the
  function entry can reach;

-- and merges them with the findings the two deep analyses already computed:
the abstract interpreter's ``possible-oob`` / ``possible-null-deref`` /
``free-of-non-heap`` (:mod:`repro.analysis.absint`) and the concurrency
analysis' ``double-acquire`` / ``lock-not-released-on-path`` /
``lock-order-inversion`` / ``possible-data-race``
(:mod:`repro.analysis.locks`).

The result serializes as the versioned ``esd-lint-v1`` document behind the
``repro lint`` CLI verb; CI runs it over every seeded workload asserting the
planted bug's smell is flagged and the patched variants stay clean.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .. import ir
from ..schema import check_schema_version
from .absint import Finding, analyze_module
from .cfg import CFG
from .locks import analyze_locks
from .reachdefs import ReachingDefs, local_address_regs

LINT_FORMAT = "esd-lint-v1"
LINT_SCHEMA_VERSION = 1

# Rules in severity order (documentary; the report preserves it in counts).
RULES = (
    "possible-null-deref",
    "possible-oob",
    "free-of-non-heap",
    "lock-order-inversion",
    "double-acquire",
    "lock-not-released-on-path",
    "possible-data-race",
    "use-before-def",
    "dead-store",
    "unreachable-block",
)


@dataclass(slots=True)
class LintReport:
    """All findings for one module, ready to serialize."""

    module_name: str
    findings: List[Finding] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings

    def by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts

    def to_dict(self) -> dict:
        return {
            "format": LINT_FORMAT,
            "schema_version": LINT_SCHEMA_VERSION,
            "program": self.module_name,
            "clean": self.clean,
            "counts": {
                rule: count
                for rule, count in sorted(self.by_rule().items())
            },
            "findings": [f.to_dict() for f in self.findings],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LintReport":
        from ..schema import SchemaVersionError

        if data.get("format") != LINT_FORMAT:
            raise SchemaVersionError(
                f"not a lint report: format {data.get('format')!r} "
                f"(expected {LINT_FORMAT!r})"
            )
        check_schema_version(data, LINT_SCHEMA_VERSION, "lint report")
        findings = [
            Finding(
                rule=f["rule"],
                function=f["function"],
                line=f["line"],
                ref=ir.InstrRef.parse(f["ref"]) if f.get("ref") else None,
                message=f.get("message", ""),
            )
            for f in data.get("findings", [])
        ]
        return cls(module_name=data["program"], findings=findings)


def lint_module(module: ir.Module) -> LintReport:
    """Run every lint rule over ``module`` and return the merged report."""
    findings: List[Finding] = []
    findings.extend(analyze_module(module).findings)
    findings.extend(analyze_locks(module).findings)
    for func in module.functions.values():
        findings.extend(_hygiene_findings(module, func))
    order = {rule: index for index, rule in enumerate(RULES)}
    findings.sort(
        key=lambda f: (order.get(f.rule, len(RULES)), f.function, f.line)
    )
    return LintReport(module_name=module.name, findings=findings)


# ---------------------------------------------------------------------------
# Hygiene rules
# ---------------------------------------------------------------------------


def _hygiene_findings(module: ir.Module, func: ir.Function) -> List[Finding]:
    findings: List[Finding] = []
    findings.extend(_unreachable_blocks(func))
    addr_regs = local_address_regs(func)
    if addr_regs:
        private = _private_scalars(func, addr_regs)
        findings.extend(_use_before_def(module, func, addr_regs))
        findings.extend(_dead_stores(func, addr_regs, private))
    return findings


def _unreachable_blocks(func: ir.Function) -> List[Finding]:
    reachable = CFG(func).reachable_from_entry()
    findings: List[Finding] = []
    for label, block in func.blocks.items():
        if label in reachable:
            continue
        first = block.instruction_at(0) if len(block) else None
        line = first.line if first is not None else 0
        findings.append(Finding(
            rule="unreachable-block",
            function=func.name,
            line=line,
            ref=ir.InstrRef(func.name, label, 0),
            message=f"block {label!r} is unreachable from function entry",
        ))
    return findings


def _private_scalars(
    func: ir.Function, addr_regs: Dict[str, str]
) -> frozenset:
    """Variables whose address register is only ever used as a direct
    load/store address: nothing else can observe their cells, so a
    write-after-write really is dead."""
    escaped: set = set()
    for _, instr in func.iter_instructions():
        direct: tuple = ()
        if isinstance(instr, ir.Load):
            direct = (instr.addr,)
        elif isinstance(instr, ir.Store):
            direct = (instr.addr,)
        for op in instr.operands():
            if isinstance(op, ir.Reg) and op.name in addr_regs and op not in direct:
                escaped.add(addr_regs[op.name])
    return frozenset(set(addr_regs.values()) - escaped)


def _use_before_def(
    module: ir.Module, func: ir.Function, addr_regs: Dict[str, str]
) -> List[Finding]:
    defs = ReachingDefs(module, func.name)
    findings: List[Finding] = []
    seen: set = set()
    for ref, instr in func.iter_instructions():
        if not isinstance(instr, ir.Load):
            continue
        addr = instr.addr
        if not (isinstance(addr, ir.Reg) and addr.name in addr_regs):
            continue
        name = addr_regs[addr.name]
        var = ("local", func.name, name)
        if defs.reaching_at(ref).get(var):
            continue
        if name in seen:
            continue
        seen.add(name)
        findings.append(Finding(
            rule="use-before-def",
            function=func.name,
            line=instr.line,
            ref=ref,
            message=f"local {name!r} is read before any store can reach it",
        ))
    return findings


def _dead_stores(
    func: ir.Function, addr_regs: Dict[str, str], private: frozenset
) -> List[Finding]:
    findings: List[Finding] = []
    for label, block in func.blocks.items():
        # var -> (index, instr) of the last unobserved store in this block
        pending: Dict[str, tuple] = {}
        for index, instr in enumerate(block.instrs):
            if isinstance(instr, ir.Load):
                addr = instr.addr
                if isinstance(addr, ir.Reg) and addr.name in addr_regs:
                    pending.pop(addr_regs[addr.name], None)
                continue
            if not isinstance(instr, ir.Store):
                continue
            addr = instr.addr
            if not (isinstance(addr, ir.Reg) and addr.name in addr_regs):
                continue
            name = addr_regs[addr.name]
            if name not in private:
                continue
            prior = pending.get(name)
            if prior is not None:
                prior_index, prior_instr = prior
                findings.append(Finding(
                    rule="dead-store",
                    function=func.name,
                    line=prior_instr.line,
                    ref=ir.InstrRef(func.name, label, prior_index),
                    message=(
                        f"store to {name!r} is overwritten at line "
                        f"{instr.line} before any read"
                    ),
                ))
            pending[name] = (index, instr)
    return findings
