"""The IR lint pass: hygiene checks plus the aggregated static bug smells.

``lint_module`` runs three cheap hygiene analyses of its own --

* **use-before-def** -- a scalar local is loaded on a path where *no* store
  to it can have executed (must-uninitialized, so a variable assigned on
  only some paths is not flagged);
* **dead-store** -- a scalar local is stored and then stored again in the
  same block with no intervening load (the first write can never be
  observed; restricted to variables whose address never escapes);
* **unreachable-block** -- a basic block no terminator path from the
  function entry can reach;

-- plus two whole-module checks over the call graph / summary layer --

* **call-to-unreachable-function** -- a direct call whose callee the
  whole-module call graph proves unreachable from ``main`` (the call site
  necessarily sits in dead code itself, so it can never execute);
* **dead-parameter** -- a declared parameter whose value can never be
  observed: its spill slot is never read and its address never escapes,
  and no call site feeds it anything but constants (so it is vestigial
  end to end, not an API-symmetry placeholder).  Skipped for ``main``,
  address-taken functions, thread start routines (signatures fixed by
  convention), and parameters named as intentionally unused;

-- and merges them with the findings the two deep analyses already computed:
the abstract interpreter's ``possible-oob`` / ``possible-null-deref`` /
``free-of-non-heap`` (:mod:`repro.analysis.absint`) and the concurrency
analysis' ``double-acquire`` / ``lock-not-released-on-path`` /
``lock-order-inversion`` / ``possible-data-race``
(:mod:`repro.analysis.locks`).

The result serializes as the versioned ``esd-lint-v1`` document behind the
``repro lint`` CLI verb; CI runs it over every seeded workload asserting the
planted bug's smell is flagged and the patched variants stay clean.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .. import ir
from ..schema import check_schema_version
from .absint import Finding, analyze_module
from .cfg import CFG, build_call_graph, reachable_functions
from .locks import analyze_locks
from .reachdefs import ReachingDefs, local_address_regs

LINT_FORMAT = "esd-lint-v1"
LINT_SCHEMA_VERSION = 1

# Rules in severity order (documentary; the report preserves it in counts).
RULES = (
    "possible-null-deref",
    "possible-oob",
    "free-of-non-heap",
    "lock-order-inversion",
    "double-acquire",
    "lock-not-released-on-path",
    "possible-data-race",
    "use-before-def",
    "dead-store",
    "unreachable-block",
    "call-to-unreachable-function",
    "dead-parameter",
)


@dataclass(slots=True)
class LintReport:
    """All findings for one module, ready to serialize."""

    module_name: str
    findings: List[Finding] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings

    def by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts

    def to_dict(self) -> dict:
        return {
            "format": LINT_FORMAT,
            "schema_version": LINT_SCHEMA_VERSION,
            "program": self.module_name,
            "clean": self.clean,
            "counts": {
                rule: count
                for rule, count in sorted(self.by_rule().items())
            },
            "findings": [f.to_dict() for f in self.findings],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LintReport":
        from ..schema import SchemaVersionError

        if data.get("format") != LINT_FORMAT:
            raise SchemaVersionError(
                f"not a lint report: format {data.get('format')!r} "
                f"(expected {LINT_FORMAT!r})"
            )
        check_schema_version(data, LINT_SCHEMA_VERSION, "lint report")
        findings = [
            Finding(
                rule=f["rule"],
                function=f["function"],
                line=f["line"],
                ref=ir.InstrRef.parse(f["ref"]) if f.get("ref") else None,
                message=f.get("message", ""),
            )
            for f in data.get("findings", [])
        ]
        return cls(module_name=data["program"], findings=findings)


def lint_module(module: ir.Module) -> LintReport:
    """Run every lint rule over ``module`` and return the merged report."""
    findings: List[Finding] = []
    findings.extend(analyze_module(module).findings)
    findings.extend(analyze_locks(module).findings)
    findings.extend(_summary_findings(module))
    for func in module.functions.values():
        findings.extend(_hygiene_findings(module, func))
    order = {rule: index for index, rule in enumerate(RULES)}
    findings.sort(
        key=lambda f: (order.get(f.rule, len(RULES)), f.function, f.line)
    )
    return LintReport(module_name=module.name, findings=findings)


# ---------------------------------------------------------------------------
# Hygiene rules
# ---------------------------------------------------------------------------


def _hygiene_findings(module: ir.Module, func: ir.Function) -> List[Finding]:
    findings: List[Finding] = []
    findings.extend(_unreachable_blocks(func))
    addr_regs = local_address_regs(func)
    if addr_regs:
        private = _private_scalars(func, addr_regs)
        findings.extend(_use_before_def(module, func, addr_regs))
        findings.extend(_dead_stores(func, addr_regs, private))
    return findings


def _unreachable_blocks(func: ir.Function) -> List[Finding]:
    reachable = CFG(func).reachable_from_entry()
    findings: List[Finding] = []
    for label, block in func.blocks.items():
        if label in reachable:
            continue
        first = block.instruction_at(0) if len(block) else None
        line = first.line if first is not None else 0
        findings.append(Finding(
            rule="unreachable-block",
            function=func.name,
            line=line,
            ref=ir.InstrRef(func.name, label, 0),
            message=f"block {label!r} is unreachable from function entry",
        ))
    return findings


def _private_scalars(
    func: ir.Function, addr_regs: Dict[str, str]
) -> frozenset:
    """Variables whose address register is only ever used as a direct
    load/store address: nothing else can observe their cells, so a
    write-after-write really is dead."""
    escaped: set = set()
    for _, instr in func.iter_instructions():
        direct: tuple = ()
        if isinstance(instr, ir.Load):
            direct = (instr.addr,)
        elif isinstance(instr, ir.Store):
            direct = (instr.addr,)
        for op in instr.operands():
            if isinstance(op, ir.Reg) and op.name in addr_regs and op not in direct:
                escaped.add(addr_regs[op.name])
    return frozenset(set(addr_regs.values()) - escaped)


def _use_before_def(
    module: ir.Module, func: ir.Function, addr_regs: Dict[str, str]
) -> List[Finding]:
    defs = ReachingDefs(module, func.name)
    findings: List[Finding] = []
    seen: set = set()
    for ref, instr in func.iter_instructions():
        if not isinstance(instr, ir.Load):
            continue
        addr = instr.addr
        if not (isinstance(addr, ir.Reg) and addr.name in addr_regs):
            continue
        name = addr_regs[addr.name]
        var = ("local", func.name, name)
        if defs.reaching_at(ref).get(var):
            continue
        if name in seen:
            continue
        seen.add(name)
        findings.append(Finding(
            rule="use-before-def",
            function=func.name,
            line=instr.line,
            ref=ref,
            message=f"local {name!r} is read before any store can reach it",
        ))
    return findings


def _dead_stores(
    func: ir.Function, addr_regs: Dict[str, str], private: frozenset
) -> List[Finding]:
    findings: List[Finding] = []
    for label, block in func.blocks.items():
        # var -> (index, instr) of the last unobserved store in this block
        pending: Dict[str, tuple] = {}
        for index, instr in enumerate(block.instrs):
            if isinstance(instr, ir.Load):
                addr = instr.addr
                if isinstance(addr, ir.Reg) and addr.name in addr_regs:
                    pending.pop(addr_regs[addr.name], None)
                continue
            if not isinstance(instr, ir.Store):
                continue
            addr = instr.addr
            if not (isinstance(addr, ir.Reg) and addr.name in addr_regs):
                continue
            name = addr_regs[addr.name]
            if name not in private:
                continue
            prior = pending.get(name)
            if prior is not None:
                prior_index, prior_instr = prior
                findings.append(Finding(
                    rule="dead-store",
                    function=func.name,
                    line=prior_instr.line,
                    ref=ir.InstrRef(func.name, label, prior_index),
                    message=(
                        f"store to {name!r} is overwritten at line "
                        f"{instr.line} before any read"
                    ),
                ))
            pending[name] = (index, instr)
    return findings


# ---------------------------------------------------------------------------
# Summary-layer rules (whole-module call graph)
# ---------------------------------------------------------------------------


def _summary_findings(module: ir.Module) -> List[Finding]:
    """Rules that need the whole-module call graph, not one function."""
    if "main" not in module.functions:
        return []  # a library module: every function is a potential root
    graph = build_call_graph(module)
    live = reachable_functions(module, graph, "main")
    findings: List[Finding] = []
    for func in module.functions.values():
        for ref, instr in func.iter_instructions():
            if not (isinstance(instr, ir.Call)
                    and isinstance(instr.callee, ir.FuncRef)):
                continue
            target = instr.callee.name
            if target in module.functions and target not in live:
                findings.append(Finding(
                    rule="call-to-unreachable-function",
                    function=func.name,
                    line=instr.line,
                    ref=ref,
                    message=(
                        f"call to {target!r} can never execute: "
                        f"{target!r} is unreachable from 'main'"
                    ),
                ))
    findings.extend(_dead_parameters(module, graph))
    return findings


def _dead_parameters(module: ir.Module, graph) -> List[Finding]:
    address_taken = {
        name for names in graph.address_taken.values() for name in names
    }
    thread_entries: set = set()
    # func name -> set of parameter indices some call site feeds a live
    # (non-constant) value.  Such a parameter documents real data flow --
    # usually API symmetry, like a lock-release taking the same tid as the
    # acquire -- so only parameters fed constants everywhere are vestigial.
    live_args: Dict[str, set] = {}
    for func in module.functions.values():
        for _, instr in func.iter_instructions():
            if (isinstance(instr, ir.ThreadCreate)
                    and isinstance(instr.func, ir.FuncRef)):
                thread_entries.add(instr.func.name)
            elif (isinstance(instr, ir.Call)
                    and isinstance(instr.callee, ir.FuncRef)):
                for position, arg in enumerate(instr.args):
                    if not isinstance(arg, ir.Const):
                        live_args.setdefault(
                            instr.callee.name, set()
                        ).add(position)

    findings: List[Finding] = []
    for func in module.functions.values():
        if not func.params or func.name == "main":
            continue
        if func.name in address_taken or func.name in thread_entries:
            continue  # the signature is fixed by a calling convention
        addr_regs = local_address_regs(func)
        private = _private_scalars(func, addr_regs)
        for position, param in enumerate(func.params):
            if param.startswith("_") or param == "unused":
                continue  # named as intentionally unused
            if position in live_args.get(func.name, ()):
                continue  # a caller feeds it a computed value: deliberate
            dead, line = _param_dead(func, param, addr_regs, private)
            if dead:
                entry = next(iter(func.blocks), "entry")
                findings.append(Finding(
                    rule="dead-parameter",
                    function=func.name,
                    line=line,
                    ref=ir.InstrRef(func.name, entry, 0),
                    message=f"parameter {param!r} is never read",
                ))
    return findings


def _param_dead(
    func: ir.Function,
    param: str,
    addr_regs: Dict[str, str],
    private: frozenset,
) -> tuple:
    """``(dead, line)``: the parameter's value is provably unobservable.

    The compiler spills every parameter into an alloca at entry, so the
    spill store does not count as a use; the parameter is dead when that
    store is its *only* use and the spill slot is itself never loaded
    (and its address never escapes, so nothing else can read the cell).
    """
    line = 0
    for _, instr in func.iter_instructions():
        if any(isinstance(op, ir.Reg) and op.name == param
               for op in instr.operands()):
            if (isinstance(instr, ir.Store)
                    and isinstance(instr.value, ir.Reg)
                    and instr.value.name == param
                    and isinstance(instr.addr, ir.Reg)
                    and addr_regs.get(instr.addr.name) == param):
                line = line or instr.line
                continue  # the entry spill
            return False, 0  # any other use observes the value
        if (isinstance(instr, ir.Load)
                and isinstance(instr.addr, ir.Reg)
                and addr_regs.get(instr.addr.name) == param):
            return False, 0  # the spill slot is read back
    if param in addr_regs.values() and param not in private:
        return False, 0  # the slot's address escapes: it may be read
    return True, line
