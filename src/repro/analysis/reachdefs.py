"""Reaching definitions of named variables (paper section 3.2).

The MiniC compiler makes every named variable memory-resident with a
dedicated address register (``x.addr`` for locals) or a global reference, so
definitions are syntactically recognizable: a ``Store`` whose address operand
is a variable's base address defines that variable.

Locals get a classic intra-procedural forward dataflow (GEN/KILL per block,
union-confluence).  Globals get a flow-insensitive whole-module set (any
store anywhere, plus the static initializer), which matches the paper's
"intra- and inter-procedural data flow analysis" at the precision our
intermediate-goal search needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from .. import ir
from ..ir import InstrRef
from .cfg import CFG

# A named variable: ('local', function, name) or ('global', name).
VarId = Union[tuple[str, str, str], tuple[str, str]]


@dataclass(frozen=True, slots=True)
class Definition:
    var: VarId
    ref: InstrRef
    value: ir.Value  # the stored IR operand (Const means statically known)

    @property
    def constant(self) -> Optional[int]:
        return self.value.value if isinstance(self.value, ir.Const) else None


def local_address_regs(func: ir.Function) -> dict[str, str]:
    """Map address-register name -> variable name for this function's locals."""
    regs: dict[str, str] = {}
    for _, instr in func.iter_instructions():
        if isinstance(instr, ir.Alloc) and not instr.heap and instr.name:
            if isinstance(instr.dst, ir.Reg):
                regs[instr.dst.name] = instr.name
    return regs


def store_target(
    instr: ir.Instr, func: ir.Function, addr_regs: dict[str, str]
) -> Optional[VarId]:
    """The named variable a store defines, if statically identifiable."""
    if not isinstance(instr, ir.Store):
        return None
    addr = instr.addr
    if isinstance(addr, ir.GlobalRef):
        return ("global", addr.name)
    if isinstance(addr, ir.Reg) and addr.name in addr_regs:
        return ("local", func.name, addr_regs[addr.name])
    return None


class ReachingDefs:
    """Per-function reaching definitions for local scalars, plus the
    flow-insensitive global sets."""

    def __init__(self, module: ir.Module, func_name: str) -> None:
        self.module = module
        self.func = module.functions[func_name]
        self.cfg = CFG(self.func)
        self.addr_regs = local_address_regs(self.func)
        self._block_defs: dict[str, list[Definition]] = {}
        self._in: dict[str, frozenset[Definition]] = {}
        self._global_defs: Optional[dict[str, set[Definition]]] = None
        self._analyze()

    def _analyze(self) -> None:
        gen: dict[str, dict[VarId, Definition]] = {}
        for label, block in self.func.blocks.items():
            defs: list[Definition] = []
            last: dict[VarId, Definition] = {}
            for index, instr in enumerate(block.instrs):
                var = store_target(instr, self.func, self.addr_regs)
                if var is not None and var[0] == "local":
                    d = Definition(var, InstrRef(self.func.name, label, index), instr.value)
                    defs.append(d)
                    last[var] = d
            self._block_defs[label] = defs
            gen[label] = last

        in_sets: dict[str, set[Definition]] = {label: set() for label in self.func.blocks}
        out_sets: dict[str, set[Definition]] = {}
        for label in self.func.blocks:
            out_sets[label] = self._transfer(in_sets[label], gen[label], label)

        changed = True
        while changed:
            changed = False
            for label in self.func.blocks:
                merged: set[Definition] = set()
                for pred in self.cfg.preds[label]:
                    merged |= out_sets[pred]
                if merged != in_sets[label]:
                    in_sets[label] = merged
                    out_sets[label] = self._transfer(merged, gen[label], label)
                    changed = True
        self._in = {label: frozenset(s) for label, s in in_sets.items()}

    def _transfer(
        self, incoming: set[Definition], gen: dict[VarId, Definition], label: str
    ) -> set[Definition]:
        killed_vars = set(gen)
        out = {d for d in incoming if d.var not in killed_vars}
        out |= set(gen.values())
        return out

    def reaching_at(self, ref: InstrRef) -> dict[VarId, set[Definition]]:
        """Definitions of local variables reaching (just before) ``ref``."""
        live: dict[VarId, set[Definition]] = {}
        for d in self._in[ref.block]:
            live.setdefault(d.var, set()).add(d)
        for d in self._block_defs[ref.block]:
            if d.ref.index >= ref.index:
                break
            live[d.var] = {d}
        return live

    # -- globals ------------------------------------------------------------

    def global_definitions(self, name: str) -> set[Definition]:
        """All stores to global ``name`` anywhere in the module."""
        if self._global_defs is None:
            self._global_defs = collect_global_definitions(self.module)
        return self._global_defs.get(name, set())


def collect_global_definitions(module: ir.Module) -> dict[str, set[Definition]]:
    result: dict[str, set[Definition]] = {}
    for func in module.functions.values():
        addr_regs = local_address_regs(func)
        for ref, instr in func.iter_instructions():
            var = store_target(instr, func, addr_regs)
            if var is not None and var[0] == "global":
                result.setdefault(var[1], set()).add(Definition(var, ref, instr.value))
    return result
