"""Generic worklist dataflow framework (the tentpole's foundation).

A :class:`DataflowProblem` plugs a lattice into the solver: ``bottom`` /
``boundary`` give the extremal facts, ``join`` the confluence operator,
``transfer`` the per-block flow function, and (optionally) ``widen`` an
extrapolation applied after a block has been revisited enough times to
suspect an unbounded ascending chain.

The solver is direction-agnostic (``forward`` / ``backward``) and
*reachability-aware* for forward problems: a transfer function may declare
an outgoing edge infeasible (``edge_fact`` returning ``None``), and blocks
whose every incoming edge is infeasible are never processed -- their facts
stay bottom and they are reported in :attr:`Solution.unreached`.  That is
what lets the abstract interpreter treat branches folded to constants
(e.g. a ``branch-flip`` repair) as killing the guarded region.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generic, List, Optional, Sequence, Set, TypeVar

from .cfg import CFG

F = TypeVar("F")

FORWARD = "forward"
BACKWARD = "backward"

# After this many visits to one block the solver starts calling ``widen``
# instead of plain ``join`` -- two full passes let simple loop bounds settle
# before extrapolation kicks in.
DEFAULT_WIDEN_AFTER = 3

# Hard per-block visit cap: a misbehaving (non-monotone or non-widening)
# transfer function terminates with an over-approximation instead of
# spinning forever.
MAX_VISITS = 64


class DataflowProblem(Generic[F]):
    """One dataflow analysis: a lattice plus flow functions over block labels."""

    direction: str = FORWARD
    widen_after: int = DEFAULT_WIDEN_AFTER
    # Decreasing sweeps after the widened fixpoint: recomputing a
    # post-fixpoint through monotone transfer functions stays sound and
    # recovers the loop bounds that widening overshot.
    narrow_passes: int = 2

    def bottom(self) -> F:
        """The "no information yet" fact (identity of ``join``)."""
        raise NotImplementedError

    def boundary(self) -> F:
        """The fact entering the CFG (at entry forward, at exits backward)."""
        raise NotImplementedError

    def join(self, facts: Sequence[F]) -> F:
        raise NotImplementedError

    def transfer(self, label: str, fact: F) -> F:
        """The fact after (forward) / before (backward) executing ``label``."""
        raise NotImplementedError

    def widen(self, old: F, new: F, visits: int) -> F:
        """Extrapolate after ``visits`` revisits; default: no widening."""
        return new

    def equal(self, a: F, b: F) -> bool:
        return bool(a == b)

    def edge_fact(self, src: str, dst: str, fact: F) -> Optional[F]:
        """Refine ``fact`` along the edge ``src -> dst``.

        Forward, ``fact`` is ``src``'s out-fact flowing into ``dst``;
        backward, it is ``dst``'s in-fact flowing into ``src``'s out join.
        Return ``None`` to declare the edge statically infeasible.
        """
        return fact

    def extra_seeds(self) -> Sequence[str]:
        """Extra worklist seeds for backward problems.

        Backward solving normally starts at exit blocks; a problem whose
        interesting facts originate mid-CFG (e.g. necessary-precondition
        inference seeding at goal sites) lists those blocks here so regions
        with no path to an exit -- infinite loops -- are still processed.
        """
        return ()


@dataclass(slots=True)
class BlockFacts(Generic[F]):
    """The solved facts at one block: on entry and on exit (forward order)."""

    in_fact: F
    out_fact: F


@dataclass(slots=True)
class Solution(Generic[F]):
    """A dataflow fixpoint: per-block facts plus reachability information."""

    facts: Dict[str, BlockFacts[F]] = field(default_factory=dict)
    unreached: Set[str] = field(default_factory=set)
    visits: Dict[str, int] = field(default_factory=dict)

    def in_fact(self, label: str) -> Optional[F]:
        entry = self.facts.get(label)
        return entry.in_fact if entry is not None else None

    def out_fact(self, label: str) -> Optional[F]:
        entry = self.facts.get(label)
        return entry.out_fact if entry is not None else None


def solve(cfg: CFG, problem: DataflowProblem[F]) -> Solution[F]:
    """Run ``problem`` to fixpoint over ``cfg`` and return the solution."""
    if problem.direction == FORWARD:
        return _solve_forward(cfg, problem)
    if problem.direction == BACKWARD:
        return _solve_backward(cfg, problem)
    raise ValueError(f"unknown dataflow direction {problem.direction!r}")


def _loop_heads(cfg: CFG) -> Set[str]:
    """Targets of retreating edges (iterative DFS over the successor graph).

    Widening is applied only at these blocks: every cycle contains one (so
    termination still holds), and widening anywhere else would clobber the
    branch-condition refinement ``edge_fact`` installs on loop-body entries.
    """
    heads: Set[str] = set()
    color: Dict[str, int] = {cfg.function.entry: 0}  # 0 on stack, 1 done
    stack = [(cfg.function.entry,
              iter(cfg.succs.get(cfg.function.entry, ())))]
    while stack:
        label, succs = stack[-1]
        advanced = False
        for succ in succs:
            state = color.get(succ)
            if state == 0:
                heads.add(succ)
            elif state is None:
                color[succ] = 0
                stack.append((succ, iter(cfg.succs.get(succ, ()))))
                advanced = True
                break
        if not advanced:
            color[label] = 1
            stack.pop()
    return heads


def _solve_forward(cfg: CFG, problem: DataflowProblem[F]) -> Solution[F]:
    entry = cfg.function.entry
    heads = _loop_heads(cfg)
    out_facts: Dict[str, F] = {}
    in_facts: Dict[str, F] = {}
    visits: Dict[str, int] = {}
    processed: Set[str] = set()
    worklist: List[str] = [entry]
    queued: Set[str] = {entry}

    while worklist:
        label = worklist.pop(0)
        queued.discard(label)
        visits[label] = visits.get(label, 0) + 1
        if visits[label] > MAX_VISITS:
            continue

        incoming: List[F] = []
        if label == entry:
            incoming.append(problem.boundary())
        for pred in cfg.preds.get(label, ()):
            if pred not in processed:
                continue
            refined = problem.edge_fact(pred, label, out_facts[pred])
            if refined is not None:
                incoming.append(refined)
        new_in = problem.join(incoming) if incoming else problem.bottom()
        if (label in heads
                and visits[label] > problem.widen_after
                and label in in_facts):
            new_in = problem.widen(in_facts[label], new_in, visits[label])

        if (label in processed
                and problem.equal(in_facts[label], new_in)):
            continue
        in_facts[label] = new_in
        out_facts[label] = problem.transfer(label, new_in)
        processed.add(label)
        for succ in cfg.succs.get(label, ()):
            feasible = problem.edge_fact(label, succ, out_facts[label])
            if feasible is None:
                continue
            if succ not in queued:
                worklist.append(succ)
                queued.add(succ)

    order = [label for label in cfg.function.blocks if label in processed]
    for _ in range(max(0, problem.narrow_passes)):
        changed = False
        for label in order:
            incoming = []
            if label == entry:
                incoming.append(problem.boundary())
            for pred in cfg.preds.get(label, ()):
                if pred not in processed:
                    continue
                refined = problem.edge_fact(pred, label, out_facts[pred])
                if refined is not None:
                    incoming.append(refined)
            new_in = problem.join(incoming) if incoming else problem.bottom()
            if problem.equal(in_facts[label], new_in):
                continue
            in_facts[label] = new_in
            out_facts[label] = problem.transfer(label, new_in)
            changed = True
        if not changed:
            break

    solution: Solution[F] = Solution(visits=visits)
    for label in cfg.function.blocks:
        if label in processed:
            solution.facts[label] = BlockFacts(in_facts[label], out_facts[label])
        else:
            solution.unreached.add(label)
            solution.facts[label] = BlockFacts(problem.bottom(), problem.bottom())
    return solution


def _solve_backward(cfg: CFG, problem: DataflowProblem[F]) -> Solution[F]:
    exits = [
        label for label, succs in cfg.succs.items() if not succs
    ] or list(cfg.function.blocks)
    out_facts: Dict[str, F] = {}   # fact *after* the block, in forward order
    in_facts: Dict[str, F] = {}    # fact *before* the block (the result)
    visits: Dict[str, int] = {}
    seeds = list(exits) + [
        label for label in problem.extra_seeds()
        if label in cfg.function.blocks and label not in set(exits)
    ]
    worklist: List[str] = list(seeds)
    queued: Set[str] = set(seeds)
    exit_set = set(exits)

    while worklist:
        label = worklist.pop(0)
        queued.discard(label)
        visits[label] = visits.get(label, 0) + 1
        if visits[label] > MAX_VISITS:
            continue

        incoming: List[F] = []
        if label in exit_set:
            incoming.append(problem.boundary())
        for succ in cfg.succs.get(label, ()):
            if succ in in_facts:
                refined = problem.edge_fact(label, succ, in_facts[succ])
                if refined is not None:
                    incoming.append(refined)
        new_out = problem.join(incoming) if incoming else problem.bottom()
        if visits[label] > problem.widen_after and label in out_facts:
            new_out = problem.widen(out_facts[label], new_out, visits[label])

        if label in out_facts and problem.equal(out_facts[label], new_out):
            continue
        out_facts[label] = new_out
        in_facts[label] = problem.transfer(label, new_out)
        for pred in cfg.preds.get(label, ()):
            if pred not in queued:
                worklist.append(pred)
                queued.add(pred)

    solution: Solution[F] = Solution(visits=visits)
    for label in cfg.function.blocks:
        if label in in_facts:
            solution.facts[label] = BlockFacts(in_facts[label], out_facts[label])
        else:
            solution.unreached.add(label)
            solution.facts[label] = BlockFacts(problem.bottom(), problem.bottom())
    return solution
