"""The whole-module analysis dump behind ``repro analyze``.

``analysis_document`` aggregates everything the static pipeline computes --
per-function CFGs, the call graph (with address-taken indirect-call
approximation), the proximity heuristic's per-function call costs, the
abstract interpreter's facts, the lockset/lock-order concurrency facts,
and the compositional function summaries -- into one versioned
``esd-analysis-v1`` JSON document.  Passing ``goals`` adds one section per
named goal: its may-reach closure and the per-block necessary-precondition
table the backward inference derived (the facts the executor uses to prune).
The CLI writes it for humans and CI; nothing in the synthesis pipeline
consumes it, so the schema can grow freely (additive changes only; breaking
changes bump the version, same policy as the execution-file artifact).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

from .. import ir
from ..schema import SchemaVersionError, check_schema_version
from .absint import analyze_module
from .cfg import CFG, build_call_graph, reachable_functions
from .distance import INF, DistanceCalculator
from .locks import analyze_locks
from .reach import compute_reach
from .summaries import summarize_module
from .wp import compute_necessary_conditions

ANALYSIS_FORMAT = "esd-analysis-v1"
ANALYSIS_SCHEMA_VERSION = 1


def analysis_document(
    module: ir.Module,
    goals: Optional[Mapping[str, Sequence[ir.InstrRef]]] = None,
) -> Dict[str, object]:
    """The full static-analysis dump for one compiled module."""
    callgraph = build_call_graph(module)
    distances = DistanceCalculator(module)
    absint = analyze_module(module)
    concurrency = analyze_locks(module)
    summaries = summarize_module(module)

    functions: Dict[str, object] = {}
    for name, func in module.functions.items():
        cfg = CFG(func)
        reachable = cfg.reachable_from_entry()
        cost = distances.call_cost(name)
        functions[name] = {
            "params": list(func.params),
            "entry": func.entry,
            "blocks": {
                label: {
                    "instructions": len(block.instrs),
                    "succs": list(cfg.succs.get(label, ())),
                    "preds": sorted(cfg.preds.get(label, [])),
                    "reachable": label in reachable,
                }
                for label, block in func.blocks.items()
            },
            # Cheapest instruction count entry->return; None when no path
            # returns (e.g. a function that always exits or loops forever).
            "call_cost": None if cost >= INF else cost,
        }

    document: Dict[str, object] = {
        "format": ANALYSIS_FORMAT,
        "schema_version": ANALYSIS_SCHEMA_VERSION,
        "program": module.name,
        "functions": functions,
        "call_graph": {
            "callees": {
                name: sorted(callees)
                for name, callees in sorted(callgraph.callees.items())
            },
            "address_taken": {
                str(arity): list(names)
                for arity, names in sorted(callgraph.address_taken.items())
            },
            "reachable_from_main": sorted(
                reachable_functions(module, callgraph)
            ) if "main" in module.functions else [],
        },
        "absint": absint.to_dict(),
        "concurrency": concurrency.to_dict(),
        "summaries": summaries.to_dict(),
    }
    if goals:
        document["goals"] = [
            _goal_section(module, name, tuple(refs), absint, summaries,
                          callgraph)
            for name, refs in goals.items()
        ]
    return document


def _goal_section(module, name, refs, absint, summaries, callgraph):
    reach = compute_reach(module, list(refs), facts=absint,
                          callgraph=callgraph)
    conditions = compute_necessary_conditions(
        module, refs, facts=absint, summaries=summaries, reach=reach,
        callgraph=callgraph,
    )
    return {
        "name": name,
        "targets": [repr(ref) for ref in refs],
        "reach": reach.to_dict(),
        "necessary_conditions": conditions.to_dict(),
    }


def check_analysis_document(data: Dict[str, object]) -> int:
    """Raise :class:`SchemaVersionError` unless ``data`` is a document this
    build can read; returns the accepted schema version."""
    if data.get("format") != ANALYSIS_FORMAT:
        raise SchemaVersionError(
            f"not an analysis document: format {data.get('format')!r} "
            f"(expected {ANALYSIS_FORMAT!r})"
        )
    version = check_schema_version(
        data, ANALYSIS_SCHEMA_VERSION, "analysis document"
    )
    # Additive v1 sections: absent in older documents, but when present
    # they must have the documented shape.
    summaries = data.get("summaries")
    if summaries is not None:
        if not isinstance(summaries, dict) or "functions" not in summaries:
            raise SchemaVersionError(
                "malformed analysis document: 'summaries' has no 'functions'"
            )
    goals = data.get("goals", [])
    if not isinstance(goals, list):
        raise SchemaVersionError(
            "malformed analysis document: 'goals' is not a list"
        )
    for goal in goals:
        if not isinstance(goal, dict):
            raise SchemaVersionError(
                "malformed analysis document: goal section is not an object"
            )
        missing = {"name", "targets", "reach", "necessary_conditions"} - set(goal)
        if missing:
            raise SchemaVersionError(
                "malformed analysis document: goal section missing "
                + ", ".join(sorted(missing))
            )
    return version
