"""repro: a Python reproduction of "Execution Synthesis" (ESD), EuroSys 2010.

ESD takes a program plus a bug report (coredump) and synthesizes an execution
-- concrete inputs plus a thread schedule -- that deterministically reproduces
the reported bug, with no tracing at the end-user site.

The front door is :class:`~repro.api.ReproSession`: one session per program,
a stream of reports through it.  The session caches the static-phase
artifacts (inter-procedural CFG, distance tables, intermediate goals), so
synthesizing many reports against one program pays for static analysis once.

Typical use::

    from repro import ReproSession

    session = ReproSession.from_source(minic_source)
    result = session.synthesize(report)        # BugReport from a coredump
    trace = session.play_back(result.execution_file)
    outcome = session.triage(another_report)   # duplicate detection

    # Try several configurations at once; first win cancels the rest:
    from repro.core import ESDConfig
    portfolio = session.synthesize_portfolio(
        report, {"esd": ESDConfig(), "esd-alt": ESDConfig(seed=1)}
    )

Behind the session sits the job service (:class:`repro.service.
ReproService`): versioned :class:`~repro.api.jobs.JobSpec` documents in, a
priority queue across a bounded worker budget, artifacts persisted in a
content-addressed store, and graceful drain with resumable checkpoints.
``repro serve`` exposes it over HTTP; ``repro submit | status | fetch``
are the clients.

Beyond reproduction, :mod:`repro.repair` closes the loop from report to
*verified patch*: spectrum-based fault localization over playback coverage,
template/constraint patch synthesis through the symbolic executor, and the
paper's own validation criterion (``session.repair(report)``, the service's
``repair`` job kind, or ``repro repair`` on the command line).

The one-shot helpers remain for single calls: ``repro.core.esd_synthesize``
and ``repro.playback.play_back``.  On the command line, the ``repro`` entry
point exposes the same pipeline (``repro synth | play | repair | triage |
bench``).
"""

__version__ = "1.2.0"

from .api import JobRecord, JobSpec, ReproSession
from .lang import compile_source
from .service import ReproService

__all__ = ["JobRecord", "JobSpec", "ReproService", "ReproSession",
           "compile_source", "__version__"]
