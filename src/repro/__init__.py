"""repro: a Python reproduction of "Execution Synthesis" (ESD), EuroSys 2010.

ESD takes a program plus a bug report (coredump) and synthesizes an execution
-- concrete inputs plus a thread schedule -- that deterministically reproduces
the reported bug, with no tracing at the end-user site.

Typical use::

    from repro import compile_source
    from repro.core import esd_synthesize
    from repro.playback import play_back

    module = compile_source(minic_source)
    report = ...                       # BugReport built from a coredump
    result = esd_synthesize(module, report)
    trace = play_back(module, result.execution_file)
"""

__version__ = "1.0.0"

from .lang import compile_source

__all__ = ["compile_source", "__version__"]
