"""Mutation-generated bug corpus (``esd-corpus-v1``).

The corpus closes the evaluation loop the hand-written workloads can't:
it starts from *correct* programs, seeds bugs mechanically with the
inverse images of the repair grammar (so ground truth is known by
construction), and measures the whole pipeline -- reproduction rate,
localization rank, repair rate -- per mutation class, deterministically.
"""

from .mutations import MUTATION_CLASSES, Mutation, enumerate_mutations
from .runner import (
    SCHEMA,
    CorpusProgram,
    MutantOutcome,
    default_programs,
    mutant_workload,
    run_corpus,
    run_mutant,
    select_mutations,
)

__all__ = [
    "MUTATION_CLASSES",
    "Mutation",
    "SCHEMA",
    "CorpusProgram",
    "MutantOutcome",
    "default_programs",
    "enumerate_mutations",
    "mutant_workload",
    "run_corpus",
    "run_mutant",
    "select_mutations",
]
