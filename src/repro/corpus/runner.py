"""Corpus pipeline: mutate -> manifest -> synth -> localize -> repair.

``run_corpus`` turns correct source programs into a measured bug corpus:
seeded mutation selection, a concrete trigger hunt per mutant (the
simulated end-user crash), then the full ESD pipeline on the resulting
coredump, scored against the mutation's ground-truth statement.  The
result is a versioned ``esd-corpus-v1`` document with per-mutation-class
reproduction / localization-rank / repair rates.

Determinism contract: the same (programs, seed, count) yields a
byte-identical document.  Budgets are instruction counts, never
wall-clock; every rate is rounded; repair patch entries carry only the
(kind, function, line, template-description) tuple -- hole names and
solved bindings are process-global and excluded.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence

from .. import ir
from ..baselines import Directive, ForcedSchedulePolicy
from ..coredump import BugReport, coredump_from_state
from ..core import ESDConfig
from ..obs import MetricsRegistry
from ..repair import RepairConfig
from ..search import SearchBudget
from ..symbex import BugKind, ConcreteEnv, ExecConfig, Executor, RecordedInputs
from ..workloads.base import Workload
from .mutations import MUTATION_CLASSES, Mutation, enumerate_mutations

SCHEMA = "esd-corpus-v1"

# Per-mutant concrete trigger budget (steps, not seconds) and the caps for
# the synthesis/validation searches.  Instruction counts keep the document
# byte-reproducible across machines; the seconds cap is a safety net that
# no in-budget run should ever reach.
_TRIGGER_MAX_STEPS = 60_000
_SEARCH_BUDGET = dict(
    max_instructions=400_000, max_states=20_000, max_seconds=3600.0,
)
_MAX_SCHEDULES = 12


@dataclass(slots=True)
class CorpusProgram:
    """A correct source program the corpus seeds bugs into."""

    name: str
    source: str
    lang: str = "python"  # 'python' | 'esd'
    # The concrete input battery the trigger hunt tries, in order.
    inputs: Sequence[RecordedInputs] = (RecordedInputs(),)
    # For threaded programs: also try preemption schedules derived from the
    # mutant's unlock sites (from_tid -> to_tid after each unlock).
    schedule_preemptions: Sequence[tuple[int, int]] = ()

    def compile(self) -> ir.Module:
        if self.lang == "python":
            from ..frontend import compile_python_source

            return compile_python_source(self.source, self.name)
        from ..lang import compile_source

        return compile_source(self.source, self.name)


def default_programs() -> list[CorpusProgram]:
    """The bundled corpus bases: the *fixed* real-Python workloads."""
    from ..workloads.pyprograms import FIXED_SOURCES

    return [
        CorpusProgram(
            name="pytally",
            source=FIXED_SOURCES["pytally"],
            inputs=(
                RecordedInputs(env={"MODE": "A"}),
                RecordedInputs(env={"MODE": "B"}),
                RecordedInputs(),
            ),
        ),
        CorpusProgram(
            name="pyledger",
            source=FIXED_SOURCES["pyledger"],
            inputs=(
                RecordedInputs(env={"PLAN": "H"}),
                RecordedInputs(env={"PLAN": "L"}),
                RecordedInputs(),
            ),
        ),
        CorpusProgram(
            name="pyrlock",
            source=FIXED_SOURCES["pyrlock"],
            inputs=(RecordedInputs(),),
            schedule_preemptions=((1, 2), (2, 1)),
        ),
    ]


@dataclass(slots=True)
class MutantOutcome:
    """Everything the pipeline learned about one mutant."""

    mutant_id: str
    program: str
    mutation: Mutation
    status: str = "selected"  # invalid | benign | manifested
    bug_kind: Optional[BugKind] = None
    bug_type: Optional[str] = None
    trigger_driver: Optional[dict] = None
    reproduced: Optional[bool] = None
    localization_rank: Optional[int] = None
    top3: Optional[bool] = None
    repair_attempted: bool = False
    repaired: Optional[bool] = None
    repaired_at_truth: Optional[bool] = None
    patch: Optional[dict] = None

    def to_dict(self) -> dict:
        doc = {
            "id": self.mutant_id,
            "program": self.program,
            "class": self.mutation.kind,
            "site": {
                "function": self.mutation.function,
                "line": self.mutation.line,
                "ref": str(self.mutation.ref),
            },
            "description": self.mutation.description,
            "status": self.status,
        }
        if self.bug_kind is not None:
            doc["bug_kind"] = self.bug_kind.value
            doc["bug_type"] = self.bug_type
            doc["trigger"] = self.trigger_driver
            doc["reproduced"] = self.reproduced
            doc["localization_rank"] = self.localization_rank
            doc["top3"] = self.top3
        if self.repair_attempted:
            doc["repaired"] = self.repaired
            doc["repaired_at_truth"] = self.repaired_at_truth
            doc["patch"] = self.patch
        return doc


@dataclass(slots=True)
class _Manifestation:
    state: object
    inputs: RecordedInputs
    directive: Optional[Directive]
    driver: dict


def _search_config() -> ESDConfig:
    return ESDConfig(budget=SearchBudget(**_SEARCH_BUDGET))


def select_mutations(
    module: ir.Module, seed: int, count: int
) -> tuple[list[Mutation], int]:
    """A seeded, class-stratified sample of ``count`` mutations (all of
    them when fewer exist).  Every mutation class that has at least one
    site gets at least one pick, so rare classes (``lock-swap`` typically
    has a single site) are never sampled away.  Returns (selection, total
    enumerated)."""
    sites = enumerate_mutations(module)
    if count >= len(sites):
        return list(sites), len(sites)
    rng = random.Random(seed)
    picked: set[int] = set()
    for cls in MUTATION_CLASSES:
        indices = [i for i, s in enumerate(sites) if s.kind == cls]
        if indices and len(picked) < count:
            picked.add(rng.choice(indices))
    remaining = [i for i in range(len(sites)) if i not in picked]
    picked.update(rng.sample(remaining, count - len(picked)))
    return [sites[i] for i in sorted(picked)], len(sites)


def _verified(module: ir.Module) -> bool:
    try:
        ir.verify_module(module)
    except Exception:
        return False
    return True


def _classify(kind: BugKind) -> str:
    if kind is BugKind.DEADLOCK:
        return "deadlock"
    if kind is BugKind.DATA_RACE:
        return "race"
    return "crash"


def _schedule_battery(
    module: ir.Module, preemptions: Sequence[tuple[int, int]]
) -> list[Optional[Directive]]:
    """No forced schedule first, then one preemption per unlock site."""
    battery: list[Optional[Directive]] = [None]
    unlocks = [
        ref
        for name in module.functions
        for ref, instr in module.functions[name].iter_instructions()
        if isinstance(instr, ir.MutexUnlock)
    ]
    for from_tid, to_tid in preemptions:
        for ref in unlocks:
            battery.append(Directive(ref, from_tid, to_tid))
            if len(battery) > _MAX_SCHEDULES:
                return battery[: _MAX_SCHEDULES + 1]
    return battery


def _hunt_trigger(
    module: ir.Module, program: CorpusProgram
) -> Optional[_Manifestation]:
    """Concretely run the mutant over the program's input battery (and, for
    threaded programs, its preemption schedules) until a bug manifests."""
    schedules = _schedule_battery(module, program.schedule_preemptions)
    for inputs in program.inputs:
        for directive in schedules:
            policy = (
                ForcedSchedulePolicy([directive]) if directive is not None
                else None
            )
            executor = Executor(
                module, env=ConcreteEnv(inputs), policy=policy,
                config=ExecConfig(),
            )
            try:
                state = executor.run_to_completion(
                    executor.initial_state(), max_steps=_TRIGGER_MAX_STEPS
                )
            except RuntimeError:
                continue  # non-deterministic or runaway execution
            if state.status == "bug" and state.bug is not None:
                driver = {
                    "env": dict(sorted((inputs.env or {}).items())),
                    "schedule": str(directive.ref) if directive else None,
                }
                return _Manifestation(state, inputs, directive, driver)
    return None


def run_mutant(
    program: CorpusProgram,
    base_module: ir.Module,
    mutation: Mutation,
    mutant_id: str,
    *,
    with_repair: bool = False,
) -> MutantOutcome:
    """The full pipeline for one mutant."""
    from ..api import ReproSession

    outcome = MutantOutcome(mutant_id, program.name, mutation)
    module = mutation.apply(base_module)
    if not _verified(module):
        outcome.status = "invalid"
        return outcome
    manifest = _hunt_trigger(module, program)
    if manifest is None:
        outcome.status = "benign"
        return outcome
    state = manifest.state
    outcome.status = "manifested"
    outcome.bug_kind = state.bug.kind  # type: ignore[attr-defined]
    outcome.bug_type = _classify(outcome.bug_kind)
    outcome.trigger_driver = manifest.driver

    dump = coredump_from_state(module, state)  # type: ignore[arg-type]
    report = BugReport(dump, outcome.bug_type,
                       description=mutation.description)
    session = ReproSession(module, config=_search_config())
    try:
        result = session.synthesize(report)
        outcome.reproduced = bool(result.found)
    except Exception:
        # Mutants can manifest bugs whose coredumps the goal extractor
        # rejects (e.g. a deadlock report with no blocked sync frame).
        # That is a measured non-reproduction, not a corpus failure.
        outcome.reproduced = False
    if not outcome.reproduced:
        outcome.top3 = False
        return outcome

    try:
        localization = session.localize(
            report, failing=result.execution_file, config=_search_config()
        )
        outcome.localization_rank = localization.rank_of(
            mutation.function, mutation.line
        )
    except Exception:
        outcome.localization_rank = None
    outcome.top3 = (
        outcome.localization_rank is not None
        and outcome.localization_rank <= 3
    )

    if with_repair:
        outcome.repair_attempted = True
        try:
            repair_result = session.repair(
                report,
                failing=result.execution_file,
                config=RepairConfig(esd=_search_config()),
            )
        except Exception:
            outcome.repaired = False
            outcome.repaired_at_truth = False
            return outcome
        outcome.repaired = bool(repair_result.found)
        patch = repair_result.patch
        if patch is not None:
            candidate = patch.candidate
            outcome.patch = {
                "kind": candidate.kind,
                "function": candidate.function,
                "line": candidate.line,
            }
            outcome.repaired_at_truth = (
                outcome.repaired
                and candidate.function == mutation.function
                and candidate.line == mutation.line
            )
        else:
            outcome.repaired_at_truth = False
    return outcome


def run_corpus(
    *,
    seed: int = 0,
    count: int = 100,
    programs: Optional[Sequence[CorpusProgram]] = None,
    repair_every: int = 5,
    on_progress=None,
) -> dict:
    """Generate and evaluate a corpus; returns the ``esd-corpus-v1`` doc.

    ``count`` mutants are split evenly across the programs.  Repair (the
    slowest stage) runs on every ``repair_every``-th manifested mutant per
    program; 1 repairs everything, 0 disables repair.
    """
    programs = list(programs if programs is not None else default_programs())
    if not programs:
        raise ValueError("corpus needs at least one program")
    registry = _corpus_registry()
    outcomes: list[MutantOutcome] = []
    program_meta = []
    share = count // len(programs)
    extra = count % len(programs)
    for position, program in enumerate(programs):
        base_module = program.compile()
        want = share + (1 if position < extra else 0)
        selection, total = select_mutations(
            base_module, seed + position, want
        )
        program_meta.append({
            "name": program.name,
            "lang": program.lang,
            "sites_total": total,
            "selected": len(selection),
        })
        manifested_seen = 0
        for index, mutation in enumerate(selection):
            mutant_id = f"{program.name}-{seed}-{index:04d}"
            with_repair = False
            if repair_every:
                # Decide from deterministic pipeline state (how many
                # manifested so far), never from an RNG shared with
                # selection.
                with_repair = manifested_seen % repair_every == 0
            outcome = run_mutant(
                program, base_module, mutation, mutant_id,
                with_repair=with_repair,
            )
            if outcome.status == "manifested":
                manifested_seen += 1
            if outcome.status != "manifested" and outcome.repair_attempted:
                outcome.repair_attempted = False
            _count_outcome(registry, outcome)
            outcomes.append(outcome)
            if on_progress is not None:
                on_progress(program.name, index + 1, len(selection), outcome)
    return _document(seed, count, repair_every, program_meta, outcomes,
                     registry)


def _rate(numerator: int, denominator: int) -> float:
    return round(numerator / denominator, 4) if denominator else 0.0


# Pipeline-stage counter names, in pipeline order.  These become the
# ``esd_corpus_*`` counter family in the registry and the document's
# embedded ``esd-metrics-v1`` snapshot.
_STAGE_COUNTERS = {
    "esd_corpus_selected_total": "mutation sites sampled into the corpus",
    "esd_corpus_invalid_total": "mutants the IR verifier rejected",
    "esd_corpus_benign_total": "mutants no concrete trigger manifested",
    "esd_corpus_manifested_total": "mutants that concretely crashed",
    "esd_corpus_reproduced_total": "manifested bugs ESD reproduced",
    "esd_corpus_top3_total": "reproductions localized in the top 3",
    "esd_corpus_repair_attempted_total": "reproductions repair ran on",
    "esd_corpus_repaired_total": "repairs that validated",
}


def _corpus_registry() -> MetricsRegistry:
    """A registry with the ``esd_corpus_*`` pipeline counters pre-created
    so a snapshot always carries the full family (zeros included)."""
    registry = MetricsRegistry()
    for name, help_ in _STAGE_COUNTERS.items():
        registry.counter(name, help_)
    return registry


def _count_outcome(registry: MetricsRegistry, outcome: MutantOutcome) -> None:
    """Fold one finished mutant into the pipeline counters.

    Only deterministic pipeline facts are counted (never timings or
    process state) so the embedded snapshot keeps the document's
    byte-reproducibility contract.
    """
    registry.counter("esd_corpus_selected_total").inc()
    if outcome.status in ("invalid", "benign", "manifested"):
        registry.counter(f"esd_corpus_{outcome.status}_total").inc()
    if outcome.reproduced:
        registry.counter("esd_corpus_reproduced_total").inc()
    if outcome.top3:
        registry.counter("esd_corpus_top3_total").inc()
    if outcome.repair_attempted:
        registry.counter("esd_corpus_repair_attempted_total").inc()
    if outcome.repaired:
        registry.counter("esd_corpus_repaired_total").inc()


def _document(
    seed: int,
    count: int,
    repair_every: int,
    program_meta: list[dict],
    outcomes: list[MutantOutcome],
    registry: Optional[MetricsRegistry] = None,
) -> dict:
    classes = {}
    for cls in MUTATION_CLASSES:
        rows = [o for o in outcomes if o.mutation.kind == cls]
        if not rows:
            continue
        manifested = [o for o in rows if o.status == "manifested"]
        reproduced = [o for o in manifested if o.reproduced]
        top3 = [o for o in manifested if o.top3]
        attempted = [o for o in manifested if o.repair_attempted]
        repaired = [o for o in attempted if o.repaired]
        classes[cls] = {
            "selected": len(rows),
            "invalid": sum(o.status == "invalid" for o in rows),
            "benign": sum(o.status == "benign" for o in rows),
            "manifested": len(manifested),
            "reproduced": len(reproduced),
            "repro_rate": _rate(len(reproduced), len(manifested)),
            "top3": len(top3),
            "top3_rate": _rate(len(top3), len(manifested)),
            "repair_attempted": len(attempted),
            "repaired": len(repaired),
            "repair_rate": _rate(len(repaired), len(attempted)),
        }
    manifested = [o for o in outcomes if o.status == "manifested"]
    reproduced = [o for o in manifested if o.reproduced]
    top3 = [o for o in manifested if o.top3]
    attempted = [o for o in manifested if o.repair_attempted]
    repaired = [o for o in attempted if o.repaired]
    if registry is None:
        registry = _corpus_registry()
        for outcome in outcomes:
            _count_outcome(registry, outcome)
    return {
        "schema": SCHEMA,
        "seed": seed,
        "requested": count,
        "repair_every": repair_every,
        "budget": dict(_SEARCH_BUDGET),
        "programs": program_meta,
        "mutants": [o.to_dict() for o in outcomes],
        "classes": classes,
        "metrics": registry.snapshot(
            meta={"source": "corpus", "seed": seed, "requested": count}
        ),
        "totals": {
            "selected": len(outcomes),
            "manifested": len(manifested),
            "reproduced": len(reproduced),
            "repro_rate": _rate(len(reproduced), len(manifested)),
            "top3": len(top3),
            "top3_rate": _rate(len(top3), len(manifested)),
            "repair_attempted": len(attempted),
            "repaired": len(repaired),
            "repair_rate": _rate(len(repaired), len(attempted)),
        },
    }


def mutant_workload(
    program: CorpusProgram,
    mutation: Mutation,
    outcome: MutantOutcome,
    *,
    register: bool = False,
) -> Workload:
    """Wrap a manifested mutant as a first-class workload: ``repro submit
    --workload``, the triage DB, and every CLI verb then treat it exactly
    like the bundled programs."""
    if outcome.status != "manifested" or outcome.bug_kind is None:
        raise ValueError(f"mutant {outcome.mutant_id} never manifested a bug")
    module = mutation.apply(program.compile())
    directive = None
    if outcome.trigger_driver and outcome.trigger_driver.get("schedule"):
        schedule_ref = outcome.trigger_driver["schedule"]
        preemptions = program.schedule_preemptions
        for ref in _schedule_battery(module, preemptions)[1:]:
            if ref is not None and str(ref.ref) == schedule_ref:
                directive = ref
                break
    env = dict(outcome.trigger_driver.get("env") or {}) \
        if outcome.trigger_driver else {}
    captured = directive

    def _directives(_module: ir.Module) -> list[Directive]:
        assert captured is not None
        return [captured]

    workload = Workload(
        name=f"corpus-{outcome.mutant_id}",
        source=program.source,
        bug_type=outcome.bug_type or "crash",
        expected_kind=outcome.bug_kind,
        description=f"corpus mutant: {mutation.description}",
        trigger_inputs=RecordedInputs(env=env),
        directives=_directives if captured is not None else None,
        lang=program.lang,
    )
    workload._module = module  # pre-built: the mutation lives in the IR
    if register:
        from ..workloads import register as register_workload

        register_workload(workload, replace=True)
    return workload
