"""Seedable IR mutation engine: the inverse images of the repair grammar.

Each mutation class undoes one repair template (PR 5's grammar), so every
generated bug is, by construction, fixable by the grammar and its ground
truth is the mutated statement:

=============  =======================  ================================
mutation       inverse of template      seeded defect
=============  =======================  ================================
``cmp-flip``   cmp-op                   wrong comparison operator
``off-by-one`` const-hole               constant off by one
``guard-drop`` bounds-guard/branch-flip branch forced to one arm
``lock-swap``  unlock-hoist             unlock sunk past a later acquire
``stmt-del``   line-drop                stored effect deleted
=============  =======================  ================================

Mutations operate on the IR, not on source text, so they apply uniformly
to modules compiled from MiniC *and* from real Python.  Enumeration is
fully deterministic (module order), selection is driven by a seeded
``random.Random`` -- the same (module, seed, count) always yields the
same corpus.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .. import ir
from ..ir import InstrRef
from ..repair import clone_module

MUTATION_CLASSES = (
    "cmp-flip", "off-by-one", "guard-drop", "lock-swap", "stmt-del",
)

# Flipping to the *negation* or a boundary-shifted neighbour; identity
# excluded.  Deterministic order matters for reproducibility.
_CMP_FLIPS = {
    "==": ("!=", "<=", ">="),
    "!=": ("==",),
    "<": ("<=", ">", ">="),
    "<=": ("<", ">=", ">"),
    ">": (">=", "<", "<="),
    ">=": (">", "<=", "<"),
}


@dataclass(slots=True)
class Mutation:
    """One concrete, applicable mutation with its ground truth."""

    kind: str  # one of MUTATION_CLASSES
    ref: InstrRef  # the mutated statement
    function: str
    line: int  # ground-truth source line
    description: str
    # Class-specific payload (replacement op, const delta, forced arm,
    # insertion point...) -- everything needed to re-apply deterministically.
    detail: dict = field(default_factory=dict)

    @property
    def key(self) -> tuple[str, str, int]:
        return (self.kind, self.function, self.line)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "function": self.function,
            "line": self.line,
            "ref": str(self.ref),
            "description": self.description,
            "detail": dict(sorted(self.detail.items())),
        }

    def apply(self, module: ir.Module) -> ir.Module:
        """A mutated *clone* of ``module``; the input is never touched."""
        mutant = clone_module(module)
        block = mutant.functions[self.ref.function].blocks[self.ref.block]
        index = self.ref.index
        instr = block.instruction_at(index)
        if self.kind == "cmp-flip":
            assert isinstance(instr, ir.BinOp)
            instr.op = self.detail["to"]
        elif self.kind == "off-by-one":
            assert isinstance(instr, ir.BinOp)
            which = self.detail["operand"]
            old = instr.lhs if which == 0 else instr.rhs
            assert isinstance(old, ir.Const)
            bumped = ir.Const(old.value + self.detail["delta"])
            if which == 0:
                instr.lhs = bumped
            else:
                instr.rhs = bumped
        elif self.kind == "guard-drop":
            assert isinstance(instr, ir.CondBr)
            instr.cond = ir.Const(self.detail["force"])
        elif self.kind == "lock-swap":
            assert isinstance(instr, ir.MutexUnlock)
            unlock = block.instrs.pop(index)
            # The later acquire slid one slot down; re-insert after it.
            block.instrs.insert(self.detail["past_index"], unlock)
        elif self.kind == "stmt-del":
            assert isinstance(instr, ir.Store)
            block.instrs[index] = ir.Assign(
                ir.Reg("__mut.nop"), ir.Const(0), line=instr.line
            )
        else:  # pragma: no cover
            raise ValueError(f"unknown mutation kind {self.kind!r}")
        return mutant


def enumerate_mutations(module: ir.Module) -> list[Mutation]:
    """Every applicable mutation, in deterministic module order."""
    out: list[Mutation] = []
    for func_name in module.functions:
        func = module.functions[func_name]
        for label in func.blocks:
            block = func.blocks[label]
            for index, instr in enumerate(block.instrs):
                ref = InstrRef(func_name, label, index)
                out.extend(_mutations_for(block, ref, instr))
            terminator = block.terminator
            if terminator is not None:
                ref = InstrRef(func_name, label, len(block.instrs))
                out.extend(_mutations_for(block, ref, terminator))
    return out


def _mutations_for(
    block: ir.BasicBlock, ref: InstrRef, instr: ir.Instr
) -> list[Mutation]:
    out: list[Mutation] = []
    if isinstance(instr, ir.BinOp):
        if instr.op in _CMP_FLIPS:
            for to in _CMP_FLIPS[instr.op]:
                out.append(Mutation(
                    "cmp-flip", ref, ref.function, instr.line,
                    f"{ref}: comparison {instr.op!r} -> {to!r}",
                    {"from": instr.op, "to": to},
                ))
        for which, operand in ((0, instr.lhs), (1, instr.rhs)):
            if isinstance(operand, ir.Const):
                for delta in (1, -1):
                    out.append(Mutation(
                        "off-by-one", ref, ref.function, instr.line,
                        f"{ref}: constant {operand.value} -> "
                        f"{operand.value + delta}",
                        {"operand": which, "delta": delta},
                    ))
    elif isinstance(instr, ir.CondBr) and not isinstance(instr.cond, ir.Const):
        for force in (1, 0):
            arm = instr.then_target if force else instr.else_target
            out.append(Mutation(
                "guard-drop", ref, ref.function, instr.line,
                f"{ref}: guard dropped, always {arm}",
                {"force": force},
            ))
    elif isinstance(instr, ir.MutexUnlock):
        swap = _lock_swap_for(block, ref, instr)
        if swap is not None:
            out.append(swap)
    if isinstance(instr, ir.Store):
        out.append(Mutation(
            "stmt-del", ref, ref.function, instr.line,
            f"{ref}: store deleted",
            {},
        ))
    return out


def _lock_swap_for(
    block: ir.BasicBlock, ref: InstrRef, unlock: ir.MutexUnlock
) -> Optional[Mutation]:
    """An unlock followed (same block) by an acquire of a *different* mutex
    sinks past it: the inverse of the unlock-hoist repair, re-creating the
    hold-while-blocking lock-order bug."""
    for later, candidate in enumerate(block.instrs[ref.index + 1:],
                                      start=ref.index + 1):
        if isinstance(candidate, ir.MutexLock):
            if candidate.mutex != unlock.mutex:
                return Mutation(
                    "lock-swap", ref, ref.function, unlock.line,
                    f"{ref}: unlock sunk past the acquire at index {later}",
                    {"past_index": later},
                )
            return None
        if isinstance(candidate, ir.MutexUnlock):
            return None
    return None
