"""Coredumps, bug reports, and stack repair (paper sections 2, 3.1, 8)."""

from .dump import (
    BugReport,
    Coredump,
    StackFrame,
    ThreadDump,
    coredump_from_state,
    corrupt_stack,
    repair_stack,
)

__all__ = [
    "BugReport",
    "Coredump",
    "StackFrame",
    "ThreadDump",
    "coredump_from_state",
    "corrupt_stack",
    "repair_stack",
]
