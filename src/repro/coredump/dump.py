"""Coredumps and bug reports.

The coredump is ESD's only runtime input (paper section 2): per-thread call
stacks, the faulting instruction, fault values, and -- for hangs -- what each
thread is blocked on.  Our dumps are captured from a concrete VM run of the
buggy input/schedule (the "end-user execution"); crucially, the inputs and
the schedule that produced the dump are *not* part of it, mirroring the
paper's zero-tracing premise.

Dumps serialize to plain dicts (JSON-able) so they can be written next to a
bug report, passed to ``esdsynth``, or corrupted/repaired for the ghttpd
scenario (section 7.1: "whose coredump contained a corrupt call stack").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .. import ir
from ..ir import InstrRef
from ..schema import check_schema_version
from ..symbex.bugs import BugKind
from ..symbex.state import BLOCKED, ExecutionState

COREDUMP_SCHEMA_VERSION = 1
BUGREPORT_SCHEMA_VERSION = 1


@dataclass(slots=True)
class StackFrame:
    function: str
    ref: InstrRef
    line: int

    def to_dict(self) -> dict:
        return {"function": self.function, "ref": repr(self.ref), "line": self.line}

    @classmethod
    def from_dict(cls, data: dict) -> "StackFrame":
        return cls(data["function"], InstrRef.parse(data["ref"]), data["line"])


@dataclass(slots=True)
class ThreadDump:
    tid: int
    frames: list[StackFrame]  # innermost first, like a gdb backtrace
    status: str
    blocked_kind: Optional[str] = None  # 'mutex' | 'cond' | 'join'
    blocked_resource: Optional[str] = None

    @property
    def top(self) -> Optional[StackFrame]:
        return self.frames[0] if self.frames else None

    def functions_outermost_first(self) -> list[str]:
        return [frame.function for frame in reversed(self.frames)]

    def to_dict(self) -> dict:
        return {
            "tid": self.tid,
            "frames": [f.to_dict() for f in self.frames],
            "status": self.status,
            "blocked_kind": self.blocked_kind,
            "blocked_resource": self.blocked_resource,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ThreadDump":
        return cls(
            tid=data["tid"],
            frames=[StackFrame.from_dict(f) for f in data["frames"]],
            status=data["status"],
            blocked_kind=data.get("blocked_kind"),
            blocked_resource=data.get("blocked_resource"),
        )


@dataclass(slots=True)
class Coredump:
    program: str
    manifestation: str  # 'crash' | 'hang'
    threads: list[ThreadDump]
    faulting_tid: Optional[int] = None
    bug_kind: Optional[BugKind] = None
    fault_ref: Optional[InstrRef] = None
    fault_line: int = 0
    fault_value: Optional[int] = None
    fault_message: str = ""
    corrupted: bool = False

    def thread(self, tid: int) -> ThreadDump:
        for thread in self.threads:
            if thread.tid == tid:
                return thread
        raise KeyError(f"no thread {tid} in coredump")

    def blocked_threads(self) -> list[ThreadDump]:
        return [t for t in self.threads if t.status == BLOCKED]

    def to_dict(self) -> dict:
        return {
            "schema_version": COREDUMP_SCHEMA_VERSION,
            "program": self.program,
            "manifestation": self.manifestation,
            "threads": [t.to_dict() for t in self.threads],
            "faulting_tid": self.faulting_tid,
            "bug_kind": self.bug_kind.value if self.bug_kind else None,
            "fault_ref": repr(self.fault_ref) if self.fault_ref else None,
            "fault_line": self.fault_line,
            "fault_value": self.fault_value,
            "fault_message": self.fault_message,
            "corrupted": self.corrupted,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Coredump":
        check_schema_version(data, COREDUMP_SCHEMA_VERSION, "coredump")
        kind = data.get("bug_kind")
        return cls(
            program=data["program"],
            manifestation=data["manifestation"],
            threads=[ThreadDump.from_dict(t) for t in data["threads"]],
            faulting_tid=data.get("faulting_tid"),
            bug_kind=BugKind(kind) if kind else None,
            fault_ref=InstrRef.parse(data["fault_ref"]) if data.get("fault_ref") else None,
            fault_line=data.get("fault_line", 0),
            fault_value=data.get("fault_value"),
            fault_message=data.get("fault_message", ""),
            corrupted=data.get("corrupted", False),
        )


@dataclass(slots=True)
class BugReport:
    """What a developer receives: the coredump plus a bug-type hint, the two
    inputs of ``esdsynth`` (section 8's usage model)."""

    coredump: Coredump
    bug_type: str  # 'crash' | 'deadlock' | 'race'
    description: str = ""
    metadata: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "schema_version": BUGREPORT_SCHEMA_VERSION,
            "coredump": self.coredump.to_dict(),
            "bug_type": self.bug_type,
            "description": self.description,
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BugReport":
        check_schema_version(data, BUGREPORT_SCHEMA_VERSION, "bug report")
        return cls(
            coredump=Coredump.from_dict(data["coredump"]),
            bug_type=data["bug_type"],
            description=data.get("description", ""),
            metadata=dict(data.get("metadata", {})),
        )


def coredump_from_state(module: ir.Module, state: ExecutionState) -> Coredump:
    """Capture a coredump from a terminal bug state of a concrete run."""
    if state.status != "bug" or state.bug is None:
        raise ValueError("coredump requires a state that hit a bug")
    bug = state.bug
    threads: list[ThreadDump] = []
    for thread in state.threads.values():
        if thread.status == "exited":
            continue
        frames = [
            StackFrame(ref.function, ref, module.instruction(ref).line
                       if _valid_ref(module, ref) else 0)
            for ref in thread.call_stack()
        ]
        blocked_kind = None
        blocked_resource = None
        if thread.status == BLOCKED and thread.blocked_on:
            blocked_kind = thread.blocked_on[0]
            blocked_resource = f"{thread.blocked_on[0]}@{thread.blocked_on[1]}"
        threads.append(
            ThreadDump(thread.tid, frames, thread.status, blocked_kind, blocked_resource)
        )
    return Coredump(
        program=module.name,
        manifestation="hang" if bug.kind.is_hang else "crash",
        threads=threads,
        faulting_tid=bug.tid,
        bug_kind=bug.kind,
        fault_ref=bug.ref,
        fault_line=bug.line,
        fault_value=bug.fault_value,
        fault_message=bug.message,
    )


def _valid_ref(module: ir.Module, ref: InstrRef) -> bool:
    func = module.functions.get(ref.function)
    if func is None:
        return False
    block = func.blocks.get(ref.block)
    return block is not None and ref.index <= len(block.instrs)


def corrupt_stack(dump: Coredump, tid: Optional[int] = None) -> Coredump:
    """Simulate the ghttpd scenario: the faulting thread's call stack is
    smashed by the overflow and only the innermost frame survives (garbled)."""
    target = tid if tid is not None else dump.faulting_tid
    corrupted = Coredump.from_dict(dump.to_dict())
    corrupted.corrupted = True
    for thread in corrupted.threads:
        if thread.tid == target:
            thread.frames = thread.frames[:1]
    return corrupted


def repair_stack(dump: Coredump, module: ir.Module) -> Coredump:
    """Reconstruct a corrupted call stack (the paper repaired ghttpd's by
    hand with gdb; this is the automated variant they describe as future
    work).  Strategy: walk the call graph backward from the faulting frame's
    function to main, choosing the shortest caller chain; resume points are
    the call sites."""
    from ..analysis.cfg import build_call_graph

    if not dump.corrupted or dump.faulting_tid is None:
        return dump
    graph = build_call_graph(module)
    repaired = Coredump.from_dict(dump.to_dict())
    repaired.corrupted = False
    thread = repaired.thread(dump.faulting_tid)
    if not thread.frames:
        return repaired
    chain = _caller_chain(graph, thread.frames[0].function)
    frames = [thread.frames[0]]
    for caller, callee in chain:
        site = _first_call_site(graph, caller, callee)
        if site is None:
            break
        resume = InstrRef(site.function, site.block, site.index + 1)
        line = module.instruction(site).line
        frames.append(StackFrame(caller, resume, line))
    thread.frames = frames
    return repaired


def _caller_chain(graph, target: str) -> list[tuple[str, str]]:
    """Shortest (caller, callee) chain from main down to ``target``,
    returned innermost-first: [(caller_of_target, target), ..., ('main', x)]."""
    from collections import deque

    if target == "main":
        return []
    parents: dict[str, str] = {}
    queue = deque(["main"])
    seen = {"main"}
    while queue:
        name = queue.popleft()
        for callee in graph.callees.get(name, ()):
            if callee not in seen:
                seen.add(callee)
                parents[callee] = name
                queue.append(callee)
    if target not in parents:
        return []
    chain: list[tuple[str, str]] = []
    node = target
    while node != "main":
        parent = parents[node]
        chain.append((parent, node))
        node = parent
    return chain


def _first_call_site(graph, caller: str, callee: str):
    for (func, _), sites in graph.sites_by_block.items():
        if func != caller:
            continue
        for site in sites:
            if callee in site.targets:
                return site.ref
    return None
