"""The content-addressed artifact store.

Synthesis artifacts -- execution files, coredumps/bug reports, exploration
checkpoints, triage databases, job specs -- are persisted by the digest of
their canonical byte form, so identical artifacts are stored once no matter
how many jobs produce them, and a digest in a job record is a durable,
location-independent reference.

On-disk layout (``root`` is the store directory)::

    root/
      index.json               versioned JSON index: digest -> {kind, size,
                               created_at}
      objects/ab/abcdef...     one file per object, sharded by digest prefix
      jobs/<job_id>.json       job records (mutable side-store; the objects
                               they reference are content-addressed)

``root=None`` gives an in-memory store with the same API -- what a
single-tenant :class:`~repro.api.ReproSession` uses so artifacts and
deduplication work without touching disk.

Writes are atomic (write-then-rename) and idempotent: putting bytes that
already exist is a no-op returning the same digest.  :meth:`gc` sweeps
objects not reachable from a caller-supplied live set (the service passes
every digest referenced by a job record).
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import Iterable, Optional, Union

from ..schema import (
    SchemaVersionError,
    atomic_write_bytes,
    atomic_write_text,
    canonical_json_bytes,
    check_schema_version,
    content_digest,
)

STORE_FORMAT = "esd-artifact-store-v1"
STORE_SCHEMA_VERSION = 1

__all__ = ["ArtifactStore", "StoreError", "UnknownArtifactError",
           "STORE_FORMAT"]


class StoreError(Exception):
    """The store directory is unusable or its index is malformed."""


class UnknownArtifactError(StoreError, KeyError):
    """No object with the requested digest exists in this store."""

    def __init__(self, digest: str) -> None:
        super().__init__(f"no artifact {digest!r} in store")
        self.digest = digest

    def __str__(self) -> str:  # KeyError quotes its arg; keep the message
        return self.args[0]


class ArtifactStore:
    """Content-addressed object store with a versioned index and GC."""

    def __init__(self, root: Optional[Union[str, Path]] = None) -> None:
        self.root = Path(root) if root is not None else None
        self._lock = threading.RLock()
        self._index: dict[str, dict] = {}
        self._objects: dict[str, bytes] = {}  # in-memory mode only
        self._jobs_memory: dict[str, dict] = {}
        if self.root is not None:
            (self.root / "objects").mkdir(parents=True, exist_ok=True)
            (self.root / "jobs").mkdir(parents=True, exist_ok=True)
            self._load_index()
            if not (self.root / "index.json").exists():
                self._save_index()

    @property
    def persistent(self) -> bool:
        return self.root is not None

    # -- objects --------------------------------------------------------------

    def put_bytes(self, data: bytes, kind: str = "blob") -> str:
        """Store a byte string; returns its digest.  Idempotent."""
        digest = content_digest(data)
        with self._lock:
            if digest in self._index:
                return digest
            if self.root is None:
                self._objects[digest] = bytes(data)
            else:
                target = self._object_path(digest)
                target.parent.mkdir(parents=True, exist_ok=True)
                atomic_write_bytes(target, data)
            entry = {
                "kind": kind,
                "size": len(data),
                "created_at": time.time(),
            }
            self._index[digest] = entry
            # O(1) per put: new entries go to an append-only journal and
            # are folded into index.json at open/gc time.  Rewriting the
            # whole index on every put would make a long-lived daemon's
            # store writes O(n) each.
            self._append_journal(digest, entry)
        return digest

    def put_json(self, obj, kind: str = "json") -> str:
        """Store a JSON-able object in canonical byte form."""
        return self.put_bytes(canonical_json_bytes(obj), kind)

    def get_bytes(self, digest: str) -> bytes:
        with self._lock:
            if digest not in self._index:
                raise UnknownArtifactError(digest)
            if self.root is None:
                return self._objects[digest]
        try:
            return self._object_path(digest).read_bytes()
        except OSError as exc:
            raise StoreError(
                f"artifact {digest!r} is indexed but unreadable: {exc}"
            ) from exc

    def get_json(self, digest: str):
        return json.loads(self.get_bytes(digest).decode("utf-8"))

    def kind(self, digest: str) -> str:
        with self._lock:
            entry = self._index.get(digest)
            if entry is None:
                raise UnknownArtifactError(digest)
            return entry["kind"]

    def __contains__(self, digest: str) -> bool:
        with self._lock:
            return digest in self._index

    def __len__(self) -> int:
        with self._lock:
            return len(self._index)

    def digests(self, kind: Optional[str] = None) -> list[str]:
        with self._lock:
            return [
                digest for digest, entry in self._index.items()
                if kind is None or entry["kind"] == kind
            ]

    def total_bytes(self) -> int:
        with self._lock:
            return sum(entry["size"] for entry in self._index.values())

    def gc(self, live: Iterable[str]) -> list[str]:
        """Delete every object not in ``live``; returns the removed digests."""
        keep = set(live)
        with self._lock:
            dead = [d for d in self._index if d not in keep]
            for digest in dead:
                del self._index[digest]
                if self.root is None:
                    self._objects.pop(digest, None)
                else:
                    try:
                        self._object_path(digest).unlink()
                    except OSError:
                        pass  # index is authoritative; a stray file is noise
            if dead:
                self._compact()
        return dead

    # -- job records ----------------------------------------------------------
    #
    # Job records are mutable (state transitions), so they live beside the
    # content-addressed objects keyed by job id.  Everything a record
    # references (spec, execution, checkpoint) is an immutable object above.

    def save_job(self, job_id: str, record: dict) -> None:
        with self._lock:
            if self.root is None:
                self._jobs_memory[job_id] = json.loads(
                    json.dumps(record)  # defensive copy, JSON-shaped
                )
                return
            atomic_write_text(self.root / "jobs" / f"{job_id}.json",
                              json.dumps(record, indent=2))

    def load_jobs(self) -> dict[str, dict]:
        with self._lock:
            if self.root is None:
                return dict(self._jobs_memory)
            records: dict[str, dict] = {}
            for path in sorted((self.root / "jobs").glob("*.json")):
                try:
                    records[path.stem] = json.loads(path.read_text())
                except (OSError, ValueError) as exc:
                    raise StoreError(
                        f"unreadable job record {path}: {exc}"
                    ) from exc
            return records

    # -- index ----------------------------------------------------------------

    def _object_path(self, digest: str) -> Path:
        assert self.root is not None
        return self.root / "objects" / digest[:2] / digest

    def _load_index(self) -> None:
        path = self.root / "index.json"
        if not path.exists():
            return
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            raise StoreError(f"unreadable store index {path}: {exc}") from exc
        if not isinstance(data, dict) or data.get("format") != STORE_FORMAT:
            raise StoreError(
                f"{path} is not an artifact-store index "
                f"(format {data.get('format')!r}, expected {STORE_FORMAT!r})"
            )
        try:
            check_schema_version(data, STORE_SCHEMA_VERSION, "artifact store")
        except SchemaVersionError as exc:
            raise StoreError(str(exc)) from exc
        self._index = dict(data.get("objects", {}))
        self._replay_journal()

    def _journal_path(self):
        return self.root / "index.log"

    def _append_journal(self, digest: str, entry: dict) -> None:
        if self.root is None:
            return
        with self._journal_path().open("a", encoding="utf-8") as journal:
            journal.write(json.dumps({"digest": digest, **entry}) + "\n")

    def _replay_journal(self) -> None:
        """Fold journaled puts into the in-memory index, then compact so
        the journal stays short across restarts.  A torn trailing line
        (crash mid-append) is skipped: its object is simply re-put later."""
        journal = self._journal_path()
        if not journal.exists():
            return
        applied = False
        for line in journal.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                continue
            digest = entry.pop("digest", None)
            if digest:
                self._index[digest] = entry
                applied = True
        if applied:
            self._compact()
        else:
            journal.unlink()

    def _compact(self) -> None:
        self._save_index()
        try:
            self._journal_path().unlink()
        except FileNotFoundError:
            pass

    def _save_index(self) -> None:
        if self.root is None:
            return
        atomic_write_text(self.root / "index.json", json.dumps({
            "format": STORE_FORMAT,
            "schema_version": STORE_SCHEMA_VERSION,
            "objects": self._index,
        }, indent=2))
