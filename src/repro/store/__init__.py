"""Content-addressed artifact persistence for the job service."""

from .artifacts import (
    STORE_FORMAT,
    ArtifactStore,
    StoreError,
    UnknownArtifactError,
)

__all__ = [
    "STORE_FORMAT",
    "ArtifactStore",
    "StoreError",
    "UnknownArtifactError",
]
