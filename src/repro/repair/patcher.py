"""The repair pipeline: localize -> synthesize patch -> validate.

``repair()`` is the engine behind :meth:`repro.api.ReproSession.repair`, the
service's ``repair`` job kind, and the ``repro repair`` CLI verb.  Given a
bug report it

1. synthesizes the failing execution with ESD (or accepts one);
2. synthesizes passing executions (clean symbolic terminations) or accepts
   replayable known-good ones;
3. ranks suspect statements from the coverage spectra
   (:mod:`repro.repair.localize`);
4. instantiates patch templates at the top suspects
   (:mod:`repro.repair.templates`), solving symbolic holes against
   "failing run terminates cleanly and passing runs keep their behavior"
   (:mod:`repro.repair.holes`);
5. validates the first surviving candidate with the paper's criterion
   (:mod:`repro.repair.validate`) and returns it as a serializable
   :class:`Patch`.

A :class:`Patch` stores the *edit*, not the module: it can be re-applied to
a freshly compiled module (``apply_to``), which is what makes the stored
artifact durable across daemon restarts.
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from .. import ir
from ..coredump import BugReport
from ..core.execfile import ExecutionFile
from ..core.synthesis import ESDConfig, StaticAnalysisCache, esd_synthesize
from ..schema import (
    SchemaVersionError,
    canonical_json_bytes,
    check_schema_version,
    content_digest,
)
from ..search import SynthesisEvent
from ..solver import Solver
from .holes import (
    concrete_behavior,
    explore_with_holes,
    solve_hole_bindings,
)
from .localize import Localization, localize, synthesize_passing_executions
from .templates import PatchCandidate, TemplateError, candidates_for
from .validate import ValidationResult, validate_patch

PATCH_FORMAT = "esd-patch-v1"
PATCH_SCHEMA_VERSION = 1


@dataclass(slots=True)
class RepairConfig:
    """Knobs for the repair search."""

    # How many ranked suspects to attempt patches at, and how many candidate
    # edits to try in total before giving up.
    max_suspects: int = 5
    max_candidates: int = 48
    # Passing executions: how many to synthesize when none are supplied.
    passing_count: int = 4
    formula: str = "ochiai"
    site_boost: float = 0.5
    # Static crash-site slicing: suspects inside the backward slice from
    # the coredump's crash line get a ranking prior (``slice_boost``) and
    # template instantiation visits slice members first -- statements the
    # slice proves irrelevant to the crash are only tried as a fallback.
    use_slicing: bool = True
    slice_boost: float = 0.25
    # Hole-constraint exploration caps (per candidate, per execution).
    hole_max_states: int = 512
    hole_max_instructions: int = 400_000
    combo_cap: int = 64
    # Budget for ESD runs (failing synthesis when needed, re-synthesis in
    # validation).  None uses ESDConfig defaults / validation defaults.
    esd: Optional[ESDConfig] = None

    def to_dict(self) -> dict:
        return {
            "max_suspects": self.max_suspects,
            "max_candidates": self.max_candidates,
            "passing_count": self.passing_count,
            "formula": self.formula,
            "site_boost": self.site_boost,
            "use_slicing": self.use_slicing,
            "slice_boost": self.slice_boost,
            "hole_max_states": self.hole_max_states,
            "hole_max_instructions": self.hole_max_instructions,
            "combo_cap": self.combo_cap,
            "esd": self.esd.to_dict() if self.esd else None,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RepairConfig":
        esd = data.get("esd")
        return cls(
            max_suspects=data.get("max_suspects", 5),
            max_candidates=data.get("max_candidates", 48),
            passing_count=data.get("passing_count", 4),
            formula=data.get("formula", "ochiai"),
            site_boost=data.get("site_boost", 0.5),
            use_slicing=data.get("use_slicing", True),
            slice_boost=data.get("slice_boost", 0.25),
            hole_max_states=data.get("hole_max_states", 512),
            hole_max_instructions=data.get("hole_max_instructions", 400_000),
            combo_cap=data.get("combo_cap", 64),
            esd=ESDConfig.from_dict(esd) if esd else None,
        )


@dataclass(slots=True)
class Patch:
    """A validated (or at least synthesized) patch, as durable data."""

    program: str
    candidate: PatchCandidate
    bindings: dict[str, int] = field(default_factory=dict)
    suspect_rank: int = 0
    suspect_score: float = 0.0
    validation: Optional[ValidationResult] = None
    # The concrete patched module; rebuilt on demand after deserialization.
    module: Optional[ir.Module] = None

    @property
    def verified(self) -> bool:
        return self.validation is not None and self.validation.ok

    @property
    def description(self) -> str:
        text = self.candidate.description
        if self.bindings:
            values = ", ".join(
                f"?{name} = {value}" for name, value in
                sorted(self.bindings.items())
            )
            text += f" [{values}]"
        return text

    def apply_to(self, module: ir.Module) -> ir.Module:
        """A patched clone of ``module`` (holes concretized)."""
        patched = clone_module(module)
        self.candidate.apply(patched, bindings=self.bindings)
        return patched

    def to_dict(self) -> dict:
        return {
            "format": PATCH_FORMAT,
            "schema_version": PATCH_SCHEMA_VERSION,
            "program": self.program,
            "candidate": self.candidate.to_dict(),
            "bindings": dict(self.bindings),
            "suspect_rank": self.suspect_rank,
            "suspect_score": round(self.suspect_score, 6),
            "verified": self.verified,
            "validation": self.validation.to_dict() if self.validation else None,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Patch":
        if data.get("format") != PATCH_FORMAT:
            raise SchemaVersionError(
                f"not a patch: format {data.get('format')!r} "
                f"(expected {PATCH_FORMAT!r})"
            )
        check_schema_version(data, PATCH_SCHEMA_VERSION, "patch")
        patch = cls(
            program=data["program"],
            candidate=PatchCandidate.from_dict(data["candidate"]),
            bindings=dict(data.get("bindings", {})),
            suspect_rank=data.get("suspect_rank", 0),
            suspect_score=data.get("suspect_score", 0.0),
        )
        validation = data.get("validation")
        if validation is not None:
            from .validate import PassingReplay

            result = ValidationResult()
            result.ok = validation.get("ok", False)
            result.resynthesis_found = validation.get("resynthesis_found", False)
            result.resynthesis_reason = validation.get("resynthesis_reason", "")
            result.failing_clean = validation.get("failing_clean", False)
            result.passing = [
                PassingReplay(
                    index=replay["index"],
                    preserved=replay.get("preserved", False),
                    identical=replay.get("identical", False),
                    detail=replay.get("detail", ""),
                )
                for replay in validation.get("passing", [])
            ]
            result.seconds = validation.get("seconds", 0.0)
            patch.validation = result
        return patch

    def canonical_dict(self) -> dict:
        """The content-addressable form: volatile wall-clock timing is
        zeroed (it lives in the job record instead), so re-synthesizing the
        identical patch yields the identical digest -- the same rule the
        execution-file artifacts follow."""
        data = self.to_dict()
        if data.get("validation"):
            data["validation"]["seconds"] = 0.0
        return data

    def canonical_bytes(self) -> bytes:
        return canonical_json_bytes(self.canonical_dict())

    def digest(self) -> str:
        """Content address of the patch document (timing excluded)."""
        return content_digest(self.canonical_bytes())


@dataclass(slots=True)
class RepairResult:
    """Everything one repair run produced."""

    reason: str  # 'patched' | 'no-failing-execution' | 'no-patch' | 'cancelled'
    patch: Optional[Patch] = None
    localization: Optional[Localization] = None
    failing_execution: Optional[ExecutionFile] = None
    passing_executions: list[ExecutionFile] = field(default_factory=list)
    candidates_tried: int = 0
    candidates_validated: int = 0
    synthesis_seconds: float = 0.0
    seconds: float = 0.0

    @property
    def found(self) -> bool:
        return self.patch is not None and self.patch.verified

    def summary(self) -> dict:
        return {
            "reason": self.reason,
            "found": self.found,
            "description": self.patch.description if self.patch else None,
            "template": self.patch.candidate.kind if self.patch else None,
            "bindings": dict(self.patch.bindings) if self.patch else None,
            "suspects": [
                s.to_dict() for s in (
                    self.localization.top(5) if self.localization else []
                )
            ],
            "passing_executions": len(self.passing_executions),
            "candidates_tried": self.candidates_tried,
            "candidates_validated": self.candidates_validated,
            "identical_replays": (
                self.patch.validation.identical_replays
                if self.patch and self.patch.validation else 0
            ),
            "seconds": round(self.seconds, 6),
        }


def clone_module(module: ir.Module) -> ir.Module:
    """An independent deep copy candidates can mutate freely."""
    return copy.deepcopy(module)


def repair(
    module: ir.Module,
    report: BugReport,
    *,
    config: Optional[RepairConfig] = None,
    failing: Optional[ExecutionFile] = None,
    passing: Optional[Sequence[ExecutionFile]] = None,
    statics: Optional[StaticAnalysisCache] = None,
    solver: Optional[Solver] = None,
    on_progress=None,
    should_stop=None,
) -> RepairResult:
    """Run the full localize -> patch -> validate pipeline for one report."""
    config = config or RepairConfig()
    started = time.monotonic()

    def emit(detail: str) -> None:
        if on_progress is not None:
            on_progress(SynthesisEvent(
                kind="progress", detail=f"repair: {detail}",
                seconds=time.monotonic() - started,
            ))

    def cancelled() -> bool:
        return should_stop is not None and should_stop()

    # 1. The failing execution (ESD's artifact) -------------------------------
    synthesis_seconds = 0.0
    if failing is None:
        emit("synthesizing the failing execution")
        synthesis = esd_synthesize(
            module, report, config.esd, statics=statics, solver=solver,
            on_progress=on_progress, should_stop=should_stop,
        )
        synthesis_seconds = synthesis.total_seconds
        if not synthesis.found:
            return RepairResult(
                reason=("cancelled" if synthesis.reason == "cancelled"
                        else "no-failing-execution"),
                synthesis_seconds=synthesis_seconds,
                seconds=time.monotonic() - started,
            )
        failing = synthesis.execution_file

    # 2. Passing executions ---------------------------------------------------
    passing = list(passing) if passing is not None else []
    if not passing:
        emit("synthesizing passing executions")
        passing = synthesize_passing_executions(
            module, count=config.passing_count, solver=solver,
        )

    # 3. Localization ---------------------------------------------------------
    crash_slice = None
    if config.use_slicing:
        if statics is not None and statics.module is module:
            crash_slice = statics.crash_slice(report)
        else:
            from ..analysis.slice import slice_for_report

            crash_slice = slice_for_report(module, report)
        if crash_slice is not None and not crash_slice.usable:
            crash_slice = None
    emit("localizing from coverage spectra")
    localization = localize(
        module, [failing], passing,
        formula=config.formula, site_boost=config.site_boost,
        slice_lines=crash_slice.lines if crash_slice is not None else None,
        slice_boost=config.slice_boost,
    )

    result = RepairResult(
        reason="no-patch",
        localization=localization,
        failing_execution=failing,
        passing_executions=list(passing),
        synthesis_seconds=synthesis_seconds,
    )

    # Expected behavior of every passing run on the *original* module, the
    # preservation reference (computed once).  A run whose reference cannot
    # be established (non-terminating under concrete scheduling) is dropped
    # alone -- the remaining runs still constrain every candidate.
    usable, expected = [], []
    for execution in passing:
        try:
            expected.append(concrete_behavior(module, execution.inputs))
            usable.append(execution)
        except RuntimeError:
            continue
    passing = usable
    result.passing_executions = list(passing)

    # 4./5. Candidate search --------------------------------------------------
    # In-slice-first: statements the crash slice proves relevant are tried
    # before out-of-slice fallbacks, regardless of raw spectrum score.  The
    # rank recorded on the patch stays the localization rank (1-based over
    # the full ranking), not the visit order.
    ranked = list(localization.suspects)
    if crash_slice is not None:
        ranked = ([s for s in ranked if s.in_slice]
                  + [s for s in ranked if not s.in_slice])
    hole_solver = solver or Solver()
    seen: set[str] = set()
    for suspect in ranked[:config.max_suspects]:
        rank = localization.rank_of(suspect.function, suspect.line) or 0
        if cancelled():
            result.reason = "cancelled"
            break
        if result.candidates_tried >= config.max_candidates:
            break
        for candidate in candidates_for(module, suspect, report.bug_type):
            if cancelled():
                result.reason = "cancelled"
                break
            if result.candidates_tried >= config.max_candidates:
                break
            # The same edit can be generated from two suspects on one line
            # (or two lines of one function); try it once.
            key = canonical_json_bytes(
                [candidate.kind, candidate.function, candidate.params]
            ).decode()
            if key in seen:
                continue
            seen.add(key)
            result.candidates_tried += 1
            patch = _try_candidate(
                module, report, candidate, failing, passing, expected,
                hole_solver, config, should_stop, emit,
            )
            if patch is None:
                continue
            result.candidates_validated += 1
            patch.suspect_rank = rank
            patch.suspect_score = suspect.score
            result.patch = patch
            result.reason = "patched"
            result.seconds = time.monotonic() - started
            emit(f"validated patch: {patch.description}")
            return result
        if result.reason == "cancelled":
            break

    result.seconds = time.monotonic() - started
    return result


def _try_candidate(
    module: ir.Module,
    report: BugReport,
    candidate: PatchCandidate,
    failing: ExecutionFile,
    passing: Sequence[ExecutionFile],
    expected,
    hole_solver: Solver,
    config: RepairConfig,
    should_stop,
    emit,
) -> Optional[Patch]:
    emit(f"trying {candidate.kind} at "
         f"{candidate.function}:{candidate.line}")
    bindings: dict[str, int] = {}
    try:
        if candidate.holes:
            holey = clone_module(module)
            candidate.apply(holey)
            bindings = _solve_candidate_holes(
                holey, candidate, failing, passing, expected,
                hole_solver, config,
            )
            if bindings is None:
                return None
        patched = clone_module(module)
        candidate.apply(patched, bindings=bindings)
    except TemplateError:
        return None

    # Cheap screen before paying for ESD re-synthesis: the failing inputs
    # must terminate without *any* bug (a patch that trades the reported
    # deadlock for a crash is no fix), every passing run must keep its
    # observable behavior.
    try:
        behavior = concrete_behavior(patched, failing.inputs)
        if behavior.status == "bug":
            return None
        for execution, reference in zip(passing, expected):
            actual = concrete_behavior(patched, execution.inputs)
            if actual.status == "bug" or not actual.matches(reference):
                return None
    except RuntimeError:
        return None  # the candidate made a run non-terminating

    validation = validate_patch(
        module, patched, report, passing,
        failing=failing, config=config.esd, expected=expected,
        should_stop=should_stop,
    )
    if not validation.ok:
        return None
    return Patch(
        program=module.name,
        candidate=candidate,
        bindings=bindings,
        validation=validation,
        module=patched,
    )


def _solve_candidate_holes(
    holey: ir.Module,
    candidate: PatchCandidate,
    failing: ExecutionFile,
    passing: Sequence[ExecutionFile],
    expected,
    solver: Solver,
    config: RepairConfig,
) -> Optional[dict[str, int]]:
    caps = {
        "max_states": config.hole_max_states,
        "max_instructions": config.hole_max_instructions,
    }
    failing_paths = explore_with_holes(
        holey, failing.inputs, solver, **caps
    )
    clean = [p for p in failing_paths if p.behavior.status == "exited"]
    if not clean:
        return None
    preserved = []
    for execution, reference in zip(passing, expected):
        paths = explore_with_holes(holey, execution.inputs, solver, **caps)
        preserved.append([
            p for p in paths
            if p.behavior.status != "bug" and p.behavior.matches(reference)
        ])
    return solve_hole_bindings(
        list(candidate.holes), clean, preserved, solver,
        combo_cap=config.combo_cap,
    )
