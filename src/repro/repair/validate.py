"""Patch validation (repair step 3) -- the paper's own criterion.

Section 8: "if ESD can no longer synthesize an execution that triggers the
bug, then the patch can be considered successful."  A validated patch must

1. defeat re-synthesis: running ESD with the *original* bug report against
   the patched module finds no execution (the goal is unreachable, or gone
   from the program entirely);
2. not reproduce the bug concretely: the failing execution's recorded inputs
   no longer manifest the reported bug kind;
3. preserve every passing execution: replaying each passing execution's
   inputs on the patched module yields the identical observable behavior
   (output, exit code, termination status) as the original module.  Where
   the recorded strict schedule still fits -- the patch did not perturb the
   instruction stream on that path -- the execution file itself is also
   replayed byte-for-byte and reported as ``identical``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from .. import ir
from ..coredump import BugReport
from ..core.execfile import ExecutionFile
from ..core.goals import GoalError
from ..core.synthesis import ESDConfig, esd_synthesize
from ..playback import PlaybackDivergence, play_back
from ..search import SearchBudget
from .holes import Behavior, concrete_behavior


def validation_config(base: Optional[ESDConfig] = None) -> ESDConfig:
    """The re-synthesis budget for validation runs.

    Smaller than a cold synthesis budget: a correct patch makes the search
    exhaust the (now tiny) reachable space quickly, and a wrong patch is
    usually refuted quickly too.
    """
    if base is not None:
        return ESDConfig.from_dict(base.to_dict())
    return ESDConfig(budget=SearchBudget(
        max_instructions=2_000_000, max_states=100_000, max_seconds=45.0,
    ))


@dataclass(slots=True)
class PassingReplay:
    """Outcome of re-checking one passing execution on the patched module."""

    index: int
    preserved: bool  # observable behavior identical to the original module
    identical: bool  # the recorded execution file replayed byte-for-byte
    detail: str = ""

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "preserved": self.preserved,
            "identical": self.identical,
            "detail": self.detail,
        }


@dataclass(slots=True)
class ValidationResult:
    ok: bool = False
    resynthesis_found: bool = False
    resynthesis_reason: str = ""
    failing_clean: bool = False
    passing: list[PassingReplay] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def passing_preserved(self) -> bool:
        return all(r.preserved for r in self.passing)

    @property
    def identical_replays(self) -> int:
        return sum(1 for r in self.passing if r.identical)

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "resynthesis_found": self.resynthesis_found,
            "resynthesis_reason": self.resynthesis_reason,
            "failing_clean": self.failing_clean,
            "passing": [r.to_dict() for r in self.passing],
            "identical_replays": self.identical_replays,
            "seconds": round(self.seconds, 6),
        }


def validate_patch(
    original: ir.Module,
    patched: ir.Module,
    report: BugReport,
    passing: Sequence[ExecutionFile],
    *,
    failing: Optional[ExecutionFile] = None,
    config: Optional[ESDConfig] = None,
    expected: Optional[Sequence[Behavior]] = None,
    should_stop=None,
) -> ValidationResult:
    """Run the three validation checks; cheap concrete checks first.

    ``expected`` optionally supplies the passing executions' reference
    behaviors on the original module (same order as ``passing``), saving one
    concrete re-execution per passing run when the caller already has them.
    """
    started = time.monotonic()
    result = ValidationResult()

    # (2) concrete failing rerun -- must terminate cleanly.  Any bug counts
    # as unclean, not just the reported kind: a patch that turns a deadlock
    # into a crash on the very inputs it was meant to fix is no fix.
    result.failing_clean = True
    if failing is not None:
        try:
            behavior = concrete_behavior(patched, failing.inputs)
        except RuntimeError:
            behavior = Behavior(status="bug", exit_code=0, output=(),
                                bug_kind="nontermination")
        if behavior.status == "bug":
            result.failing_clean = False

    # (3) passing preservation.
    for index, execution in enumerate(passing):
        reference = (expected[index] if expected is not None
                     and index < len(expected) else None)
        result.passing.append(
            _check_passing(original, patched, index, execution, reference)
        )

    if not result.failing_clean or not result.passing_preserved:
        result.seconds = time.monotonic() - started
        return result

    # (1) the expensive check last: ESD against the patched module.
    try:
        synthesis = esd_synthesize(
            patched, report, validation_config(config),
            should_stop=should_stop,
        )
        result.resynthesis_found = synthesis.found
        result.resynthesis_reason = synthesis.reason
    except GoalError as exc:
        # The reported goal location no longer exists in the patched program
        # (e.g. the faulting statement was deleted): nothing to synthesize.
        result.resynthesis_found = False
        result.resynthesis_reason = f"goal-unmappable: {exc}"

    result.ok = (
        not result.resynthesis_found
        and result.resynthesis_reason != "cancelled"
        and result.failing_clean
        and result.passing_preserved
    )
    result.seconds = time.monotonic() - started
    return result


def _check_passing(
    original: ir.Module,
    patched: ir.Module,
    index: int,
    execution: ExecutionFile,
    expected: Optional[Behavior] = None,
) -> PassingReplay:
    try:
        if expected is None:
            expected = concrete_behavior(original, execution.inputs)
        actual = concrete_behavior(patched, execution.inputs)
    except RuntimeError as exc:
        return PassingReplay(index, preserved=False, identical=False,
                             detail=str(exc))
    preserved = actual.matches(expected) and actual.status != "bug"
    detail = ""
    if not preserved:
        detail = (
            f"expected {expected.status}/{expected.exit_code} "
            f"{list(expected.output)}, got {actual.status}/"
            f"{actual.exit_code} {list(actual.output)}"
        )
    identical = False
    if preserved:
        try:
            replay = play_back(patched, execution, mode="strict")
            identical = (
                replay.state.status == expected.status
                and tuple(replay.output) == expected.output
                and replay.exit_code == expected.exit_code
            )
        except PlaybackDivergence:
            identical = False  # the patch moved this path; behavior still holds
    return PassingReplay(index, preserved=preserved, identical=identical,
                         detail=detail)
