"""Symbolic holes: constraint-based patch-parameter synthesis (repair step 2).

A patch template may leave a *hole* -- an unknown program constant, an
:class:`~repro.ir.Hole` operand in the candidate module.  This module turns
"what value makes the patch correct?" into a constraint query, SemFix-style:

* re-run the candidate module over the **failing** execution's concrete
  inputs with the hole symbolic.  Branches over the hole fork, so the
  terminal states partition the hole's domain into behaviors; the states
  that terminate *cleanly* contribute "bug unreachable" constraints.
* re-run it over each **passing** execution's inputs.  The states whose
  observable behavior (output, exit code, termination status) matches the
  original program's contribute "passing executions preserved" constraints.
* conjoin one clean failing path with one behavior-preserving path per
  passing execution and hand the conjunction to the existing
  :class:`~repro.solver.Solver` (counterexample cache included); a model
  binds every hole to a concrete value.

All program inputs are concrete during these runs (they come from recorded
executions), so every path constraint ranges over hole variables only and
the queries stay tiny.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Optional, Sequence

from .. import ir
from ..core.execfile import ExecutionFile
from ..solver import Solver
from ..symbex import ConcreteEnv, ExecConfig, Executor
from ..symbex.env import RecordedInputs
from ..symbex.executor import hole_var

HOLE_PREFIX = "hole:"


@dataclass(slots=True)
class Behavior:
    """The observable outcome of one concrete (or hole-symbolic) run."""

    status: str  # 'exited' | 'bug' | 'infeasible'
    exit_code: int
    output: tuple[str, ...]
    bug_kind: str = ""

    def matches(self, other: "Behavior") -> bool:
        return (
            self.status == other.status
            and self.exit_code == other.exit_code
            and self.output == other.output
        )


@dataclass(slots=True)
class HolePath:
    """One terminal path of a hole-symbolic run: behavior + the path
    condition over the hole variables that selects it."""

    behavior: Behavior
    constraints: list = field(default_factory=list)


def concrete_behavior(
    module: ir.Module,
    inputs: RecordedInputs,
    *,
    max_steps: int = 2_000_000,
) -> Behavior:
    """Run a fully concrete module deterministically and observe the outcome
    (default cooperative scheduling; used as the reference behavior for
    passing-execution preservation)."""
    executor = Executor(module, env=ConcreteEnv(inputs), config=ExecConfig())
    state = executor.run_to_completion(executor.initial_state(), max_steps)
    return _behavior_of(state)


def explore_with_holes(
    module: ir.Module,
    inputs: RecordedInputs,
    solver: Solver,
    *,
    max_states: int = 512,
    max_instructions: int = 500_000,
) -> list[HolePath]:
    """All terminal paths of ``module`` over concrete ``inputs`` with its
    holes symbolic.  Forking happens only where control depends on a hole."""
    executor = Executor(
        module, solver=solver, env=ConcreteEnv(inputs), config=ExecConfig()
    )
    paths: list[HolePath] = []
    frontier = [executor.initial_state()]
    states = 0
    while frontier and states < max_states:
        state = frontier.pop()
        states += 1
        pending = [state]
        while (len(pending) == 1 and not pending[0].terminated
               and executor.stats.instructions < max_instructions):
            pending = executor.step(pending[0])
        for successor in pending:
            if successor.terminated:
                if successor.status == "infeasible":
                    continue
                paths.append(HolePath(
                    behavior=_behavior_of(successor),
                    constraints=list(successor.constraints),
                ))
            else:
                frontier.append(successor)
        if executor.stats.instructions >= max_instructions:
            break
    return paths


def solve_hole_bindings(
    holes: Sequence[ir.Hole],
    failing_paths: Sequence[HolePath],
    preserved_paths: Sequence[Sequence[HolePath]],
    solver: Solver,
    *,
    combo_cap: int = 64,
) -> Optional[dict[str, int]]:
    """Find hole values satisfying one clean failing path *and* one
    behavior-preserving path per passing execution.

    The paths of one run partition the hole domain, so the right query shape
    is "pick one disjunct per run and conjoin".  Combinations are tried in
    order (shortest constraint sets first) up to ``combo_cap``.
    """
    if not holes:
        return {}
    if not failing_paths:
        return None
    by_size = lambda p: len(p.constraints)  # noqa: E731 -- local sort key
    choice_lists: list[list[HolePath]] = [sorted(failing_paths, key=by_size)]
    for options in preserved_paths:
        if not options:
            return None  # some passing run cannot be preserved at all
        choice_lists.append(sorted(options, key=by_size))

    tried = 0
    for combo in product(*choice_lists):
        if tried >= combo_cap:
            break
        tried += 1
        constraints = [c for path in combo for c in path.constraints]
        model = solver.model(constraints)
        if model is None:
            continue
        bindings: dict[str, int] = {}
        for hole in holes:
            var = hole_var(hole)
            bindings[hole.name] = model.get(var.name, var.lo)
        return bindings
    return None


def substitute_holes(module: ir.Module, bindings: dict[str, int]) -> None:
    """Concretize: replace every :class:`~repro.ir.Hole` operand with the
    solved :class:`~repro.ir.Const` (in place, on a candidate module)."""

    def rewrite(value):
        if isinstance(value, ir.Hole):
            if value.name not in bindings:
                raise KeyError(f"no binding for hole {value.name!r}")
            return ir.Const(bindings[value.name])
        return value

    for function in module.functions.values():
        for block in function.blocks.values():
            for instr in list(block.instrs) + (
                [block.terminator] if block.terminator is not None else []
            ):
                _rewrite_operands(instr, rewrite)


def module_holes(module: ir.Module) -> list[ir.Hole]:
    """Every distinct hole appearing in the module (stable order)."""
    found: dict[str, ir.Hole] = {}
    for function in module.functions.values():
        for _, instr in function.iter_instructions():
            for operand in instr.operands():
                if isinstance(operand, ir.Hole):
                    found.setdefault(operand.name, operand)
    return list(found.values())


_OPERAND_FIELDS = {
    ir.Assign: ("src",),
    ir.BinOp: ("lhs", "rhs"),
    ir.UnOp: ("value",),
    ir.Alloc: ("size",),
    ir.Free: ("ptr",),
    ir.Load: ("addr",),
    ir.Store: ("addr", "value"),
    ir.Gep: ("base", "offset"),
    ir.Assert: ("cond",),
    ir.CondBr: ("cond",),
    ir.Ret: ("value",),
    ir.MutexLock: ("mutex",),
    ir.MutexUnlock: ("mutex",),
    ir.CondWait: ("cond", "mutex"),
    ir.CondSignal: ("cond",),
    ir.ThreadCreate: ("func", "arg"),
    ir.ThreadJoin: ("tid",),
}


def _rewrite_operands(instr: ir.Instr, rewrite) -> None:
    for field_name in _OPERAND_FIELDS.get(type(instr), ()):
        value = getattr(instr, field_name)
        if value is not None:
            setattr(instr, field_name, rewrite(value))
    if isinstance(instr, (ir.Call, ir.Intrinsic)):
        instr.args = [rewrite(a) for a in instr.args]


def _behavior_of(state) -> Behavior:
    return Behavior(
        status=state.status,
        exit_code=state.exit_code if isinstance(state.exit_code, int) else 0,
        output=tuple(state.output),
        bug_kind=state.bug.kind.value if state.bug is not None else "",
    )
