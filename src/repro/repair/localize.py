"""Spectrum-based fault localization (repair step 1).

Coverage spectra come from the playback stepper: one failing synthesized
execution (what ESD produces from the bug report) plus a set of passing
executions -- either replayed from known-good inputs or synthesized here by
exploring the program symbolically and keeping paths that terminate cleanly
(the "bug condition negated" source of passing runs).

Statements are ranked by Ochiai (default) or Tarantula suspiciousness.  On
top of the pure spectrum the ranking boosts the failing execution's *end
sites* -- the crash statement, or each blocked thread's program counter for
a deadlock.  The coredump already pins those statements as involved in the
failure; for concurrency bugs this matters because a deadlocking run covers
a *subset* of what a lucky run over the same inputs covers, so the spectrum
alone carries no positive signal.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Collection, Optional, Sequence, Union

from .. import ir
from ..core.execfile import ExecutionFile, execution_file_from_state
from ..playback.coverage import CoverageMap, LineKey, collect_coverage
from ..solver import Solver
from ..symbex import ExecConfig, Executor, SymbolicEnv

FORMULAS = ("ochiai", "tarantula")

Spectrum = Union[CoverageMap, ExecutionFile]


class LocalizationError(Exception):
    """Localization cannot run (no failing spectrum, unknown formula)."""


@dataclass(slots=True)
class Suspect:
    """One ranked statement."""

    function: str
    line: int
    score: float
    ef: int  # failing executions covering the statement
    ep: int  # passing executions covering the statement
    nf: int  # failing executions missing it
    np: int  # passing executions missing it
    boosted: bool = False  # an end-site (crash / blocked pc) boost applied
    in_slice: bool = False  # member of the static crash slice (prior applied)
    refs: tuple[ir.InstrRef, ...] = ()

    @property
    def key(self) -> LineKey:
        return (self.function, self.line)

    def to_dict(self) -> dict:
        return {
            "function": self.function,
            "line": self.line,
            "score": round(self.score, 6),
            "ef": self.ef,
            "ep": self.ep,
            "nf": self.nf,
            "np": self.np,
            "boosted": self.boosted,
            "in_slice": self.in_slice,
        }


@dataclass(slots=True)
class Localization:
    """The ranked suspect list for one report."""

    suspects: list[Suspect] = field(default_factory=list)
    formula: str = "ochiai"
    failing_count: int = 0
    passing_count: int = 0

    def top(self, n: int) -> list[Suspect]:
        return self.suspects[:n]

    def rank_of(self, function: str, line: int) -> Optional[int]:
        """1-based rank of a statement, or None when it was never suspected."""
        for rank, suspect in enumerate(self.suspects, start=1):
            if suspect.function == function and suspect.line == line:
                return rank
        return None

    def best_rank(self, keys: Sequence[LineKey]) -> Optional[int]:
        """Best rank any of several ground-truth statements achieved."""
        ranks = [r for r in (self.rank_of(f, ln) for f, ln in keys)
                 if r is not None]
        return min(ranks) if ranks else None

    def to_dict(self) -> dict:
        return {
            "formula": self.formula,
            "failing": self.failing_count,
            "passing": self.passing_count,
            "suspects": [s.to_dict() for s in self.suspects],
        }


def localize(
    module: ir.Module,
    failing: Sequence[Spectrum],
    passing: Sequence[Spectrum],
    *,
    formula: str = "ochiai",
    site_boost: float = 0.5,
    slice_lines: Optional[Collection[LineKey]] = None,
    slice_boost: float = 0.25,
) -> Localization:
    """Rank statements by suspiciousness from failing/passing spectra.

    ``failing``/``passing`` entries may be :class:`CoverageMap` objects or
    :class:`ExecutionFile` artifacts (replayed through the stepper here).

    ``slice_lines`` is the static-slice membership prior: statements inside
    the backward slice from the crash site get ``slice_boost`` added to
    their suspiciousness (the coredump proves influence statically, which
    the spectrum alone cannot -- a short failing run covers little).
    """
    if formula not in FORMULAS:
        raise LocalizationError(
            f"unknown suspiciousness formula {formula!r}; "
            f"available: {', '.join(FORMULAS)}"
        )
    fail_maps = [_as_coverage(module, s) for s in failing]
    pass_maps = [_as_coverage(module, s) for s in passing]
    if not fail_maps:
        raise LocalizationError("localization needs at least one failing execution")

    total_f = len(fail_maps)
    total_p = len(pass_maps)
    lines: set[LineKey] = set()
    for cov in fail_maps:
        lines.update(cov.lines)
    boosted: set[LineKey] = set()
    for cov in fail_maps:
        boosted.update(cov.end_sites)

    ref_index: dict[LineKey, set[ir.InstrRef]] = {}
    for cov in fail_maps:
        for ref in cov.refs:
            try:
                line = module.instruction(ref).line
            except KeyError:
                continue
            ref_index.setdefault((ref.function, line), set()).add(ref)

    suspects: list[Suspect] = []
    for key in lines:
        if key[1] <= 0:
            continue  # synthetic/prelude instructions carry no source line
        ef = sum(1 for cov in fail_maps if cov.covers(key))
        ep = sum(1 for cov in pass_maps if cov.covers(key))
        score = _score(formula, ef, ep, total_f, total_p)
        is_boosted = key in boosted
        if is_boosted:
            score += site_boost
        in_slice = slice_lines is not None and key in slice_lines
        if in_slice:
            score += slice_boost
        suspects.append(Suspect(
            function=key[0], line=key[1], score=score,
            ef=ef, ep=ep, nf=total_f - ef, np=total_p - ep,
            boosted=is_boosted, in_slice=in_slice,
            refs=tuple(sorted(ref_index.get(key, ()))),
        ))
    suspects.sort(key=lambda s: (-s.score, s.function, s.line))
    return Localization(
        suspects=suspects,
        formula=formula,
        failing_count=total_f,
        passing_count=total_p,
    )


def _as_coverage(module: ir.Module, spectrum: Spectrum) -> CoverageMap:
    if isinstance(spectrum, CoverageMap):
        return spectrum
    return collect_coverage(module, spectrum)


def _score(formula: str, ef: int, ep: int, total_f: int, total_p: int) -> float:
    if formula == "tarantula":
        if total_f == 0 or ef == 0:
            return 0.0
        fail_rate = ef / total_f
        pass_rate = ep / total_p if total_p else 0.0
        return fail_rate / (fail_rate + pass_rate)
    # ochiai
    denominator = math.sqrt((ef + (total_f - ef)) * (ef + ep))
    return ef / denominator if denominator else 0.0


# ---------------------------------------------------------------------------
# Passing-execution synthesis (the "bug condition negated" source)
# ---------------------------------------------------------------------------


def synthesize_passing_executions(
    module: ir.Module,
    *,
    count: int = 4,
    solver: Optional[Solver] = None,
    string_size: int = 8,
    max_args: int = 4,
    max_states: int = 4096,
    max_instructions: int = 400_000,
) -> list[ExecutionFile]:
    """Explore the program symbolically and keep clean terminations.

    A breadth-first sweep (short paths first) over the unconstrained input
    space; every state that exits without a bug is solved into a concrete
    passing execution.  Distinct fingerprints only -- the spectra should
    represent distinct paths, not one path four times.
    """
    solver = solver or Solver()
    executor = Executor(
        module,
        solver=solver,
        env=SymbolicEnv(string_size, max_args),
        config=ExecConfig(string_size=string_size, max_args=max_args),
    )
    frontier: deque = deque([executor.initial_state()])
    executions: list[ExecutionFile] = []
    seen: set[tuple] = set()
    states = 0
    while frontier and len(executions) < count and states < max_states:
        state = frontier.popleft()
        states += 1
        # Run the picked state until it forks or terminates: breadth-first
        # over *paths*, not over single instructions.
        pending = [state]
        while (len(pending) == 1 and not pending[0].terminated
               and executor.stats.instructions < max_instructions):
            pending = executor.step(pending[0])
        for successor in pending:
            if successor.status == "exited":
                execution = execution_file_from_state(
                    module.name, successor, solver
                )
                fingerprint = execution.fingerprint()
                if fingerprint not in seen:
                    seen.add(fingerprint)
                    executions.append(execution)
                continue
            if successor.terminated:
                continue  # bug or infeasible path: not a passing run
            frontier.append(successor)
        if executor.stats.instructions >= max_instructions:
            break
    return executions
