"""Automated repair: fault localization + constraint-based patch synthesis.

The subsystem that closes ESD's loop from "report in" to "verified patch
out" (paper section 8 stops at manual patch verification; this automates the
patch too, in the spirit of SemFix-style constraint-based repair and
path-based program repair):

1. **localize** -- per-statement coverage spectra from the playback stepper
   for the failing synthesized execution plus passing executions, ranked by
   Ochiai/Tarantula suspiciousness (:mod:`repro.repair.localize`);
2. **patch** -- a small template grammar instantiated at the top suspects;
   unknown constants become symbolic holes whose values the existing solver
   derives from "bug unreachable and passing behavior preserved" constraints
   (:mod:`repro.repair.templates`, :mod:`repro.repair.holes`);
3. **validate** -- the paper's own criterion: ESD can no longer synthesize
   the original report against the patched module, and the passing
   executions replay identically (:mod:`repro.repair.validate`).

Entry points: :func:`repair` (one call, full pipeline),
:meth:`repro.api.ReproSession.repair` / ``.localize`` (session facade),
the service's ``repair`` job kind, and the ``repro repair`` CLI verb.
"""

from .holes import (
    Behavior,
    HolePath,
    concrete_behavior,
    explore_with_holes,
    module_holes,
    solve_hole_bindings,
    substitute_holes,
)
from .localize import (
    Localization,
    LocalizationError,
    Suspect,
    localize,
    synthesize_passing_executions,
)
from .patcher import (
    PATCH_FORMAT,
    PATCH_SCHEMA_VERSION,
    Patch,
    RepairConfig,
    RepairResult,
    clone_module,
    repair,
)
from .templates import PatchCandidate, TemplateError, candidates_for
from .validate import (
    PassingReplay,
    ValidationResult,
    validate_patch,
    validation_config,
)

__all__ = [
    "Behavior",
    "HolePath",
    "Localization",
    "LocalizationError",
    "PATCH_FORMAT",
    "PATCH_SCHEMA_VERSION",
    "PassingReplay",
    "Patch",
    "PatchCandidate",
    "RepairConfig",
    "RepairResult",
    "Suspect",
    "TemplateError",
    "ValidationResult",
    "candidates_for",
    "clone_module",
    "concrete_behavior",
    "explore_with_holes",
    "localize",
    "module_holes",
    "repair",
    "solve_hole_bindings",
    "substitute_holes",
    "synthesize_passing_executions",
    "validate_patch",
    "validation_config",
]
