"""The patch template grammar (repair step 2).

Each template turns one suspect statement into concrete candidate edits on a
*clone* of the module.  The grammar is deliberately small -- the classic
repair moves that cover the seeded-bug corpus and most of what
constraint-based repair papers synthesize:

* ``cmp-op``      -- mutate a comparison operator (off-by-one fences:
                     ``<`` vs ``<=``, inverted guards);
* ``const-hole``  -- replace a constant with a symbolic hole, value solved
                     from the failing/passing constraints;
* ``bounds-guard``-- conjoin ``(index >= ?h)`` (or ``<=``) onto a branch
                     condition, guarding an indexed access; the fence ``?h``
                     is a hole;
* ``branch-flip`` -- force a conditional branch (make the suspect region,
                     e.g. a buggy error path or a preemption window,
                     unreachable);
* ``line-drop``   -- delete the suspect statement (all its instructions);
* ``unlock-hoist``-- release an already-held mutex *before* acquiring
                     another one (the canonical lock-order deadlock fix).

Candidates are plain data -- ``(kind, anchor, params)`` -- so a validated
patch can be serialized into the artifact store and re-applied to a freshly
compiled module.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from .. import ir
from ..ir import InstrRef

if TYPE_CHECKING:  # pragma: no cover
    from .localize import Suspect

# Fresh hole names: one hole is one unknown constant, and its solver variable
# is shared across every run that evaluates it (see repair.holes), so names
# must not collide between candidates generated in one process.
_hole_names = itertools.count(1)

# Hole domain half-width for const-hole candidates.  Small on purpose: patch
# constants live near the original value (fence posts, sentinel tweaks), and
# a tight domain keeps the interval solver fast.
CONST_HOLE_SPREAD = 64
GUARD_HOLE_LO = -8
GUARD_HOLE_HI = 63


class TemplateError(Exception):
    """A candidate cannot be applied to this module (bad anchor/params)."""


@dataclass(slots=True)
class PatchCandidate:
    """One concrete candidate edit, serializable and re-applicable."""

    kind: str
    function: str
    line: int
    params: dict
    description: str
    holes: tuple[ir.Hole, ...] = ()

    def apply(self, module: ir.Module,
              bindings: Optional[dict[str, int]] = None) -> None:
        """Mutate ``module`` (a clone!) with this edit.

        With ``bindings`` the candidate's holes are written as solved
        :class:`~repro.ir.Const` values; without, as symbolic
        :class:`~repro.ir.Hole` operands for the constraint phase.
        """
        applier = _APPLIERS.get(self.kind)
        if applier is None:
            raise TemplateError(f"unknown patch template {self.kind!r}")
        applier(self, module, bindings or {})

    def _hole_value(self, name: str, lo: int, hi: int,
                    bindings: dict[str, int]) -> ir.Value:
        if name in bindings:
            return ir.Const(bindings[name])
        return ir.Hole(name, lo, hi)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "function": self.function,
            "line": self.line,
            "params": dict(self.params),
            "description": self.description,
            "holes": [
                {"name": h.name, "lo": h.lo, "hi": h.hi} for h in self.holes
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PatchCandidate":
        return cls(
            kind=data["kind"],
            function=data["function"],
            line=data["line"],
            params=dict(data.get("params", {})),
            description=data.get("description", ""),
            holes=tuple(
                ir.Hole(h["name"], h["lo"], h["hi"])
                for h in data.get("holes", [])
            ),
        )


# ---------------------------------------------------------------------------
# Appliers
# ---------------------------------------------------------------------------


def _instr_at(module: ir.Module, ref_text: str) -> ir.Instr:
    ref = InstrRef.parse(ref_text)
    try:
        return module.instruction(ref)
    except (KeyError, IndexError) as exc:
        raise TemplateError(f"patch anchor {ref_text} not in module") from exc


def _block_of(module: ir.Module, ref_text: str) -> ir.BasicBlock:
    ref = InstrRef.parse(ref_text)
    func = module.functions.get(ref.function)
    if func is None or ref.block not in func.blocks:
        raise TemplateError(f"patch anchor {ref_text} not in module")
    return func.blocks[ref.block]


def _apply_cmp_op(cand: PatchCandidate, module: ir.Module, _b) -> None:
    instr = _instr_at(module, cand.params["ref"])
    if not isinstance(instr, ir.BinOp):
        raise TemplateError(f"cmp-op anchor is not a binary op: {instr!r}")
    instr.op = cand.params["op"]


def _apply_const_hole(cand: PatchCandidate, module: ir.Module,
                      bindings: dict[str, int]) -> None:
    instr = _instr_at(module, cand.params["ref"])
    if not isinstance(instr, ir.BinOp):
        raise TemplateError(f"const-hole anchor is not a binary op: {instr!r}")
    value = cand._hole_value(
        cand.params["hole"], cand.params["lo"], cand.params["hi"], bindings
    )
    side = cand.params["side"]
    if side == "lhs":
        instr.lhs = value
    else:
        instr.rhs = value


def _apply_bounds_guard(cand: PatchCandidate, module: ir.Module,
                        bindings: dict[str, int]) -> None:
    block = _block_of(module, cand.params["ref"])
    term = block.terminator
    if not isinstance(term, ir.CondBr):
        raise TemplateError("bounds-guard anchor block has no conditional branch")
    fence = cand._hole_value(
        cand.params["hole"], cand.params["lo"], cand.params["hi"], bindings
    )
    hole_name = cand.params["hole"]
    guard = ir.Reg(f"__repair.{hole_name}.cmp")
    conj = ir.Reg(f"__repair.{hole_name}.and")
    # Appending before the terminator leaves every existing instruction ref
    # (including a crash goal target in this block) stable; only the
    # terminator's own index shifts.
    block.instrs.append(ir.BinOp(
        guard, cand.params["cmp"], ir.Reg(cand.params["guard_reg"]), fence,
        line=term.line,
    ))
    block.instrs.append(ir.BinOp(conj, "&&", guard, term.cond, line=term.line))
    term.cond = conj


def _apply_branch_flip(cand: PatchCandidate, module: ir.Module, _b) -> None:
    instr = _instr_at(module, cand.params["ref"])
    if not isinstance(instr, ir.CondBr):
        raise TemplateError(f"branch-flip anchor is not a condbr: {instr!r}")
    instr.cond = ir.Const(cand.params["value"])


def _apply_line_drop(cand: PatchCandidate, module: ir.Module, _b) -> None:
    func = module.functions.get(cand.function)
    if func is None:
        raise TemplateError(f"line-drop function {cand.function!r} missing")
    dropped = 0
    for block in func.blocks.values():
        for index, instr in enumerate(block.instrs):
            if instr.line != cand.line:
                continue
            if isinstance(instr, (ir.Terminator, *ir.SYNC_INSTRS)):
                continue
            # Replace with a no-op rather than delete: every InstrRef in the
            # block (goal targets, distance tables, later patch anchors)
            # stays valid, and the strict-schedule instruction counts of
            # paths that executed this statement shift uniformly.
            block.instrs[index] = ir.Assign(
                ir.Reg("__repair.nop"), ir.Const(0), line=instr.line
            )
            dropped += 1
    if not dropped:
        raise TemplateError(f"line-drop found nothing at line {cand.line}")


def _apply_unlock_hoist(cand: PatchCandidate, module: ir.Module, _b) -> None:
    block = _block_of(module, cand.params["ref"])
    lock_index = cand.params["lock_index"]
    unlock_index = cand.params["unlock_index"]
    if not (0 <= lock_index < unlock_index < len(block.instrs)):
        raise TemplateError("unlock-hoist indices out of range")
    unlock = block.instrs[unlock_index]
    lock = block.instrs[lock_index]
    if not isinstance(unlock, ir.MutexUnlock) or not isinstance(lock, ir.MutexLock):
        raise TemplateError("unlock-hoist anchors are not lock/unlock")
    block.instrs.pop(unlock_index)
    block.instrs.insert(lock_index, unlock)


_APPLIERS = {
    "cmp-op": _apply_cmp_op,
    "const-hole": _apply_const_hole,
    "bounds-guard": _apply_bounds_guard,
    "branch-flip": _apply_branch_flip,
    "line-drop": _apply_line_drop,
    "unlock-hoist": _apply_unlock_hoist,
}


# ---------------------------------------------------------------------------
# Candidate generation
# ---------------------------------------------------------------------------


def candidates_for(
    module: ir.Module, suspect: "Suspect", bug_type: str
) -> list[PatchCandidate]:
    """All template instantiations for one suspect statement, most promising
    kind first for the reported bug class."""
    func = module.functions.get(suspect.function)
    if func is None:
        return []
    at_line = [
        (ref, instr) for ref, instr in func.iter_instructions()
        if instr.line == suspect.line
    ]
    if not at_line:
        return []

    generators = (
        (_gen_unlock_hoist, _gen_branch_flip, _gen_cmp_op, _gen_line_drop)
        if bug_type == "deadlock"
        else (_gen_bounds_guard, _gen_const_hole, _gen_cmp_op,
              _gen_line_drop, _gen_branch_flip)
    )
    candidates: list[PatchCandidate] = []
    for generator in generators:
        candidates.extend(generator(module, func, suspect, at_line))
    return candidates


def _source_context(module: ir.Module, line: int) -> str:
    text = module.source_line(line).strip()
    return f" -- `{text}`" if text else ""


def _gen_cmp_op(module, func, suspect, at_line) -> list[PatchCandidate]:
    out = []
    for ref, instr in at_line:
        if not isinstance(instr, ir.BinOp) or instr.op not in ir.COMPARISON_OPS:
            continue
        for op in sorted(ir.COMPARISON_OPS):
            if op == instr.op:
                continue
            out.append(PatchCandidate(
                kind="cmp-op", function=suspect.function, line=suspect.line,
                params={"ref": repr(ref), "op": op},
                description=(
                    f"{suspect.function}:{suspect.line}: change comparison "
                    f"`{instr.op}` to `{op}`"
                    + _source_context(module, suspect.line)
                ),
            ))
    return out


def _gen_const_hole(module, func, suspect, at_line) -> list[PatchCandidate]:
    out = []
    for ref, instr in at_line:
        if not isinstance(instr, ir.BinOp):
            continue
        for side in ("lhs", "rhs"):
            operand = getattr(instr, side)
            if not isinstance(operand, ir.Const):
                continue
            name = f"c{next(_hole_names)}"
            lo = max(operand.value - CONST_HOLE_SPREAD, -(2**31))
            hi = min(operand.value + CONST_HOLE_SPREAD, 2**31 - 1)
            out.append(PatchCandidate(
                kind="const-hole", function=suspect.function,
                line=suspect.line,
                params={"ref": repr(ref), "side": side, "hole": name,
                        "lo": lo, "hi": hi},
                description=(
                    f"{suspect.function}:{suspect.line}: replace constant "
                    f"{operand.value} with a solved constant"
                    + _source_context(module, suspect.line)
                ),
                holes=(ir.Hole(name, lo, hi),),
            ))
    return out


def _gen_bounds_guard(module, func, suspect, at_line) -> list[PatchCandidate]:
    out = []
    for ref, instr in at_line:
        if not isinstance(instr, ir.CondBr) or not isinstance(instr.cond, ir.Reg):
            continue
        block = func.blocks[ref.block]
        for reg in _index_regs(block)[:3]:
            for cmp in (">=", "<="):
                name = f"g{next(_hole_names)}"
                out.append(PatchCandidate(
                    kind="bounds-guard", function=suspect.function,
                    line=suspect.line,
                    params={"ref": repr(ref), "guard_reg": reg, "cmp": cmp,
                            "hole": name, "lo": GUARD_HOLE_LO,
                            "hi": GUARD_HOLE_HI},
                    description=(
                        f"{suspect.function}:{suspect.line}: guard condition "
                        f"with `%{reg} {cmp} ?` (fence solved)"
                        + _source_context(module, suspect.line)
                    ),
                    holes=(ir.Hole(name, GUARD_HOLE_LO, GUARD_HOLE_HI),),
                ))
    return out


def _index_regs(block: ir.BasicBlock) -> list[str]:
    """Registers used as Gep offsets feeding a load/store in this block --
    the natural fence candidates for an indexed-access guard."""
    gep_offsets: dict[str, str] = {}  # dst reg -> offset reg
    for instr in block.instrs:
        if isinstance(instr, ir.Gep) and isinstance(instr.offset, ir.Reg):
            if isinstance(instr.dst, ir.Reg):
                gep_offsets[instr.dst.name] = instr.offset.name
    ordered: list[str] = []
    for instr in block.instrs:
        addr = None
        if isinstance(instr, (ir.Load, ir.Store)):
            addr = instr.addr
        if isinstance(addr, ir.Reg) and addr.name in gep_offsets:
            offset = gep_offsets[addr.name]
            if offset not in ordered:
                ordered.append(offset)
    return ordered


def _gen_branch_flip(module, func, suspect, at_line) -> list[PatchCandidate]:
    """Force branches that guard the suspect region to skip it."""
    suspect_blocks = {ref.block for ref, _ in at_line}
    out = []
    for ref, instr in func.iter_instructions():
        if not isinstance(instr, ir.CondBr):
            continue
        then_in = instr.then_target in suspect_blocks
        else_in = instr.else_target in suspect_blocks
        if then_in == else_in:
            continue  # guards nothing, or both sides reach the suspect
        value = 0 if then_in else 1
        out.append(PatchCandidate(
            kind="branch-flip", function=suspect.function, line=suspect.line,
            params={"ref": repr(ref), "value": value},
            description=(
                f"{suspect.function}:{instr.line}: force branch to skip the "
                f"suspect region at line {suspect.line}"
                + _source_context(module, instr.line)
            ),
        ))
    return out


def _gen_line_drop(module, func, suspect, at_line) -> list[PatchCandidate]:
    # Never drop terminators or synchronization (that is unlock-hoist's job).
    droppable = [
        instr for _, instr in at_line
        if not isinstance(instr, (ir.Terminator, *ir.SYNC_INSTRS))
    ]
    if not droppable:
        return []
    return [PatchCandidate(
        kind="line-drop", function=suspect.function, line=suspect.line,
        params={},
        description=(
            f"{suspect.function}:{suspect.line}: delete the statement"
            + _source_context(module, suspect.line)
        ),
    )]


def _gen_unlock_hoist(module, func, suspect, at_line) -> list[PatchCandidate]:
    out = []
    for label, block in func.blocks.items():
        for i, lock in enumerate(block.instrs):
            if not isinstance(lock, ir.MutexLock):
                continue
            for j in range(i + 1, len(block.instrs)):
                unlock = block.instrs[j]
                if not isinstance(unlock, ir.MutexUnlock):
                    continue
                if repr(unlock.mutex) == repr(lock.mutex):
                    continue  # releasing the same mutex: not a reorder fix
                out.append(PatchCandidate(
                    kind="unlock-hoist", function=suspect.function,
                    line=suspect.line,
                    params={"ref": f"{func.name}:{label}:{i}",
                            "lock_index": i, "unlock_index": j},
                    description=(
                        f"{func.name}:{lock.line}: release {unlock.mutex!r} "
                        f"before acquiring {lock.mutex!r} "
                        f"(lock-order fix)"
                    ),
                ))
                break  # one hoist per lock site
    return out
