"""A small urllib client for the ``repro serve`` wire API.

This is what ``repro submit|status|fetch`` speak; it is importable on its
own (no synthesis machinery) so scripts can drive a remote service without
loading the whole pipeline.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Iterator, Optional, Union

from ..api.jobs import TERMINAL_STATES, JobSpec

__all__ = ["ServiceClient", "ServiceClientError", "DEFAULT_URL"]

DEFAULT_URL = "http://127.0.0.1:8377"


class ServiceClientError(Exception):
    """An HTTP-level failure talking to the service."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"service error {status}: {message}")
        self.status = status
        self.message = message


class ServiceClient:
    def __init__(self, url: str = DEFAULT_URL, timeout: float = 30.0) -> None:
        self.url = url.rstrip("/")
        self.timeout = timeout

    # -- transport ------------------------------------------------------------

    def _request(self, method: str, path: str,
                 body: Optional[dict] = None) -> tuple[bytes, dict]:
        data = json.dumps(body).encode("utf-8") if body is not None else None
        request = urllib.request.Request(
            self.url + path, data=data, method=method,
            headers={"Content-Type": "application/json"} if data else {},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                return resp.read(), dict(resp.headers)
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            try:
                message = json.loads(raw.decode("utf-8")).get("error", "")
            except (ValueError, UnicodeDecodeError):
                message = raw.decode("utf-8", "replace")[:200]
            raise ServiceClientError(exc.code, message or exc.reason) from exc
        except urllib.error.URLError as exc:
            raise ServiceClientError(
                0, f"cannot reach service at {self.url}: {exc.reason}"
            ) from exc

    def _json(self, method: str, path: str, body: Optional[dict] = None):
        raw, _ = self._request(method, path, body)
        return json.loads(raw.decode("utf-8"))

    # -- API ------------------------------------------------------------------

    def health(self) -> dict:
        return self._json("GET", "/healthz")

    def metrics(self) -> dict:
        """The service's ``esd-metrics-v1`` snapshot."""
        return self._json("GET", "/v1/metrics")

    def metrics_text(self) -> str:
        """The Prometheus text exposition from ``/metrics``."""
        raw, _ = self._request("GET", "/metrics")
        return raw.decode("utf-8")

    def submit(self, spec: Union[JobSpec, dict]) -> dict:
        """Submit a spec; returns the job record (existing one on dedup)."""
        payload = spec.to_dict() if isinstance(spec, JobSpec) else spec
        return self._json("POST", "/v1/jobs", payload)["job"]

    def jobs(self) -> list[dict]:
        return self._json("GET", "/v1/jobs")["jobs"]

    def job(self, job_id: str) -> dict:
        return self._json("GET", f"/v1/jobs/{job_id}")

    def events(self, job_id: str, since: int = 0) -> list[dict]:
        return self._json(
            "GET", f"/v1/jobs/{job_id}/events?since={since}"
        )["events"]

    def result(self, job_id: str) -> dict:
        """Terminal record; raises ServiceClientError(409) while running."""
        return self._json("GET", f"/v1/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> dict:
        return self._json("POST", f"/v1/jobs/{job_id}/cancel")

    def fetch_artifact(self, digest: str) -> bytes:
        raw, _ = self._request("GET", f"/v1/artifacts/{digest}")
        return raw

    def fetch_job_artifact(self, job_id: str, kind: str = "execution") -> bytes:
        record = self.job(job_id)
        digest = record.get("artifacts", {}).get(kind)
        if digest is None:
            raise ServiceClientError(
                409,
                f"job {job_id} has no {kind!r} artifact yet "
                f"(state {record.get('state')})",
            )
        return self.fetch_artifact(digest)

    def wait(self, job_id: str, timeout: Optional[float] = None,
             poll: float = 0.25) -> dict:
        """Poll until the job is terminal (or the timeout passes)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if record.get("state") in TERMINAL_STATES:
                return record
            if deadline is not None and time.monotonic() >= deadline:
                return record
            time.sleep(poll)

    def stream(self, job_id: str,
               since: int = 0) -> Iterator[tuple[str, dict]]:
        """Follow ``/v1/jobs/<id>/stream``: yield ``(event, data)`` pairs
        live until the server's terminal ``done`` frame (which is yielded
        too, carrying the final job record).

        Heartbeat comment frames are filtered out here; they only exist to
        keep the socket read below ``timeout`` while the job is quiet.
        """
        request = urllib.request.Request(
            f"{self.url}/v1/jobs/{job_id}/stream?since={since}"
        )
        try:
            response = urllib.request.urlopen(request, timeout=self.timeout)
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            try:
                message = json.loads(raw.decode("utf-8")).get("error", "")
            except (ValueError, UnicodeDecodeError):
                message = raw.decode("utf-8", "replace")[:200]
            raise ServiceClientError(exc.code, message or exc.reason) from exc
        except urllib.error.URLError as exc:
            raise ServiceClientError(
                0, f"cannot reach service at {self.url}: {exc.reason}"
            ) from exc
        with response:
            event = "message"
            data_lines: list[str] = []
            for raw_line in response:
                line = raw_line.decode("utf-8").rstrip("\r\n")
                if not line:  # blank line = end of frame
                    if data_lines:
                        yield event, json.loads("\n".join(data_lines))
                        if event == "done":
                            return
                    event = "message"
                    data_lines = []
                elif line.startswith(":"):
                    continue  # heartbeat comment
                elif line.startswith("event:"):
                    event = line[len("event:"):].strip()
                elif line.startswith("data:"):
                    data_lines.append(line[len("data:"):].lstrip())
