"""ReproService: the job-oriented synthesis service.

Where :class:`~repro.api.ReproSession` is one caller synthesizing inline,
``ReproService`` is the multi-tenant layer behind the ``repro serve``
daemon: callers submit :class:`~repro.api.jobs.JobSpec` documents and get
back job ids; a bounded pool of scheduler threads drains a priority queue;
every artifact a job produces lands in a content-addressed
:class:`~repro.store.ArtifactStore` under its digest.

The scaling properties the session API established carry over wholesale,
because jobs on the same program share one :class:`ServiceProgram` context:
the compiled module, the :class:`~repro.core.StaticAnalysisCache`, and the
session-style shared solver + structural counterexample cache.  N
concurrent jobs against one module perform static analysis exactly once
and share solver learnings, just like a ``synthesize_batch`` -- that is
what makes the service the cheap path for heavy report streams.

Lifecycle and durability:

* duplicate submissions dedupe on the spec's store digest -- the identical
  spec maps to the identical job;
* ``cancel`` flips a queued job straight to ``CANCELLED`` and stops a
  running one cooperatively at the next search pick;
* ``shutdown(graceful=True)`` (what SIGTERM to ``repro serve`` triggers)
  interrupts running jobs, snapshots each one's frontier into a checkpoint
  artifact, and re-queues the job -- a restarted service ``recover()``s the
  queue from the store and resumes from the checkpoint instead of redoing
  the work.

Queued jobs always run the serial search engine: scheduler threads must
not fork a process pool out of a multi-threaded daemon.  (The inline
:meth:`synthesize` path used by ``ReproSession`` still routes through
:class:`~repro.distrib.ParallelExplorer` when the caller asks for
``workers > 1``.)
"""

from __future__ import annotations

import dataclasses
import heapq
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, Optional, Union

from .. import ir
from ..api.jobs import (
    CANCELLED,
    EXHAUSTED,
    FAILED,
    FOUND,
    QUEUED,
    RUNNING_STATES,
    SEARCHING,
    STATIC,
    JobError,
    JobRecord,
    JobSpec,
    ResultNotReadyError,
    UnknownJobError,
)
from ..coredump import BugReport
from ..core.synthesis import (
    ESDConfig,
    StaticAnalysisCache,
    SynthesisResult,
    build_search_setup,
    esd_synthesize,
    search_from_setup,
)
from ..lang import compile_source
from ..obs import DEFAULT_TIME_BUCKETS, FlightRecorder, MetricsRegistry, Tracer
from ..schema import canonical_json_bytes, content_digest
from ..search import EventCallback, StopPredicate
from ..solver import CounterexampleCache, Solver
from ..store import ArtifactStore
from ..symbex.executor import ExecStats

__all__ = ["ReproService", "ServiceProgram", "ServiceStats"]


class ServiceProgram:
    """One registered program and the artifacts concurrent jobs share."""

    def __init__(self, key: str, module: ir.Module,
                 source: Optional[str] = None,
                 lang: str = "esd") -> None:
        self.key = key
        self.module = module
        self.source = source
        self.lang = lang
        self.statics = StaticAnalysisCache(module)
        # One reentrant solver + locked structural counterexample cache per
        # program, shared by every job and inline call on it (PR 2's
        # session-style sharing, promoted to the service layer).
        self.solver_cache = CounterexampleCache()
        self.solver = Solver(cache=self.solver_cache)
        # Cumulative executor counters across every serial run on this
        # program (each run builds a throwaway Executor; the service folds
        # its stats in here so the metrics registry has a durable source).
        self.exec_totals = ExecStats()
        self.prune_totals: dict[str, int] = {}
        self._totals_lock = threading.Lock()

    @property
    def static_stats(self):
        return self.statics.stats

    def absorb_executor(self, executor) -> None:
        """Fold a finished run's executor counters into this program's
        cumulative totals (counters only ever grow -- interval readings
        come from snapshot deltas, never from resets)."""
        with self._totals_lock:
            for f in dataclasses.fields(self.exec_totals):
                setattr(self.exec_totals, f.name,
                        getattr(self.exec_totals, f.name)
                        + getattr(executor.stats, f.name))
            prune = getattr(executor, "prune_stats", None)
            if prune is not None:
                for name, value in prune.to_dict().items():
                    if isinstance(value, (int, float)):
                        self.prune_totals[name] = (
                            self.prune_totals.get(name, 0) + value
                        )


@dataclass(slots=True)
class ServiceStats:
    """Aggregate scheduling counters (`repro serve` reports these)."""

    submitted: int = 0
    deduped: int = 0
    completed: int = 0
    cancelled: int = 0
    failed: int = 0
    interrupted: int = 0
    recovered: int = 0

    def to_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "deduped": self.deduped,
            "completed": self.completed,
            "cancelled": self.cancelled,
            "failed": self.failed,
            "interrupted": self.interrupted,
            "recovered": self.recovered,
        }


@dataclass(slots=True)
class _Work:
    """Runtime payload behind one queued job."""

    spec: Optional[JobSpec] = None
    program: Optional[ServiceProgram] = None  # pre-resolved (facade submits)
    report: Optional[BugReport] = None
    config: Optional[ESDConfig] = None
    seq: int = 0


def _result_summary(result: SynthesisResult) -> dict:
    return {
        "found": result.found,
        "reason": result.reason,
        "static_seconds": result.static_seconds,
        "search_seconds": result.search_seconds,
        "instructions": result.instructions,
        "states_explored": result.states_explored,
        "other_bugs": result.other_bugs,
        "intermediate_goal_count": result.intermediate_goal_count,
    }


class ReproService:
    """Job queue + bounded scheduler over shared per-program artifacts."""

    def __init__(
        self,
        *,
        store: Optional[ArtifactStore] = None,
        store_root=None,
        max_workers: int = 2,
        default_config: Optional[ESDConfig] = None,
        recover: bool = True,
        trace_jobs: bool = False,
        record_flight: bool = False,
    ) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        # Not `store or ...`: an empty ArtifactStore has len() == 0 and
        # would be replaced by a fresh in-memory one.
        self.store = store if store is not None else ArtifactStore(store_root)
        self.max_workers = max_workers
        self.default_config = default_config or ESDConfig()
        self.stats = ServiceStats()
        self.trace_jobs = trace_jobs
        self.record_flight = record_flight
        self._started = time.time()
        # Thread name -> last time the scheduler loop was seen alive, for
        # the /healthz per-worker heartbeat ages.
        self._heartbeats: dict[str, float] = {}
        # Cumulative buffer-pressure counters folded in from finished
        # jobs' tracers/recorders (the esd_obs_* metric families).
        self._obs_totals: dict[str, int] = {
            "trace_dropped_spans": 0,
            "trace_span_high_water": 0,
            "flight_dropped_records": 0,
            "flight_record_high_water": 0,
        }

        self._lock = threading.RLock()
        self._cv = threading.Condition(self._lock)
        self._records: dict[str, JobRecord] = {}
        self._work: dict[str, _Work] = {}
        self._by_digest: dict[str, str] = {}
        self._queue: list[tuple[int, int, str]] = []  # (-priority, seq, id)
        self._cancels: dict[str, threading.Event] = {}
        self._programs: dict[str, ServiceProgram] = {}
        self._module_keys: dict[int, str] = {}  # id(module) -> key
        self._threads: list[threading.Thread] = []
        self._seq = 0
        self._closed = False
        self._stop = threading.Event()       # scheduler threads exit
        self._interrupt = threading.Event()  # graceful drain: checkpoint+requeue
        self._busy = 0                       # scheduler threads inside _execute
        self.registry = self._build_registry()
        if recover and self.store.persistent:
            self.recover()

    # -- program registry ------------------------------------------------------

    def register_module(self, module: ir.Module,
                        source: Optional[str] = None,
                        lang: str = "esd") -> ServiceProgram:
        """Register an already-compiled module (the session facade's path).

        With ``source`` given, the context is keyed by the source digest and
        therefore shared with wire jobs submitting the same program text.
        """
        with self._lock:
            key = self._module_keys.get(id(module))
            if key is None:
                if source is not None:
                    key = self._source_key(source, module.name, lang)
                else:
                    key = f"module:{module.name}#{len(self._programs)}"
            program = self._programs.get(key)
            if program is None:
                program = ServiceProgram(key, module, source, lang=lang)
                self._programs[key] = program
            self._module_keys[id(module)] = key
            return program

    def program_for_source(self, source: str, name: str = "main",
                           lang: str = "esd") -> ServiceProgram:
        """Compile-once program context for source text (MiniC or, with
        ``lang='python'``, the real-Python frontend)."""
        key = self._source_key(source, name, lang)
        with self._lock:
            program = self._programs.get(key)
            if program is None:
                if lang == "python":
                    from ..frontend import compile_python_source

                    module = compile_python_source(source, name)
                else:
                    module = compile_source(source, name)
                program = ServiceProgram(key, module, source, lang=lang)
                self._programs[key] = program
                self._module_keys[id(program.module)] = key
            return program

    def program_for_workload(self, name: str) -> ServiceProgram:
        from ..workloads import ALL, get  # lazy: workloads pull in baselines

        if name not in ALL:
            raise JobError(
                f"unknown workload {name!r}; available: "
                f"{', '.join(sorted(ALL))}"
            )
        workload = get(name)
        key = f"workload:{name}"
        with self._lock:
            program = self._programs.get(key)
            if program is None:
                program = ServiceProgram(key, workload.compile(),
                                         workload.source,
                                         lang=workload.lang)
                self._programs[key] = program
                self._module_keys[id(program.module)] = key
            return program

    def programs(self) -> dict[str, ServiceProgram]:
        with self._lock:
            return dict(self._programs)

    @staticmethod
    def _source_key(source: str, name: str, lang: str = "esd") -> str:
        return "src:" + content_digest(
            canonical_json_bytes([name, source, lang])
        )[:16]

    def _program_for_work(self, work: _Work) -> ServiceProgram:
        if work.program is not None:
            return work.program
        spec = work.spec
        assert spec is not None
        if spec.workload is not None:
            return self.program_for_workload(spec.workload)
        return self.program_for_source(spec.source, spec.program_name,
                                       lang=spec.lang)

    # -- observability ---------------------------------------------------------

    def _build_registry(self) -> MetricsRegistry:
        """The service-wide metrics surface (``/metrics``, ``repro stats``).

        Scheduling counters and per-program pipeline stats are *bound*, not
        copied: the registry samples the live dataclasses at snapshot time
        and sums across programs, so readings are always cumulative.
        Interval measurements subtract two snapshots (``counters_delta``) --
        nothing here is ever reset.
        """
        registry = MetricsRegistry()
        registry.bind_stats("esd_service_jobs", lambda: self.stats,
                            help_="service job lifecycle counters")

        def programs() -> list[ServiceProgram]:
            with self._lock:
                return list(self._programs.values())

        registry.bind_stats(
            "esd_solver", lambda: [p.solver.stats for p in programs()],
            help_="solver query counters across programs")
        registry.bind_stats(
            "esd_solver_cache",
            lambda: [p.solver_cache.stats for p in programs()],
            help_="counterexample cache counters across programs")
        registry.bind_stats(
            "esd_static", lambda: [p.static_stats for p in programs()],
            help_="static analysis cache counters across programs")
        registry.bind_stats(
            "esd_exec", lambda: [p.exec_totals for p in programs()],
            help_="symbolic executor counters across programs")
        registry.bind_stats(
            "esd_wp", lambda: [p.prune_totals for p in programs()],
            help_="weakest-precondition pruning counters across programs")

        def obs_dropped() -> dict[str, int]:
            with self._lock:
                return {
                    "trace_dropped_spans":
                        self._obs_totals["trace_dropped_spans"],
                    "flight_dropped_records":
                        self._obs_totals["flight_dropped_records"],
                }

        registry.bind_stats(
            "esd_obs", obs_dropped,
            help_="observability buffer pressure across finished jobs")

        def queue_depth() -> float:
            with self._lock:
                return float(sum(1 for r in self._records.values()
                                 if r.state == QUEUED))

        def in_flight() -> float:
            with self._lock:
                return float(sum(1 for r in self._records.values()
                                 if r.state in RUNNING_STATES))

        def workers_alive() -> float:
            with self._lock:
                return float(sum(1 for t in self._threads if t.is_alive()))

        def cache_hit_rate() -> float:
            lookups = hits = 0
            for p in programs():
                stats = p.solver_cache.stats
                lookups += stats.lookups
                hits += stats.hits
            return hits / lookups if lookups else 0.0

        registry.gauge("esd_service_queue_depth",
                       "jobs waiting in the priority queue", fn=queue_depth)
        registry.gauge("esd_service_jobs_inflight",
                       "jobs currently in a running state", fn=in_flight)
        registry.gauge("esd_service_workers_alive",
                       "live scheduler threads", fn=workers_alive)
        registry.gauge("esd_service_workers_busy",
                       "scheduler threads executing a job",
                       fn=lambda: float(self._busy))
        registry.gauge("esd_service_programs",
                       "registered program contexts",
                       fn=lambda: float(len(self.programs())))
        registry.gauge("esd_solver_cache_hit_rate",
                       "counterexample cache hit rate across programs",
                       fn=cache_hit_rate)

        def obs_high_water(key: str) -> Callable[[], float]:
            def read() -> float:
                with self._lock:
                    return float(self._obs_totals[key])
            return read

        registry.gauge("esd_obs_trace_span_high_water",
                       "max spans ever buffered by one job's tracer",
                       fn=obs_high_water("trace_span_high_water"))
        registry.gauge("esd_obs_flight_record_high_water",
                       "max records ever buffered by one job's recorder",
                       fn=obs_high_water("flight_record_high_water"))
        registry.histogram("esd_job_seconds",
                           "wall-clock seconds per completed job",
                           buckets=DEFAULT_TIME_BUCKETS)
        return registry

    def metrics_snapshot(self) -> dict:
        """Point-in-time ``esd-metrics-v1`` document for every metric."""
        return self.registry.snapshot(meta={"component": "service"})

    def prometheus_text(self) -> str:
        """The registry in Prometheus text exposition format."""
        return self.registry.to_prometheus()

    def health(self) -> dict:
        """Liveness + load summary (the daemon's enriched ``/healthz``)."""
        from .. import __version__
        from ..api.jobs import JOBRECORD_FORMAT, JOBSPEC_FORMAT
        from ..obs import FLIGHT_FORMAT, METRICS_FORMAT, TRACE_FORMAT

        now = time.time()
        with self._lock:
            states: dict[str, int] = {}
            for record in self._records.values():
                states[record.state] = states.get(record.state, 0) + 1
            queue_depth = states.get(QUEUED, 0)
            in_flight = sum(states.get(s, 0) for s in RUNNING_STATES)
            alive = sum(1 for t in self._threads if t.is_alive())
            busy = self._busy
            programs = len(self._programs)
            cache_lookups = cache_hits = 0
            for p in self._programs.values():
                cache_lookups += p.solver_cache.stats.lookups
                cache_hits += p.solver_cache.stats.hits
            heartbeats = {
                name: round(now - seen, 3)
                for name, seen in sorted(self._heartbeats.items())
            }
            obs = dict(self._obs_totals)
        return {
            "ok": True,
            "version": __version__,
            "uptime_seconds": round(now - self._started, 3),
            "schemas": {
                "jobspec": JOBSPEC_FORMAT,
                "jobrecord": JOBRECORD_FORMAT,
                "trace": TRACE_FORMAT,
                "metrics": METRICS_FORMAT,
                "searchlog": FLIGHT_FORMAT,
            },
            "jobs": states,
            "queue_depth": queue_depth,
            "in_flight": in_flight,
            "workers": {"alive": alive, "busy": busy,
                        "max": self.max_workers,
                        "heartbeat_age_seconds": heartbeats},
            "programs": programs,
            "solver_cache": {
                "lookups": cache_lookups,
                "hits": cache_hits,
                "hit_rate": (cache_hits / cache_lookups
                             if cache_lookups else 0.0),
            },
            "obs": obs,
            "stats": self.stats.to_dict(),
        }

    # -- submission ------------------------------------------------------------

    def submit(self, spec: JobSpec) -> JobRecord:
        """Queue a wire-form job; identical specs dedupe to one job."""
        spec.validate()
        digest = spec.digest()
        work = _Work(spec=spec, config=spec.config, report=spec.report)
        return self._enqueue(digest, spec.priority, work,
                             spec_bytes=spec.canonical_bytes())

    def submit_report(
        self,
        program: ServiceProgram,
        report: BugReport,
        config: Optional[ESDConfig] = None,
        *,
        priority: int = 0,
        kind: str = "synth",
        repair_config: Optional[dict] = None,
    ) -> JobRecord:
        """Queue a job against an already-registered program (the session
        facade's async path).  When the program has source text the job is
        stored as a full recoverable spec; otherwise it is ephemeral."""
        if kind != "synth" and program.source is None:
            raise JobError(
                f"{kind!r} jobs need a program with source text "
                f"(module-only registrations cannot be re-run)"
            )
        if program.source is not None:
            spec = JobSpec(report=report, source=program.source,
                           program_name=program.module.name,
                           lang=program.lang,
                           config=config, priority=priority,
                           kind=kind, repair_config=repair_config)
            record = self.submit(spec)
            with self._lock:
                # Pin the already-registered context so the job skips the
                # source-digest lookup.  A dedup hit on a record recovered
                # from a persistent store has no live work entry (terminal
                # jobs never re-run) -- nothing to pin then.
                work = self._work.get(record.job_id)
                if work is not None:
                    work.program = program
            return record
        payload = canonical_json_bytes({
            "program_key": program.key,
            "report": report.to_dict(),
            "config": config.to_dict() if config else None,
            "priority": priority,
        })
        work = _Work(program=program, report=report, config=config)
        return self._enqueue(content_digest(payload), priority, work,
                             ephemeral=True)

    def _enqueue(self, digest: str, priority: int, work: _Work, *,
                 spec_bytes: Optional[bytes] = None,
                 ephemeral: bool = False) -> JobRecord:
        with self._cv:
            if self._closed:
                raise JobError("service is shut down")
            existing_id = self._by_digest.get(digest)
            if existing_id is not None:
                existing = self._records[existing_id]
                if existing.state not in (CANCELLED, FAILED):
                    existing.deduped = True
                    self.stats.deduped += 1
                    return existing
            self._seq += 1
            job_id = f"j{self._seq:05d}-{digest[:8]}"
            record = JobRecord(job_id, digest, priority=priority,
                               created_at=time.time(), ephemeral=ephemeral)
            if spec_bytes is not None:
                record.artifacts["spec"] = self.store.put_bytes(
                    spec_bytes, kind="jobspec"
                )
            record.add_event("state", state=QUEUED)
            work.seq = self._seq
            self._records[job_id] = record
            self._work[job_id] = work
            self._by_digest[digest] = job_id
            heapq.heappush(self._queue, (-priority, self._seq, job_id))
            self.stats.submitted += 1
            self._persist(record)
            self._ensure_workers()
            self._cv.notify_all()
            return record

    # -- queries ---------------------------------------------------------------

    def job(self, job_id: str) -> JobRecord:
        with self._lock:
            record = self._records.get(job_id)
            if record is None:
                raise UnknownJobError(job_id)
            return record

    def jobs(self) -> list[JobRecord]:
        with self._lock:
            return sorted(self._records.values(),
                          key=lambda r: r.created_at)

    def describe(self, job_id: str) -> dict:
        """A point-in-time JSON view of one record (what the daemon serves)."""
        with self._lock:
            return self.job(job_id).to_dict()

    def describe_all(self) -> list[dict]:
        """JSON views of every record, serialized under the lock so a
        scheduler thread cannot mutate a record mid-serialization."""
        with self._lock:
            return [record.to_dict() for record in self.jobs()]

    def events(self, job_id: str, since: int = 0) -> list[dict]:
        with self._lock:
            return [e.to_dict() for e in self.job(job_id).events
                    if e.seq > since]

    def result(self, job_id: str) -> JobRecord:
        """The terminal record; raises while the job is still in flight."""
        with self._lock:
            record = self.job(job_id)
            if not record.terminal:
                raise ResultNotReadyError(
                    f"job {job_id} is {record.state}, not finished"
                )
            return record

    def fetch_artifact(self, job_id: str, kind: str = "execution") -> bytes:
        with self._lock:
            record = self.job(job_id)
            digest = record.artifacts.get(kind)
        if digest is None:
            raise ResultNotReadyError(
                f"job {job_id} has no {kind!r} artifact yet "
                f"(state {record.state})"
            )
        return self.store.get_bytes(digest)

    def wait(self, job_id: str, timeout: Optional[float] = None) -> JobRecord:
        """Block until the job reaches a terminal state (or timeout)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cv:
            while True:
                record = self.job(job_id)
                if record.terminal:
                    return record
                remaining = (None if deadline is None
                             else deadline - time.monotonic())
                if remaining is not None and remaining <= 0:
                    return record
                self._cv.wait(remaining if remaining is not None else 0.5)

    def gc(self) -> list[str]:
        """Sweep store objects not referenced by any job record."""
        with self._lock:
            live = {digest for record in self._records.values()
                    for digest in record.artifacts.values()}
        return self.store.gc(live)

    # -- cancellation and shutdown ---------------------------------------------

    def cancel(self, job_id: str) -> JobRecord:
        with self._cv:
            record = self.job(job_id)
            if record.terminal:
                return record
            if record.state == QUEUED:
                record.transition(CANCELLED, reason="cancelled",
                                  detail="cancelled while queued")
                self.stats.cancelled += 1
                self._prune(job_id)
                self._persist(record)
                self._cv.notify_all()
            else:
                # Running: cooperative stop at the next search pick.
                self._cancels.setdefault(job_id, threading.Event()).set()
            return record

    def shutdown(self, graceful: bool = True, timeout: float = 30.0) -> None:
        """Stop scheduling.  ``graceful`` interrupts running jobs, writes
        their frontier checkpoints, and re-queues them as resumable; the
        queue itself survives in the store for :meth:`recover`."""
        with self._cv:
            self._closed = True
            self._stop.set()
            if graceful:
                self._interrupt.set()
            else:
                for job_id, record in self._records.items():
                    if record.state in RUNNING_STATES:
                        self._cancels.setdefault(
                            job_id, threading.Event()
                        ).set()
            self._cv.notify_all()
        deadline = time.monotonic() + timeout
        for thread in self._threads:
            thread.join(max(0.1, deadline - time.monotonic()))

    def recover(self) -> int:
        """Reload job records from a persistent store and re-queue every
        non-terminal job.  Jobs that were RUNNING when the process died
        (hard kill, no checkpoint) restart from scratch."""
        recovered = 0
        with self._cv:
            for job_id, data in self.store.load_jobs().items():
                if job_id in self._records:
                    continue
                record = JobRecord.from_dict(data)
                self._records[record.job_id] = record
                if record.state not in (CANCELLED, FAILED):
                    self._by_digest[record.spec_digest] = record.job_id
                try:
                    seq = int(record.job_id[1:].split("-", 1)[0])
                except ValueError:
                    seq = 0
                self._seq = max(self._seq, seq)
                if record.state in RUNNING_STATES:
                    record.interruptions += 1
                    record.transition(QUEUED,
                                      detail="recovered after hard stop")
                    self._persist(record)
                if record.state != QUEUED:
                    continue
                if "spec" not in record.artifacts:
                    record.transition(
                        FAILED,
                        detail="ephemeral job cannot be recovered",
                    )
                    record.error = "ephemeral job cannot be recovered"
                    self._persist(record)
                    continue
                spec = JobSpec.from_dict(
                    self.store.get_json(record.artifacts["spec"])
                )
                self._work[job_id] = _Work(spec=spec, report=spec.report,
                                           config=spec.config, seq=seq)
                heapq.heappush(self._queue, (-record.priority, seq, job_id))
                recovered += 1
                self.stats.recovered += 1
            if self._queue:
                self._ensure_workers()
                self._cv.notify_all()
        return recovered

    # -- the scheduler ---------------------------------------------------------

    def _ensure_workers(self) -> None:
        # Called under the lock.
        alive = [t for t in self._threads if t.is_alive()]
        self._threads = alive
        while len(self._threads) < self.max_workers:
            thread = threading.Thread(
                target=self._scheduler_loop, daemon=True,
                name=f"repro-service-{len(self._threads)}",
            )
            self._threads.append(thread)
            thread.start()

    def _pop_runnable(self) -> Optional[str]:
        # Called under the lock; skips entries whose record left QUEUED
        # (cancelled while queued, or re-submitted stale heap entries).
        while self._queue:
            _, _, job_id = heapq.heappop(self._queue)
            record = self._records.get(job_id)
            if record is not None and record.state == QUEUED:
                return job_id
        return None

    def _scheduler_loop(self) -> None:
        worker = threading.current_thread().name
        while True:
            with self._cv:
                self._heartbeats[worker] = time.time()
                job_id = None
                while not self._stop.is_set():
                    job_id = self._pop_runnable()
                    if job_id is not None:
                        break
                    # Every queue/state change notifies; the timeout is a
                    # safety net, not the wake mechanism.
                    self._cv.wait(5.0)
                    self._heartbeats[worker] = time.time()
                if job_id is None:
                    return
                record = self._records[job_id]
                record.transition(STATIC)
                cancel = self._cancels.setdefault(job_id, threading.Event())
                self._persist(record)
                self._busy += 1
            try:
                self._execute(job_id, record, cancel)
            except Exception:  # noqa: BLE001 -- job must record the failure
                with self._cv:
                    record.error = traceback.format_exc(limit=20)
                    record.transition(FAILED, detail="internal error")
                    self.stats.failed += 1
                    self._prune(job_id)
                    self._persist(record)
                    self._cv.notify_all()
            finally:
                with self._lock:
                    self._busy -= 1
                    self._heartbeats[worker] = time.time()

    def _execute(self, job_id: str, record: JobRecord,
                 cancel: threading.Event) -> None:
        start = time.perf_counter()
        try:
            self._execute_job(job_id, record, cancel)
        finally:
            self.registry.histogram("esd_job_seconds").observe(
                time.perf_counter() - start
            )

    def _execute_job(self, job_id: str, record: JobRecord,
                     cancel: threading.Event) -> None:
        work = self._work[job_id]
        program = self._program_for_work(work)
        report = work.report
        if report is None:
            # Workload job without an embedded report: generate the
            # deterministic coredump server-side.
            from ..workloads import get

            report = get(work.spec.workload).make_report()
            work.report = report
        config = self._job_config(work.config)

        if work.spec is not None and work.spec.kind == "repair":
            self._execute_repair(job_id, record, cancel, work, program,
                                 report, config)
            return

        # Per-job tracer: jobs on one program share a solver, so the solver
        # itself is never instrumented here (a shared tracer would mix
        # concurrent jobs' queries); phase and quantum spans are per-run.
        tracer = Tracer() if self.trace_jobs else None
        job_span = (tracer.begin(f"job:{job_id}", "job",
                                 {"program": program.key,
                                  "bug_type": report.bug_type})
                    if tracer is not None else None)
        # Per-job flight recorder, same sharing rules as the tracer: the
        # shared solver is never instrumented, only this job's search loop.
        flight = FlightRecorder() if self.record_flight else None

        setup = build_search_setup(
            program.module, report, config,
            statics=program.statics, solver=program.solver,
            tracer=tracer, flight=flight,
        )

        # Job bookkeeping (checkpoint restore, state persist) is timed
        # under its own span so the trace attributes the gap between
        # phase:static and phase:search instead of leaving it dark.
        admit_span = (tracer.begin("job.admit", "span")
                      if tracer is not None else None)
        frontier = None
        count_frontier = True
        prior = None
        checkpoint_digest = record.artifacts.get("checkpoint")
        if checkpoint_digest is not None:
            from ..distrib import ExplorationCheckpoint
            from ..distrib.snapshot import restore_states

            prior = ExplorationCheckpoint.from_dict(
                self.store.get_json(checkpoint_digest)
            )
            frontier = restore_states(prior.frontier)
            count_frontier = False

        with self._cv:
            record.transition(SEARCHING,
                              detail=f"resuming {len(frontier)} frontier "
                                     f"state(s)" if frontier else "")
            self._persist(record)
        if tracer is not None:
            tracer.finish(admit_span, {"resumed": frontier is not None})

        def on_progress(event) -> None:
            if event.kind in ("progress", "bug"):
                with self._lock:
                    record.add_event("progress", detail=event.kind,
                                     instructions=event.instructions)

        def should_stop() -> bool:
            return cancel.is_set() or self._interrupt.is_set()

        result = search_from_setup(
            program.module, setup, config,
            frontier=frontier, count_frontier=count_frontier,
            on_progress=on_progress, should_stop=should_stop,
            tracer=tracer, flight=flight,
        )
        program.absorb_executor(setup.executor)
        trace_digest = None
        if tracer is not None:
            tracer.finish(job_span, {
                "found": result.found,
                "reason": result.reason,
                "instructions": result.instructions,
                "states": result.states_explored,
            })
            trace_digest = self.store.put_bytes(
                canonical_json_bytes(tracer.to_document(
                    meta={"job_id": job_id, "program": program.key}
                )),
                kind="trace",
            )
        flight_digest = None
        flight_counts = None
        if flight is not None:
            flight_digest = self.store.put_bytes(
                canonical_json_bytes(flight.to_document(
                    meta={"job_id": job_id, "program": program.key,
                          "bug_type": report.bug_type}
                )),
                kind="searchlog",
            )
            flight_counts = flight.counts()
        self._absorb_obs(tracer, flight)
        if prior is not None:
            result.instructions += prior.instructions
            result.states_explored += prior.states_explored
            result.search_seconds += prior.search_seconds
            result.static_seconds += prior.static_seconds
            if result.execution_file is not None:
                result.execution_file.instructions_explored = (
                    result.instructions
                )

        with self._cv:
            record.result = _result_summary(result)
            if trace_digest is not None:
                record.artifacts["trace"] = trace_digest
            if flight_digest is not None and flight_counts is not None:
                record.artifacts["flight"] = flight_digest
                ends = flight_counts["ends"]
                record.add_event(
                    "flight",
                    detail=(f"picks={flight_counts['picks']} "
                            f"adds={flight_counts['adds']} "
                            f"drops={flight_counts['drops']} "
                            f"ends={sum(ends.values())} "
                            f"reason={flight_counts['reason'] or '?'}"),
                )
            if result.found:
                record.artifacts["execution"] = self.store.put_bytes(
                    result.execution_file.canonical_bytes(), kind="execution"
                )
                record.transition(FOUND, reason="goal")
                self.stats.completed += 1
            elif result.reason == "cancelled":
                if self._interrupt.is_set() and not cancel.is_set():
                    digest = self._checkpoint_job(program, report, config,
                                                  setup, result)
                    if digest is not None:
                        record.artifacts["checkpoint"] = digest
                        record.add_event("checkpoint", detail=digest)
                    record.interruptions += 1
                    record.transition(QUEUED,
                                      detail="interrupted; resumable")
                    self.stats.interrupted += 1
                else:
                    record.transition(CANCELLED, reason="cancelled",
                                      detail="cancelled mid-search")
                    self.stats.cancelled += 1
            else:
                record.transition(EXHAUSTED, reason=result.reason)
                self.stats.completed += 1
            if record.terminal:
                # A long-lived daemon must not pin every finished job's
                # report/source payload and cancel event forever; the
                # JobRecord alone serves status queries.
                self._prune(job_id)
            self._persist(record)
            self._cv.notify_all()

    def _execute_repair(self, job_id: str, record: JobRecord,
                        cancel: threading.Event, work: _Work,
                        program: ServiceProgram, report: BugReport,
                        config: ESDConfig) -> None:
        """Run a ``repair`` job: localize -> patch -> validate, with the
        validated patch stored content-addressed next to the failing
        execution it was synthesized from."""
        from ..repair import RepairConfig, repair

        spec = work.spec
        repair_config = (RepairConfig.from_dict(spec.repair_config)
                         if spec.repair_config else RepairConfig())
        if repair_config.esd is None:
            repair_config.esd = config

        with self._cv:
            record.transition(SEARCHING, detail="repair: localize + patch")
            self._persist(record)

        def on_progress(event) -> None:
            if event.kind in ("progress", "bug"):
                with self._lock:
                    record.add_event("progress", detail=event.detail or event.kind,
                                     instructions=event.instructions)

        def should_stop() -> bool:
            return cancel.is_set() or self._interrupt.is_set()

        result = repair(
            program.module, report, config=repair_config,
            statics=program.statics, solver=program.solver,
            on_progress=on_progress, should_stop=should_stop,
        )

        with self._cv:
            record.result = {"kind": "repair", **result.summary()}
            if result.failing_execution is not None:
                record.artifacts["execution"] = self.store.put_bytes(
                    result.failing_execution.canonical_bytes(),
                    kind="execution",
                )
            if result.found:
                # Canonical byte form: two jobs synthesizing the identical
                # patch share one stored object (timing lives in `result`).
                record.artifacts["patch"] = self.store.put_bytes(
                    result.patch.canonical_bytes(), kind="patch"
                )
                record.transition(FOUND, reason="patched")
                self.stats.completed += 1
            elif result.reason == "cancelled":
                if self._interrupt.is_set() and not cancel.is_set():
                    # Graceful drain: repair has no frontier checkpoint --
                    # requeue the job whole; a restarted daemon redoes it.
                    record.interruptions += 1
                    record.transition(QUEUED,
                                      detail="interrupted; repair restarts")
                    self.stats.interrupted += 1
                else:
                    record.transition(CANCELLED, reason="cancelled",
                                      detail="cancelled mid-repair")
                    self.stats.cancelled += 1
            else:
                # 'no-patch' / 'no-failing-execution': the pipeline completed
                # without a validated patch.
                record.transition(EXHAUSTED, reason=result.reason)
                self.stats.completed += 1
            if record.terminal:
                self._prune(job_id)
            self._persist(record)
            self._cv.notify_all()

    def _job_config(self, config: Optional[ESDConfig]) -> ESDConfig:
        # Every job gets a private config copy: SearchBudget is mutable and
        # must not be shared across concurrently running jobs.
        template = config or self.default_config
        return ESDConfig.from_dict(template.to_dict())

    def _checkpoint_job(self, program: ServiceProgram, report: BugReport,
                        config: ESDConfig, setup,
                        result: SynthesisResult) -> Optional[str]:
        from ..distrib import ExplorationCheckpoint
        from ..distrib.snapshot import snapshot_states

        scored = setup.searcher.export_frontier()
        if not scored:
            return None
        checkpoint = ExplorationCheckpoint(
            module=program.module,
            report=report,
            config=config,
            frontier=snapshot_states([state for _, state in scored]),
            scores=[score for score, _ in scored],
            instructions=result.instructions,
            states_explored=result.states_explored,
            search_seconds=result.search_seconds,
            static_seconds=result.static_seconds,
            workers=1,
        )
        return self.store.put_json(checkpoint.to_dict(), kind="checkpoint")

    def _prune(self, job_id: str) -> None:
        """Drop a terminal job's runtime payloads (called under the lock)."""
        self._work.pop(job_id, None)
        self._cancels.pop(job_id, None)

    def _persist(self, record: JobRecord) -> None:
        self.store.save_job(record.job_id, record.to_dict())

    def _absorb_obs(self, tracer: Optional[Tracer],
                    flight: Optional[FlightRecorder]) -> None:
        """Fold a finished job's observer buffer pressure into the
        cumulative ``esd_obs_*`` sources (dropped counts sum; high-water
        marks keep the max across jobs)."""
        if tracer is None and flight is None:
            return
        with self._lock:
            if tracer is not None:
                self._obs_totals["trace_dropped_spans"] += tracer.dropped
                self._obs_totals["trace_span_high_water"] = max(
                    self._obs_totals["trace_span_high_water"],
                    tracer.high_water,
                )
            if flight is not None:
                self._obs_totals["flight_dropped_records"] += flight.dropped
                self._obs_totals["flight_record_high_water"] = max(
                    self._obs_totals["flight_record_high_water"],
                    flight.high_water,
                )

    # -- the inline path (ReproSession's engine) -------------------------------

    def synthesize(
        self,
        program: ServiceProgram,
        report: BugReport,
        config: Optional[ESDConfig] = None,
        *,
        on_progress: Optional[EventCallback] = None,
        should_stop: Optional[StopPredicate] = None,
        workers: int = 1,
        checkpoint_path: Optional[str] = None,
        checkpoint_interval: float = 5.0,
        handle_signals: bool = False,
        tracer: Optional[Tracer] = None,
        flight: Optional[FlightRecorder] = None,
    ) -> SynthesisResult:
        """Synchronous synthesis on the caller's thread against the shared
        program context -- the engine behind ``ReproSession.synthesize``.

        ``workers > 1`` (or a ``checkpoint_path``) routes the search through
        :class:`~repro.distrib.ParallelExplorer`; ``should_stop`` callers
        (portfolio variants on threads) always get the serial engine, since
        forking a pool from a multi-threaded parent is not safe.  The
        flight recorder covers the serial engine only -- a pool run's picks
        happen in the worker processes, so ``flight`` is ignored there.
        """
        config = config or self.default_config
        use_pool = workers > 1 or checkpoint_path is not None
        if use_pool and should_stop is None:
            from ..distrib import (
                DistribUnsupportedError,
                ParallelExplorer,
                parallel_supported,
            )

            if checkpoint_path is not None and not parallel_supported():
                raise DistribUnsupportedError(
                    "checkpointing requires the parallel exploration pool, "
                    "which needs the fork start method (unavailable here)"
                )
            if parallel_supported():
                pool = ParallelExplorer(
                    program.module,
                    report,
                    config,
                    workers=workers,
                    statics=program.statics,
                    solver=program.solver,
                    on_event=on_progress,
                    checkpoint_path=checkpoint_path,
                    checkpoint_interval=checkpoint_interval,
                    handle_signals=handle_signals,
                    tracer=tracer,
                )
                return pool.run()
        # Module-global call (not a direct-import binding) so tests can
        # stub the serial engine; the sink folds the finished run's
        # executor counters into the program's totals (the registry's
        # ``esd_exec_*`` source) before the executor is dropped.
        result = esd_synthesize(
            program.module, report, config,
            statics=program.statics, solver=program.solver,
            on_progress=on_progress, should_stop=should_stop,
            tracer=tracer, flight=flight,
            executor_sink=program.absorb_executor,
        )
        self._absorb_obs(tracer, flight)
        return result
