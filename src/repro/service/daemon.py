"""The ``repro serve`` daemon: ReproService over stdlib HTTP + a spool dir.

Wire API (all JSON; no dependencies beyond :mod:`http.server`)::

    GET  /healthz                   liveness, queue depth, worker states
    GET  /metrics                   Prometheus text exposition (0.0.4)
    GET  /v1/metrics                esd-metrics-v1 JSON snapshot
    POST /v1/jobs                   submit a JobSpec document
    GET  /v1/jobs                   list job records
    GET  /v1/jobs/<id>              one job record
    GET  /v1/jobs/<id>/events       lifecycle/progress events (?since=SEQ)
    GET  /v1/jobs/<id>/stream       live server-sent events (?since=SEQ)
    GET  /v1/jobs/<id>/result       terminal record (409 while in flight)
    POST /v1/jobs/<id>/cancel       cancel queued or running
    GET  /v1/artifacts/<digest>     raw artifact bytes by store digest

``/stream`` wire format (SSE, ``text/event-stream``): each job event is
one frame -- an ``event:`` line naming the event kind (``state``,
``progress``, ``flight``, ...), a ``data:`` line carrying the event
record as compact JSON (including its ``seq``), and a blank line.
``?since=SEQ`` starts past already-seen events, exactly as on
``/events``; ``?heartbeat=SECS`` (default 10) bounds the quiet interval
with ``: heartbeat`` comment frames so client read timeouts never fire
mid-job.  The stream always terminates with an ``event: done`` frame
whose data is the terminal job record, then the connection closes
(``Connection: close`` delimits the stream; there is no Content-Length).
``repro status JOB --follow`` and :meth:`ServiceClient.stream` consume
exactly this.

Spool mode watches a directory for ``*.json`` job-spec files -- the
scriptable, no-HTTP integration path: drop ``fix-1042.json`` in, the file
is submitted and renamed to ``fix-1042.json.submitted``, and the terminal
record appears as ``fix-1042.result.json`` next to it.

:class:`ServiceDaemon` owns the HTTP thread and the spool watcher;
``stop()`` (what the CLI's SIGTERM/SIGINT handlers call) shuts the listener
down and drains the service gracefully -- in-flight jobs checkpoint their
frontiers and re-queue as resumable, never FAILED.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Optional
from urllib.parse import parse_qs, urlparse

from .. import __version__
from ..api.jobs import (
    TERMINAL_STATES,
    JobError,
    JobSpec,
    ResultNotReadyError,
    SpecError,
    UnknownJobError,
)
from ..schema import SchemaVersionError
from ..store import UnknownArtifactError
from .service import ReproService

__all__ = ["ServiceDaemon"]


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = f"repro-serve/{__version__}"

    # -- plumbing -------------------------------------------------------------

    @property
    def service(self) -> ReproService:
        return self.server.repro_service

    def log_message(self, fmt, *args):  # noqa: D102 -- quiet by default
        if self.server.repro_verbose:
            super().log_message(fmt, *args)

    def _send_json(self, payload, status: int = 200) -> None:
        body = json.dumps(payload, indent=2).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, message: str) -> None:
        self._send_json({"error": message}, status=status)

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length", "0"))
        raw = self.rfile.read(length) if length else b""
        try:
            data = json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, ValueError) as exc:
            raise SpecError(f"request body is not JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise SpecError("request body must be a JSON object")
        return data

    # -- routing --------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 -- http.server naming
        self._route("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._route("POST")

    def _route(self, method: str) -> None:
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        query = parse_qs(url.query)
        try:
            self._dispatch(method, parts, query)
        except UnknownJobError as exc:
            self._send_error_json(404, str(exc))
        except UnknownArtifactError as exc:
            self._send_error_json(404, str(exc))
        except ResultNotReadyError as exc:
            self._send_error_json(409, str(exc))
        except (SpecError, SchemaVersionError) as exc:
            self._send_error_json(400, str(exc))
        except JobError as exc:
            self._send_error_json(503, str(exc))
        except BrokenPipeError:  # client went away mid-reply
            pass
        except Exception as exc:  # noqa: BLE001 -- daemon must not die
            self._send_error_json(500, f"internal error: {exc}")

    def _dispatch(self, method: str, parts: list[str], query: dict) -> None:
        if method == "GET" and parts == ["healthz"]:
            payload = self.service.health()
            payload["jobs_total"] = sum(payload["jobs"].values())
            self._send_json(payload)
            return
        if method == "GET" and parts == ["metrics"]:
            body = self.service.prometheus_text().encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type",
                             "text/plain; version=0.0.4; charset=utf-8")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            return
        if method == "GET" and parts == ["v1", "metrics"]:
            self._send_json(self.service.metrics_snapshot())
            return
        if len(parts) >= 2 and parts[0] == "v1" and parts[1] == "jobs":
            self._dispatch_jobs(method, parts[2:], query)
            return
        if (method == "GET" and len(parts) == 3 and parts[0] == "v1"
                and parts[1] == "artifacts"):
            data = self.service.store.get_bytes(parts[2])
            kind = self.service.store.kind(parts[2])
            self.send_response(200)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(data)))
            self.send_header("X-Repro-Artifact-Kind", kind)
            self.end_headers()
            self.wfile.write(data)
            return
        self._send_error_json(404, f"no route {method} {self.path}")

    def _dispatch_jobs(self, method: str, rest: list[str],
                       query: dict) -> None:
        service = self.service
        if not rest:
            if method == "POST":
                spec = JobSpec.from_dict(self._read_body())
                record = service.submit(spec)
                # describe(): serialize under the service lock -- a
                # scheduler thread may already be mutating the record.
                self._send_json({"job": service.describe(record.job_id)},
                                status=202)
            elif method == "GET":
                self._send_json({"jobs": service.describe_all()})
            else:
                self._send_error_json(405, "method not allowed")
            return
        job_id = rest[0]
        action = rest[1] if len(rest) > 1 else None
        if method == "GET" and action is None:
            self._send_json(service.describe(job_id))
        elif method == "GET" and action == "events":
            since = int(query.get("since", ["0"])[0])
            self._send_json({"events": service.events(job_id, since=since)})
        elif method == "GET" and action == "stream":
            since = int(query.get("since", ["0"])[0])
            heartbeat = float(query.get("heartbeat", ["10"])[0])
            self._stream_events(job_id, since, heartbeat)
        elif method == "GET" and action == "result":
            self._send_json(service.result(job_id).to_dict())
        elif method == "POST" and action == "cancel":
            service.cancel(job_id)
            self._send_json(service.describe(job_id))
        else:
            self._send_error_json(404, f"no route {method} {self.path}")

    # -- server-sent events ----------------------------------------------------

    def _write_sse(self, event: str, data: dict) -> None:
        payload = json.dumps(data, separators=(",", ":"))
        self.wfile.write(f"event: {event}\ndata: {payload}\n\n".encode("utf-8"))
        self.wfile.flush()

    def _stream_events(self, job_id: str, since: int,
                       heartbeat: float) -> None:
        """``GET /v1/jobs/<id>/stream``: the ``?since=`` event feed as a
        live ``text/event-stream``.

        Each job event becomes one SSE frame (``event:`` is the job-event
        kind, ``data:`` the JSON event); comment frames (``: heartbeat``)
        keep idle connections alive, and a final ``done`` frame carrying
        the job record ends the stream when the job turns terminal.  SSE
        has no Content-Length, so the response closes the connection to
        delimit the stream (``Connection: close``).
        """
        service = self.service
        service.describe(job_id)  # 404s before headers go out
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream; charset=utf-8")
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Connection", "close")
        self.end_headers()
        self.close_connection = True
        poll = min(0.2, heartbeat)
        last_write = time.monotonic()
        try:
            while True:
                events = service.events(job_id, since=since)
                for event in events:
                    since = max(since, int(event.get("seq", since)))
                    self._write_sse(event.get("kind") or "message", event)
                record = service.describe(job_id)
                if record["state"] in TERMINAL_STATES:
                    self._write_sse("done", record)
                    return
                if events:
                    last_write = time.monotonic()
                elif time.monotonic() - last_write >= heartbeat:
                    self.wfile.write(b": heartbeat\n\n")
                    self.wfile.flush()
                    last_write = time.monotonic()
                time.sleep(poll)
        except (BrokenPipeError, ConnectionResetError):
            pass  # follower went away; nothing to clean up


class _SpoolWatcher(threading.Thread):
    """Polls a directory for job-spec files; writes terminal records back."""

    def __init__(self, service: ReproService, directory: Path,
                 interval: float = 0.25) -> None:
        super().__init__(daemon=True, name="repro-spool")
        self.service = service
        self.directory = Path(directory)
        self.interval = interval
        # Not `_stop`: that name is a threading.Thread internal.
        self._stop_spool = threading.Event()
        # job_id -> pending .result.json paths.  A list: two spec files
        # with identical content dedupe to one job, and each file's
        # promised result must still be written.
        self._pending: dict[str, list[Path]] = {}

    def stop(self) -> None:
        self._stop_spool.set()

    def run(self) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        self._recover_submitted()
        while not self._stop_spool.is_set():
            self._scan_once()
            self._flush_results()
            self._stop_spool.wait(self.interval)
        # One final flush so jobs that finished during shutdown still get
        # their result files.
        self._flush_results()

    def _recover_submitted(self) -> None:
        """Re-adopt ``.submitted`` files whose result was never written: a
        restarted daemon must still honor the drop-a-spec-get-a-result
        contract.  Re-submitting the spec dedupes onto the recovered job
        (or its terminal record), so no work is redone."""
        for path in sorted(self.directory.glob("*.json.submitted")):
            stem = path.name[: -len(".json.submitted")]
            if (self.directory / (stem + ".result.json")).exists():
                continue
            try:
                spec = JobSpec.from_dict(json.loads(path.read_text()))
                record = self.service.submit(spec)
            except (OSError, ValueError, JobError, SchemaVersionError):
                continue  # was rejected before; leave the error file story
            self._pending.setdefault(record.job_id, []).append(
                self.directory / (stem + ".result.json")
            )

    def _scan_once(self) -> None:
        for path in sorted(self.directory.glob("*.json")):
            name = path.name
            if name.endswith(".result.json") or name.endswith(".error.json"):
                continue
            try:
                spec = JobSpec.from_dict(json.loads(path.read_text()))
                record = self.service.submit(spec)
            except (OSError, ValueError, JobError,
                    SchemaVersionError) as exc:
                path.rename(path.with_name(name + ".rejected"))
                error_path = self.directory / (path.stem + ".error.json")
                error_path.write_text(json.dumps({
                    "file": name, "error": str(exc),
                }, indent=2))
                continue
            path.rename(path.with_name(name + ".submitted"))
            self._pending.setdefault(record.job_id, []).append(
                self.directory / (path.stem + ".result.json")
            )

    def _flush_results(self) -> None:
        from ..schema import atomic_write_text

        for job_id, targets in list(self._pending.items()):
            record = self.service.describe(job_id)
            if record["state"] not in TERMINAL_STATES:
                continue
            for target in targets:
                atomic_write_text(target, json.dumps(record, indent=2))
            del self._pending[job_id]


class ServiceDaemon:
    """The HTTP listener + optional spool watcher around one service."""

    def __init__(
        self,
        service: ReproService,
        host: str = "127.0.0.1",
        port: int = 8377,
        *,
        spool_dir=None,
        verbose: bool = False,
    ) -> None:
        self.service = service
        self.httpd = ThreadingHTTPServer((host, port), _Handler)
        self.httpd.daemon_threads = True
        self.httpd.repro_service = service
        self.httpd.repro_verbose = verbose
        self.spool = (
            _SpoolWatcher(service, Path(spool_dir))
            if spool_dir is not None else None
        )
        self._http_thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    @property
    def host(self) -> str:
        return self.httpd.server_address[0]

    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> None:
        self._http_thread = threading.Thread(
            target=self.httpd.serve_forever, daemon=True, name="repro-http",
        )
        self._http_thread.start()
        if self.spool is not None:
            self.spool.start()

    def request_stop(self) -> None:
        """Signal-handler safe: ask :meth:`run` to wind down."""
        self._stop.set()

    def stop(self, graceful: bool = True) -> None:
        """Stop listening and drain the service (graceful = checkpoint and
        re-queue in-flight jobs instead of failing them)."""
        self._stop.set()
        self.httpd.shutdown()
        self.httpd.server_close()
        if self.spool is not None:
            self.spool.stop()
        self.service.shutdown(graceful=graceful)
        if self.spool is not None:
            self.spool.join(timeout=5.0)
        if self._http_thread is not None:
            self._http_thread.join(timeout=5.0)

    def run(self) -> None:
        """Serve until :meth:`request_stop` (the CLI wires SIGTERM/SIGINT
        to it), then shut down gracefully."""
        self.start()
        while not self._stop.is_set():
            self._stop.wait(0.2)
        self.stop(graceful=True)
