"""The job-oriented service layer behind ``repro serve``.

* :mod:`repro.service.service` -- :class:`ReproService`: priority job
  queue, bounded scheduler threads, shared per-program static/solver
  artifacts, content-addressed results, graceful drain with resumable
  checkpoints;
* :mod:`repro.service.daemon` -- the stdlib-HTTP daemon plus the
  spool-directory mode;
* :mod:`repro.service.client` -- the urllib client the ``repro
  submit|status|fetch`` commands use.
"""

from ..api.jobs import (
    CANCELLED,
    EXHAUSTED,
    FAILED,
    FOUND,
    JOB_STATES,
    QUEUED,
    SEARCHING,
    STATIC,
    TERMINAL_STATES,
    JobError,
    JobRecord,
    JobSpec,
    ResultNotReadyError,
    SpecError,
    UnknownJobError,
)
from .service import ReproService, ServiceProgram, ServiceStats

__all__ = [
    "CANCELLED",
    "EXHAUSTED",
    "FAILED",
    "FOUND",
    "JOB_STATES",
    "JobError",
    "JobRecord",
    "JobSpec",
    "QUEUED",
    "ReproService",
    "ResultNotReadyError",
    "SEARCHING",
    "STATIC",
    "ServiceProgram",
    "ServiceStats",
    "SpecError",
    "TERMINAL_STATES",
    "UnknownJobError",
]
