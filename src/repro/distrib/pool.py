"""The parallel exploration pool: sharded work-stealing path search.

:class:`ParallelExplorer` scales the dynamic phase of synthesis across
worker processes:

1. **Seed.**  The master runs the ordinary serial search just long enough
   to grow a frontier worth sharding (a few states per worker).  Trivial
   searches finish right here and never pay for a single fork.
2. **Shard by proximity-score bands.**  The frontier is sorted by the
   searcher's own proximity priority and grouped into bands of ``workers``
   consecutive (equal-proximity) states; each band deals one state to each
   shard.  Every shard therefore spans the whole proximity range -- no
   worker monopolizes the near-goal states, and every worker always has
   promising work.
3. **Explore in quanta.**  Each worker process owns a full search stack
   (executor, searcher, scheduler policy, solver with its own
   counterexample cache) and advances its shard ``quantum`` instructions at
   a time, reporting stats -- and newly learned solver-cache entries -- at
   every quantum boundary.
4. **Steal when drained.**  A worker whose queue runs dry is re-fed from
   the richest idle sibling: the victim exports a stride of its scored
   frontier through the snapshot layer and the master routes it to the
   thief.  Solver-cache deltas ride along at these boundaries, so shards
   share refutations and witnesses.
5. **First win cancels the rest.**  The first worker to reach the goal
   wins; a shared event cancels the siblings cooperatively, and the goal
   state travels back as a snapshot to be solved into an execution file.

Checkpointing (``checkpoint_path``) periodically collects every worker's
frontier -- again through the snapshot layer -- into an
:class:`~repro.distrib.checkpoint.ExplorationCheckpoint`; :meth:`resume`
continues a killed or budget-exhausted run from that file.

Workers are created with the ``fork`` start method: the compiled module,
the warm static-analysis cache, and each worker's initial shard are
inherited by the child for free (no pickling), and fork keeps Python's
string-hash seed -- which the solver cache's structural digests depend on
-- identical across the pool, making cache deltas meaningful cross-process.
Platforms without ``fork`` get :class:`DistribUnsupportedError`; callers
fall back to the serial path.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import signal
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Optional

from .. import ir
from ..coredump import BugReport
from ..core.execfile import execution_file_from_state
from ..obs.trace import Tracer
from ..core.synthesis import (
    ESDConfig,
    SearchSetup,
    StaticAnalysisCache,
    SynthesisResult,
    build_search_setup,
)
from ..search import (
    EventCallback,
    SearchBudget,
    StopPredicate,
    SynthesisEvent,
    explore_frontier,
)
from ..solver import Solver
from ..symbex.state import ExecutionState
from .checkpoint import ExplorationCheckpoint
from .snapshot import restore_states, snapshot_states, verify_roundtrip

__all__ = [
    "DistribUnsupportedError",
    "ParallelExplorer",
    "parallel_supported",
]


class DistribUnsupportedError(RuntimeError):
    """This platform cannot run the parallel pool (no fork start method)."""


def parallel_supported() -> bool:
    """Whether :class:`ParallelExplorer` can run here (fork available)."""
    return "fork" in multiprocessing.get_all_start_methods()


# Solver telemetry fields workers report as per-quantum deltas.
_SOLVER_FIELDS = (
    "queries", "cache_hits", "unsat_superset_hits", "sat_subset_hits",
    "unknown_hits", "sat", "unsat", "unknown", "search_nodes",
    "fastpath_hits", "fastpath_misses",
)


def _solver_snapshot(stats) -> dict:
    return {name: getattr(stats, name) for name in _SOLVER_FIELDS}


def _solver_delta(stats, base: dict) -> dict:
    return {name: getattr(stats, name) - base[name] for name in _SOLVER_FIELDS}


@dataclass(slots=True)
class _Totals:
    """Cumulative counters across seed phase, quanta, and resumed legs."""

    instructions: int = 0
    states: int = 0
    picks: int = 0
    bugs: int = 0
    completed: int = 0
    infeasible: int = 0
    prior_seconds: float = 0.0  # search seconds from resumed legs


@dataclass(slots=True)
class _WorkerHandle:
    proc: multiprocessing.Process
    conn: object
    shard: int
    busy: bool = False  # a command is outstanding
    pending: int = 0  # last reported queue length
    exhausted: bool = False  # reported an empty queue and has no seeds
    dead: bool = False
    seeds: list = field(default_factory=list)  # snapshot payloads to deliver
    seed_scores: list = field(default_factory=list)
    deltas: list = field(default_factory=list)  # cache entries from siblings
    thief: Optional[int] = None  # shard awaiting this worker's stolen states


class ParallelExplorer:
    """Sharded work-stealing exploration with checkpoint/resume.

    Mirrors :func:`~repro.core.synthesis.esd_synthesize`'s contract --
    same inputs, same :class:`SynthesisResult` -- but runs the search phase
    on ``workers`` processes.  ``statics`` and ``solver`` integrate with a
    :class:`~repro.api.ReproSession`'s shared artifacts exactly like the
    serial driver; worker caches are forked from (and their learnings
    merged back into) the session's counterexample cache.
    """

    def __init__(
        self,
        module: ir.Module,
        report: BugReport,
        config: Optional[ESDConfig] = None,
        *,
        workers: int = 2,
        statics: Optional[StaticAnalysisCache] = None,
        solver: Optional[Solver] = None,
        on_event: Optional[EventCallback] = None,
        should_stop: Optional[StopPredicate] = None,
        checkpoint_path: Optional[str] = None,
        checkpoint_interval: float = 5.0,
        quantum: int = 8192,
        steal_batch: int = 8,
        seed_states_per_worker: int = 4,
        verify_snapshots: bool = False,
        source_path: str = "",
        handle_signals: bool = False,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.module = module
        self.report = report
        self.config = config or ESDConfig()
        self.workers = workers
        self.statics = statics or StaticAnalysisCache(module)
        self.solver = solver or Solver()
        self.on_event = on_event
        self.should_stop = should_stop
        self.checkpoint_path = checkpoint_path
        self.checkpoint_interval = checkpoint_interval
        self.quantum = quantum
        self.steal_batch = steal_batch
        self.seed_states_per_worker = seed_states_per_worker
        self.verify_snapshots = verify_snapshots
        self.source_path = source_path
        self.handle_signals = handle_signals
        self.checkpoints_written = 0
        self.steals = 0
        self._shutdown_requested = threading.Event()
        # Observability: worker tracers ship their spans in quantum-status
        # and steal payloads (the same boundaries the solver-cache delta
        # merge uses); the master ingests them under its phase:search span.
        self.tracer = tracer
        self._search_span = None

    # -- public entry points -------------------------------------------------

    def run(self) -> SynthesisResult:
        """Synthesize from scratch (seed, shard, explore)."""
        return self._run(resume=None)

    def resume(self, checkpoint: ExplorationCheckpoint) -> SynthesisResult:
        """Continue a checkpointed synthesis.

        The resumed leg gets a fresh wall-clock/instruction allowance from
        ``config.budget`` (a budget-exhausted run would otherwise exhaust
        again immediately), while reported totals accumulate across legs.
        """
        return self._run(resume=checkpoint)

    def request_shutdown(self) -> None:
        """Ask the running search to wind down gracefully: cancel the
        workers, write a final checkpoint (when ``checkpoint_path`` is
        set), and return with reason ``'interrupted'``.  Signal-handler
        safe."""
        self._shutdown_requested.set()

    # -- master --------------------------------------------------------------

    def _run(self, resume: Optional[ExplorationCheckpoint]) -> SynthesisResult:
        """Graceful-shutdown wrapper: with ``handle_signals``, SIGTERM and
        SIGINT during the run become :meth:`request_shutdown` instead of
        killing the process mid-search, so the final checkpoint makes the
        interrupted job resumable."""
        tracer = self.tracer
        job = (tracer.begin(f"synth:{self.module.name}", "job",
                            {"bug_type": self.report.bug_type,
                             "workers": self.workers,
                             "resumed": resume is not None})
               if tracer is not None and tracer.enabled else None)
        try:
            if not (self.handle_signals
                    and threading.current_thread() is threading.main_thread()):
                return self._run_impl(resume)
            previous = {}

            def on_signal(signum, frame):  # noqa: ARG001 -- signal API
                self.request_shutdown()

            for sig in (signal.SIGTERM, signal.SIGINT):
                previous[sig] = signal.signal(sig, on_signal)
            try:
                return self._run_impl(resume)
            finally:
                for sig, old in previous.items():
                    signal.signal(sig, old)
        finally:
            if job is not None:
                tracer.finish(job)

    def _run_impl(
        self, resume: Optional[ExplorationCheckpoint]
    ) -> SynthesisResult:
        if not parallel_supported():
            raise DistribUnsupportedError(
                "parallel exploration requires the fork start method"
            )
        config = self.config
        budget = config.budget
        totals = _Totals()
        setup = build_search_setup(
            self.module, self.report, config,
            statics=self.statics, solver=self.solver, tracer=self.tracer,
        )
        static_seconds = setup.static_seconds
        started = time.monotonic()
        deadline = started + budget.max_seconds
        traced = self.tracer is not None and self.tracer.enabled
        self._search_span = (self.tracer.begin("phase:search", "phase")
                             if traced else None)

        self._emit("start", totals, (), started)
        if resume is not None:
            totals.instructions = resume.instructions
            totals.states = resume.states_explored
            totals.picks = resume.picks
            totals.bugs = resume.bugs_seen
            totals.completed = resume.paths_completed
            totals.infeasible = resume.paths_infeasible
            totals.prior_seconds = resume.search_seconds
            static_seconds += resume.static_seconds
            scored = list(zip(resume.scores, restore_states(resume.frontier)))
            # Checkpoints concatenate per-shard runs (plus in-flight steal
            # seeds); restore the partitioner's best-first precondition.
            scored.sort(key=lambda pair: pair[0])
            if not scored:
                return self._result(None, "exhausted", setup, totals,
                                    static_seconds, started)
        else:
            seeded = self._seed(setup, budget, totals)
            if seeded is not None:  # search ended during seeding
                outcome_state, reason = seeded
                if reason == "interrupted" and self.checkpoint_path:
                    # Shut down before sharding: the seed searcher's
                    # frontier is the whole resumable state.
                    scored = setup.searcher.export_frontier()
                    self._write_checkpoint(
                        {0: ([score for score, _ in scored],
                             [state for _, state in scored])},
                        (), setup, totals, static_seconds, started,
                    )
                return self._result(outcome_state, reason, setup, totals,
                                    static_seconds, started)
            scored = setup.searcher.export_frontier()
            if self.verify_snapshots:
                for _, state in scored[: self.workers]:
                    verify_roundtrip(state)

        # The leg-local budget: what this run() call may still spend.
        leg = _Totals()
        leg_budget_instructions = budget.max_instructions
        leg_budget_states = budget.max_states

        n_workers = max(1, min(self.workers, len(scored)))
        shards = self._band_partition(scored, n_workers)
        handles = self._spawn(shards, setup)

        goal_state: Optional[ExecutionState] = None
        reason = "exhausted"
        cancel_sent = False
        last_checkpoint = time.monotonic()
        collecting: Optional[dict[int, tuple[list, list]]] = None
        final_collect = False
        self._errors: list[tuple[int, str]] = []

        try:
            while True:
                if goal_state is None and not cancel_sent:
                    if self._shutdown_requested.is_set():
                        # Graceful shutdown: stop the workers and (with a
                        # checkpoint path) collect one final resumable
                        # frontier before returning.
                        reason, cancel_sent = "interrupted", True
                        self._cancel.set()
                        if self.checkpoint_path:
                            final_collect = True
                            if collecting is None:
                                collecting = {}
                    elif self.should_stop is not None and self.should_stop():
                        reason, cancel_sent = "cancelled", True
                        self._cancel.set()
                    elif (leg.instructions >= leg_budget_instructions
                          or leg.states >= leg_budget_states
                          or time.monotonic() > deadline):
                        reason, cancel_sent = "budget", True
                        self._cancel.set()
                        if self.checkpoint_path:
                            final_collect = True
                            if collecting is None:
                                collecting = {}

                alive = [h for h in handles if not h.dead]
                if not alive:
                    break
                stopping = goal_state is not None or cancel_sent
                if not stopping:
                    # Hand new quanta / steal requests to every idle worker.
                    if not self._schedule(alive, budget, deadline, leg,
                                          leg_budget_instructions,
                                          leg_budget_states, collecting):
                        reason = "exhausted"
                        break
                elif collecting is not None and final_collect:
                    # Winding down with a final checkpoint: idle workers
                    # only get export requests, never new quanta.
                    for h in alive:
                        if (not h.busy and h.shard not in collecting
                                and not h.exhausted):
                            self._send(h, ("export", None))

                busy = [h for h in alive if h.busy]
                if not busy:
                    if stopping:
                        break
                    reason = "exhausted"
                    break
                ready = multiprocessing.connection.wait(
                    [h.conn for h in busy], timeout=1.0
                )
                if not ready:
                    for h in busy:
                        if not h.proc.is_alive():
                            self._mark_dead(h, handles)
                    continue
                for conn in ready:
                    handle = next(h for h in busy if h.conn is conn)
                    try:
                        op, payload = conn.recv()
                    except (EOFError, OSError):
                        self._mark_dead(handle, handles)
                        continue
                    handle.busy = False
                    if op == "error":
                        self._errors.append((handle.shard, payload))
                        self._mark_dead(handle, handles)
                    elif op == "status":
                        found = self._absorb_status(
                            handle, payload, handles, totals, leg
                        )
                        self._emit("progress", totals, handles, started,
                                   worker=handle.shard)
                        if found is not None and goal_state is None:
                            goal_state = found
                            reason = "goal"
                            cancel_sent = True
                            self._cancel.set()
                    elif op == "stolen":
                        self._route_steal(handle, payload, handles)
                    elif op == "frontier":
                        if collecting is not None:
                            collecting[handle.shard] = (
                                payload["scores"],
                                restore_states(payload["payload"]),
                            )
                        handle.pending = payload["pending"]
                # Periodic checkpoint: start a collection round when due.
                if (self.checkpoint_path and collecting is None
                        and goal_state is None and not cancel_sent
                        and time.monotonic() - last_checkpoint
                        >= self.checkpoint_interval):
                    collecting = {}
                if collecting is not None:
                    done = all(
                        h.dead or h.exhausted or h.shard in collecting
                        for h in handles
                    )
                    if done:
                        self._write_checkpoint(collecting, handles, setup,
                                               totals, static_seconds, started)
                        last_checkpoint = time.monotonic()
                        collecting = None
                        if final_collect:
                            break
        finally:
            self._shutdown(handles)

        if goal_state is None and self._errors:
            # Do not let a worker crash masquerade as a genuine negative
            # ("exhausted"/"budget") answer.
            if self._search_span is not None and self.tracer is not None:
                self.tracer.finish(self._search_span, {"reason": "error"})
                self._search_span = None
            shard, trace = self._errors[0]
            raise RuntimeError(
                f"parallel exploration worker {shard} crashed "
                f"({len(self._errors)} worker error(s) total):\n{trace}"
            )
        return self._result(goal_state, reason, setup, totals,
                            static_seconds, started)

    # -- seed phase ----------------------------------------------------------

    def _seed(self, setup: SearchSetup, budget: SearchBudget, totals: _Totals):
        """Grow the frontier serially until it is worth sharding.

        Returns ``(goal_state_or_None, reason)`` when the search *finished*
        during seeding (goal found, exhausted, budget, cancelled), or None
        when a frontier is ready to shard.
        """
        target = self.workers * self.seed_states_per_worker
        searcher = setup.searcher

        def stop() -> bool:
            if self._shutdown_requested.is_set():
                return True
            if self.should_stop is not None and self.should_stop():
                return True
            return len(searcher) >= target

        forward = None
        if self.on_event is not None:
            # Forward the seed search's observations, minus its own
            # start/done bracket (the pool emits its own).
            def forward(event: SynthesisEvent) -> None:
                if event.kind in ("progress", "bug"):
                    self.on_event(event)

        outcome = explore_frontier(
            setup.executor, searcher, [setup.executor.initial_state()],
            setup.goal.matches, budget, should_stop=stop, on_event=forward,
            tracer=self.tracer,
        )
        totals.instructions += outcome.stats.instructions
        totals.states += outcome.stats.states_explored
        totals.picks += outcome.stats.picks
        totals.bugs += outcome.stats.bugs_seen
        totals.completed += outcome.stats.paths_completed
        totals.infeasible += outcome.stats.paths_infeasible
        if outcome.reason != "cancelled":
            return outcome.goal_state, outcome.reason
        if self._shutdown_requested.is_set():
            return None, "interrupted"
        if self.should_stop is not None and self.should_stop():
            return None, "cancelled"
        return None

    # -- sharding ------------------------------------------------------------

    @staticmethod
    def _band_partition(scored, n_workers: int) -> list[list[ExecutionState]]:
        """Deal the score-sorted frontier band by band across shards.

        ``scored`` is best-first; each consecutive group of ``n_workers``
        states (one proximity band) contributes one state to every shard,
        so all shards span the full proximity range.
        """
        shards: list[list[ExecutionState]] = [[] for _ in range(n_workers)]
        for index, (_, state) in enumerate(scored):
            shards[index % n_workers].append(state)
        return shards

    def _spawn(self, shards, setup: SearchSetup) -> list[_WorkerHandle]:
        ctx = multiprocessing.get_context("fork")
        self._cancel = ctx.Event()
        handles = []
        for shard_id, shard in enumerate(shards):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(child_conn, shard_id, self.module, self.report,
                      self.config, self.statics, self.solver.cache,
                      self._cancel, shard,
                      self.tracer is not None and self.tracer.enabled),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            handles.append(_WorkerHandle(
                proc=proc, conn=parent_conn, shard=shard_id,
                pending=len(shard),
            ))
        self._handles = handles
        return handles

    # -- master bookkeeping ----------------------------------------------------

    def _send(self, handle: _WorkerHandle, message) -> None:
        try:
            handle.conn.send(message)
            handle.busy = True
        except (OSError, ValueError):
            self._mark_dead(handle, self._handles)

    def _mark_dead(self, handle: _WorkerHandle, handles) -> None:
        """Retire a worker, re-homing any frontier it was owed."""
        handle.dead = True
        handle.busy = False
        survivor = next(
            (h for h in handles if h is not handle and not h.dead), None
        )
        if survivor is not None and handle.seeds:
            survivor.seeds.extend(handle.seeds)
            survivor.seed_scores.extend(handle.seed_scores)
            survivor.exhausted = False
        handle.seeds = []
        handle.seed_scores = []

    def _send_run(self, handle, budget, deadline, leg,
                  max_instructions: int, max_states: int) -> None:
        params = {
            "max_instructions": min(self.quantum,
                                    max(1, max_instructions - leg.instructions)),
            "max_states": max(1, max_states - leg.states),
            "max_seconds": max(0.1, min(5.0, deadline - time.monotonic())),
            "deltas": handle.deltas,
            "seeds": handle.seeds,
            "seed_scores": handle.seed_scores,
        }
        self._send(handle, ("run", params))
        if handle.dead:
            return  # _mark_dead already re-homed the undelivered seeds
        handle.deltas = []
        handle.seeds = []
        handle.seed_scores = []

    def _schedule(self, alive, budget, deadline, leg,
                  max_instructions, max_states, collecting) -> bool:
        """Hand out work to idle workers.  Returns False when the whole pool
        is exhausted (nothing pending anywhere, no seeds in flight)."""
        for handle in alive:
            if handle.busy:
                continue
            if collecting is not None and handle.shard not in collecting \
                    and not handle.exhausted:
                self._send(handle, ("export", None))
                continue
            if handle.pending > 0 or handle.seeds:
                handle.exhausted = False
                self._send_run(handle, budget, deadline, leg,
                               max_instructions, max_states)
                continue
            # Starved: steal from the richest idle sibling.
            victims = sorted(
                (h for h in alive if h is not handle and not h.busy
                 and h.pending > 1),
                key=lambda h: h.pending, reverse=True,
            )
            if victims:
                victim = victims[0]
                count = max(1, min(self.steal_batch, victim.pending // 2))
                victim.thief = handle.shard
                self._send(victim, ("steal", count))
                self.steals += 1
            else:
                handle.exhausted = True
        return any(
            h.busy or h.pending > 0 or h.seeds
            for h in alive
        )

    def _absorb_status(self, handle, payload, handles, totals: _Totals,
                       leg: _Totals) -> Optional[ExecutionState]:
        for tally in (totals, leg):
            tally.instructions += payload["instructions"]
            tally.states += payload["new_states"]
            tally.picks += payload["picks"]
            tally.bugs += payload["bugs"]
            tally.completed += payload["completed"]
            tally.infeasible += payload["infeasible"]
        handle.pending = payload["pending"]
        if handle.pending > 0 or handle.seeds:
            handle.exhausted = False
        delta = payload["delta"]
        if delta:
            # Learned constraints flow through the session cache to every
            # sibling shard at the next quantum boundary.
            self.solver.cache.merge_delta(delta)
            for other in handles:
                if other is not handle and not other.dead:
                    other.deltas.extend(delta)
        solver_delta = payload["solver"]
        for name, value in solver_delta.items():
            setattr(self.solver.stats, name,
                    getattr(self.solver.stats, name) + value)
        self._ingest_spans(handle, payload)
        if payload["goal"] is not None:
            return restore_states(payload["goal"])[0]
        return None

    def _ingest_spans(self, handle, payload) -> None:
        """Adopt a worker's drained spans under the master's search span."""
        spans = payload.get("spans")
        if spans and self.tracer is not None and self.tracer.enabled:
            parent = (self._search_span.span_id
                      if self._search_span is not None else 0)
            self.tracer.ingest(spans, worker=handle.shard, parent_id=parent)

    def _route_steal(self, victim, payload, handles) -> None:
        victim.pending = payload["pending"]
        self._ingest_spans(victim, payload)
        thief_id, victim.thief = victim.thief, None
        if not payload["payload"]["states"]:
            return
        thief = next((h for h in handles if h.shard == thief_id), None)
        if thief is None or thief.dead:
            # The thief died while the steal was in flight: the victim
            # already gave these states up, so hand them right back rather
            # than dropping part of the frontier.
            thief = victim
        thief.seeds.append(payload["payload"])
        thief.seed_scores.append(payload["scores"])
        thief.exhausted = False

    def _write_checkpoint(self, collected, handles, setup, totals: _Totals,
                          static_seconds: float, started: float) -> None:
        states: list[ExecutionState] = []
        scores: list[float] = []
        for shard_id in sorted(collected):
            shard_scores, shard_states = collected[shard_id]
            scores.extend(shard_scores)
            states.extend(shard_states)
        # Undelivered stolen seeds are part of the frontier too.
        for handle in handles:
            for payload, payload_scores in zip(handle.seeds,
                                               handle.seed_scores):
                restored = restore_states(payload)
                states.extend(restored)
                scores.extend(payload_scores)
        checkpoint = ExplorationCheckpoint(
            module=self.module,
            report=self.report,
            config=self.config,
            frontier=snapshot_states(states),
            scores=scores,
            instructions=totals.instructions,
            states_explored=totals.states,
            picks=totals.picks,
            bugs_seen=totals.bugs,
            paths_completed=totals.completed,
            paths_infeasible=totals.infeasible,
            search_seconds=totals.prior_seconds
            + (time.monotonic() - started),
            static_seconds=static_seconds,
            workers=self.workers,
            source_path=self.source_path,
        )
        checkpoint.save(self.checkpoint_path)
        self.checkpoints_written += 1
        self._emit("checkpoint", totals, handles, started,
                   detail=str(self.checkpoint_path))

    def _shutdown(self, handles) -> None:
        self._cancel.set()
        for handle in handles:
            if handle.dead:
                continue
            # Drain an outstanding reply so the worker is parked on recv().
            if handle.busy and handle.conn.poll(2.0):
                try:
                    handle.conn.recv()
                except (EOFError, OSError):
                    handle.dead = True
            try:
                handle.conn.send(("stop", None))
            except (OSError, ValueError):
                pass
        for handle in handles:
            handle.proc.join(timeout=2.0)
            if handle.proc.is_alive():
                handle.proc.terminate()
                handle.proc.join(timeout=1.0)
            try:
                handle.conn.close()
            except OSError:
                pass

    def _emit(self, kind: str, totals: _Totals, handles, started: float,
              *, worker: int = -1, reason: str = "", detail: str = "") -> None:
        if self.on_event is None:
            return
        self.on_event(SynthesisEvent(
            kind=kind,
            picks=totals.picks,
            instructions=totals.instructions,
            states=totals.states,
            pending=sum(h.pending for h in handles if not h.dead),
            seconds=totals.prior_seconds + (time.monotonic() - started),
            reason=reason,
            detail=detail,
            worker=worker,
            shard=worker,
        ))

    def _result(self, goal_state, reason, setup, totals: _Totals,
                static_seconds: float, started: float) -> SynthesisResult:
        search_seconds = totals.prior_seconds + (time.monotonic() - started)
        tracer = self.tracer
        if self._search_span is not None and tracer is not None:
            tracer.finish(self._search_span,
                          {"reason": reason, "steals": self.steals,
                           "instructions": totals.instructions,
                           "states": totals.states})
            self._search_span = None
        execution_file = None
        if goal_state is not None:
            span = (tracer.begin("phase:solve", "phase")
                    if tracer is not None and tracer.enabled else None)
            try:
                execution_file = execution_file_from_state(
                    self.module.name, goal_state, self.solver,
                    synthesis_seconds=static_seconds + search_seconds,
                    instructions_explored=totals.instructions,
                )
            finally:
                if span is not None:
                    tracer.finish(span)
        self._emit("done", totals, (), started, reason=reason)
        return SynthesisResult(
            found=goal_state is not None,
            reason=reason,
            goal=setup.goal,
            execution_file=execution_file,
            goal_state=goal_state,
            static_seconds=static_seconds,
            search_seconds=search_seconds,
            instructions=totals.instructions,
            states_explored=totals.states,
            other_bugs=totals.bugs,
            intermediate_goal_count=setup.intermediate_count,
        )


# -- worker process -----------------------------------------------------------


def _worker_main(conn, shard_id: int, module, report, config, statics,
                 cache, cancel, shard, trace: bool = False) -> None:
    """One shard's lifetime: build a search stack, serve commands.

    Runs in a forked child.  ``module``, ``statics``, ``cache``, and
    ``shard`` (the initial states) are inherited from the master's address
    space at fork time -- no serialization on the way in.  Everything going
    *back* (stolen states, checkpoints, the goal state) crosses through the
    snapshot layer.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    try:
        try:
            _worker_loop(conn, shard_id, module, report, config, statics,
                         cache, cancel, shard, trace)
        except Exception:  # noqa: BLE001 -- reported to the master
            # A crashed worker must not masquerade as an exhausted shard:
            # ship the traceback so the master can surface (or raise) it.
            try:
                conn.send(("error", traceback.format_exc()))
            except (OSError, ValueError):
                pass
    finally:
        try:
            conn.close()
        except OSError:
            pass
        # A forked child must never run the master's atexit/cleanup handlers.
        os._exit(0)


def _worker_loop(conn, shard_id: int, module, report, config, statics,
                 cache, cancel, shard, trace: bool = False) -> None:
    cache.enable_delta_log()
    cache.drain_delta()  # discard anything journaled before the fork
    solver = Solver(cache=cache)
    # Per-worker tracer: spans accumulate locally and travel to the master
    # inside quantum-status and steal payloads (drained, so each payload
    # carries only the spans since the previous boundary).  The worker's
    # static setup is deliberately *not* traced -- every worker rebuilds the
    # same warm setup, and counting it per worker would double-bill the
    # static phase the master already recorded.
    tracer = Tracer() if trace else None
    if tracer is not None:
        solver.tracer = tracer
    setup = build_search_setup(
        module, report, config, statics=statics, solver=solver,
        seed_offset=shard_id + 1,
    )
    searcher = setup.searcher
    executor = setup.executor
    if tracer is not None:
        executor.tracer = tracer
    solver_base = _solver_snapshot(solver.stats)
    seeds: list[ExecutionState] = list(shard)
    while True:
        try:
            op, arg = conn.recv()
        except (EOFError, OSError):
            break
        if op == "stop":
            break
        if op == "run":
            if arg["deltas"]:
                cache.merge_delta(arg["deltas"])
            for payload in arg["seeds"]:
                seeds.extend(restore_states(payload))
            quantum_budget = SearchBudget(
                max_instructions=arg["max_instructions"],
                max_states=arg["max_states"],
                max_seconds=arg["max_seconds"],
                batch_instructions=config.budget.batch_instructions,
            )
            outcome = explore_frontier(
                executor, searcher, seeds, setup.goal.matches,
                quantum_budget, should_stop=cancel.is_set,
                count_frontier=False, tracer=tracer,
            )
            seeds = []
            goal_payload = None
            if outcome.goal_state is not None:
                goal_payload = snapshot_states([outcome.goal_state])
            conn.send(("status", {
                "reason": outcome.reason,
                "goal": goal_payload,
                "pending": len(searcher),
                "instructions": outcome.stats.instructions,
                "new_states": outcome.stats.states_explored,
                "picks": outcome.stats.picks,
                "bugs": outcome.stats.bugs_seen,
                "completed": outcome.stats.paths_completed,
                "infeasible": outcome.stats.paths_infeasible,
                "delta": cache.drain_delta(),
                "solver": _solver_delta(solver.stats, solver_base),
                "spans": tracer.drain() if tracer is not None else None,
            }))
            solver_base = _solver_snapshot(solver.stats)
        elif op == "steal":
            scored = searcher.export_frontier()
            # Give away a stride of the scored frontier: the thief gets
            # states across the whole proximity range, the victim keeps
            # an interleaved (equally representative) remainder.
            stolen = scored[1::2][:arg]
            stolen_ids = {id(state) for _, state in stolen}
            for score, state in scored:
                if id(state) not in stolen_ids:
                    searcher.add(state)
            conn.send(("stolen", {
                "payload": snapshot_states([s for _, s in stolen]),
                "scores": [score for score, _ in stolen],
                "pending": len(searcher),
                "spans": tracer.drain() if tracer is not None else None,
            }))
        elif op == "export":
            scored = searcher.export_frontier()
            for _, state in scored:
                searcher.add(state)
            conn.send(("frontier", {
                "payload": snapshot_states([s for _, s in scored]),
                "scores": [score for score, _ in scored],
                "pending": len(searcher),
            }))
