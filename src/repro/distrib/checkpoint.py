"""Exploration checkpoints: frontier snapshots that survive a kill.

A checkpoint is one self-contained JSON document holding everything needed
to continue a synthesis that stopped mid-search -- the compiled module, the
bug report, the effective config, the scored frontier (as a
:mod:`~repro.distrib.snapshot` payload), and the cumulative search counters
-- so ``repro resume CKPT`` picks up where a killed or budget-exhausted
``repro synth --checkpoint CKPT`` left off instead of restarting.

The module travels as a base64 pickle: the IR is a plain object graph with
no process-local identity (unlike expressions), so pickling is faithful,
and embedding it makes the checkpoint independent of the source file still
being present (or unchanged) at resume time.  The original source path is
recorded for provenance only.
"""

from __future__ import annotations

import base64
import json
import pickle
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from .. import ir
from ..coredump import BugReport
from ..core.synthesis import ESDConfig
from ..schema import atomic_write_text

CHECKPOINT_FORMAT = "esd-exploration-checkpoint-v1"


class CheckpointError(Exception):
    """The checkpoint file is unreadable, malformed, or from an unknown
    format version."""


@dataclass(slots=True)
class ExplorationCheckpoint:
    """One resumable snapshot of an in-progress synthesis."""

    module: ir.Module
    report: BugReport
    config: ESDConfig
    # A snapshot_states() payload plus parallel "scores" (proximity-band
    # priorities, best first) -- the resume path re-shards by these.
    frontier: dict
    scores: list[float]
    # Cumulative search counters at checkpoint time, carried forward so a
    # resumed run reports totals as if it had never stopped.
    instructions: int = 0
    states_explored: int = 0
    picks: int = 0
    bugs_seen: int = 0
    paths_completed: int = 0
    paths_infeasible: int = 0
    search_seconds: float = 0.0
    static_seconds: float = 0.0
    workers: int = 1
    source_path: str = ""
    created_at: float = field(default_factory=time.time)

    @property
    def pending(self) -> int:
        return len(self.frontier.get("states", ()))

    def to_dict(self) -> dict:
        return {
            "format": CHECKPOINT_FORMAT,
            "module_name": self.module.name,
            "module_pickle": base64.b64encode(
                pickle.dumps(self.module, protocol=pickle.HIGHEST_PROTOCOL)
            ).decode("ascii"),
            "report": self.report.to_dict(),
            "config": self.config.to_dict(),
            "frontier": self.frontier,
            "scores": list(self.scores),
            "stats": {
                "instructions": self.instructions,
                "states_explored": self.states_explored,
                "picks": self.picks,
                "bugs_seen": self.bugs_seen,
                "paths_completed": self.paths_completed,
                "paths_infeasible": self.paths_infeasible,
                "search_seconds": self.search_seconds,
                "static_seconds": self.static_seconds,
            },
            "workers": self.workers,
            "source_path": self.source_path,
            "created_at": self.created_at,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExplorationCheckpoint":
        fmt = data.get("format")
        if fmt != CHECKPOINT_FORMAT:
            raise CheckpointError(
                f"unsupported checkpoint format {fmt!r} "
                f"(expected {CHECKPOINT_FORMAT!r})"
            )
        try:
            module = pickle.loads(base64.b64decode(data["module_pickle"]))
            report = BugReport.from_dict(data["report"])
            config = ESDConfig.from_dict(data["config"])
            stats = data["stats"]
            return cls(
                module=module,
                report=report,
                config=config,
                frontier=data["frontier"],
                scores=list(data["scores"]),
                instructions=stats["instructions"],
                states_explored=stats["states_explored"],
                picks=stats["picks"],
                bugs_seen=stats["bugs_seen"],
                paths_completed=stats["paths_completed"],
                paths_infeasible=stats["paths_infeasible"],
                search_seconds=stats["search_seconds"],
                static_seconds=stats["static_seconds"],
                workers=data.get("workers", 1),
                source_path=data.get("source_path", ""),
                created_at=data.get("created_at", 0.0),
            )
        except (KeyError, TypeError, ValueError, pickle.UnpicklingError) as exc:
            raise CheckpointError(f"malformed checkpoint: {exc}") from exc

    def save(self, path: Union[str, Path]) -> None:
        """Write atomically (write-then-rename): a kill mid-checkpoint must
        not destroy the previous good checkpoint."""
        atomic_write_text(path, json.dumps(self.to_dict()))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ExplorationCheckpoint":
        try:
            data = json.loads(Path(path).read_text())
        except (OSError, ValueError) as exc:
            raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
        if not isinstance(data, dict):
            raise CheckpointError(f"checkpoint {path} is not a JSON object")
        return cls.from_dict(data)
