"""Versioned :class:`ExecutionState` serialization (the state-snapshot layer).

An execution state is "a program counter, a stack, and an address space"
plus everything this engine layers on top: simulated threads, sync objects,
the symbolic environment, path constraints, and the deadlock-policy snapshot
map.  This module turns all of it into a compact JSON-serializable document
and back, so frontier states can cross process boundaries (sharded search)
and survive on disk (checkpoint/resume).

Design points:

* **Expressions are rebuilt, never pickled.**  Expression nodes are
  hash-consed with process-local uids; shipping pickled nodes into another
  process would collide uids and silently alias structurally different
  expressions in the intern table.  Instead the codec writes each DAG as a
  table of structural nodes and rebuilds them through the intern-aware
  constructors (:func:`~repro.solver.expr.rebuild_binop` /
  ``rebuild_unop``), so decoded expressions are first-class citizens of the
  receiving process.
* **One codec, many states.**  Sibling frontier states share most of their
  path condition; a :class:`SnapshotCodec` deduplicates shared subtrees into
  one node table across every state of a payload, and on decode maps equal
  ``(name, lo, hi)`` variables to one :class:`~repro.solver.expr.Var`
  object, so restored siblings keep sharing.
* **Round-trip fidelity is checkable.**  Encoding is canonical given the
  state's structure (state ids and expression uids are process-local and
  excluded), so ``encode(restore(encode(s))) == encode(s)`` --
  :func:`verify_roundtrip` asserts exactly that against the live state.

The format is versioned (:data:`SNAPSHOT_FORMAT`); readers reject payloads
they do not understand instead of guessing.
"""

from __future__ import annotations

import dataclasses
import importlib
from typing import Optional, Union

from ..ir import InstrRef
from ..solver.expr import (
    BinExpr,
    Expr,
    UnExpr,
    Var,
    rebuild_binop,
    rebuild_unop,
)
from ..symbex.bugs import BugInfo, BugKind, DeadlockEdge
from ..symbex.memory import AddressSpace, FnPtr, MemObject, Pointer
from ..symbex.state import (
    EnvState,
    ExecutionState,
    Frame,
    InputEvent,
    MutexRec,
    Segment,
    SyncEvent,
    ThreadState,
)

SNAPSHOT_FORMAT = "esd-state-snapshot-v1"

Json = Union[int, float, str, bool, None, list, dict]


class SnapshotError(Exception):
    """The payload is malformed, from an unknown format version, or a
    round-trip fidelity check failed."""


class SnapshotCodec:
    """Shared expression table for a batch of state snapshots.

    Encode and decode sides are independent; one codec instance is used for
    one payload (a shard transfer, a steal response, a checkpoint file).
    """

    def __init__(self) -> None:
        # encode: Expr.uid -> index into the node table
        self._encoded: dict[int, int] = {}
        self.nodes: list[list] = []
        # decode: node index -> rebuilt Expr; (name, lo, hi) -> shared Var
        self._decoded: list[Expr] = []
        self._vars: dict[tuple[str, int, int], Var] = {}

    # -- expressions ---------------------------------------------------------

    def encode_expr(self, expr: Expr) -> int:
        """Add ``expr``'s DAG to the node table; return its node index."""
        cached = self._encoded.get(expr.uid)
        if cached is not None:
            return cached
        stack = [expr]
        while stack:
            node = stack[-1]
            if node.uid in self._encoded:
                stack.pop()
                continue
            if isinstance(node, Var):
                self._encoded[node.uid] = len(self.nodes)
                self.nodes.append(["v", node.name, node.lo, node.hi])
                stack.pop()
            elif isinstance(node, BinExpr):
                missing = [
                    child for child in (node.lhs, node.rhs)
                    if isinstance(child, Expr) and child.uid not in self._encoded
                ]
                if missing:
                    stack.extend(missing)
                    continue
                self._encoded[node.uid] = len(self.nodes)
                self.nodes.append([
                    "b", node.op,
                    self._atom_ref(node.lhs), self._atom_ref(node.rhs),
                ])
                stack.pop()
            elif isinstance(node, UnExpr):
                if node.operand.uid not in self._encoded:
                    stack.append(node.operand)
                    continue
                self._encoded[node.uid] = len(self.nodes)
                self.nodes.append(["u", node.op, self._atom_ref(node.operand)])
                stack.pop()
            else:  # pragma: no cover - the Expr hierarchy is closed
                raise SnapshotError(f"unknown expression node {node!r}")
        return self._encoded[expr.uid]

    def _atom_ref(self, atom) -> Json:
        if isinstance(atom, Expr):
            return ["e", self._encoded[atom.uid]]
        return atom

    def decode_nodes(self, nodes: list[list]) -> None:
        """Rebuild the node table (children always precede parents)."""
        for entry in nodes:
            tag = entry[0]
            if tag == "v":
                _, name, lo, hi = entry
                key = (name, lo, hi)
                var = self._vars.get(key)
                if var is None:
                    var = self._vars[key] = Var(name, lo, hi)
                self._decoded.append(var)
            elif tag == "b":
                _, op, lhs, rhs = entry
                self._decoded.append(
                    rebuild_binop(op, self._atom_deref(lhs), self._atom_deref(rhs))
                )
            elif tag == "u":
                _, op, operand = entry
                self._decoded.append(rebuild_unop(op, self._atom_deref(operand)))
            else:
                raise SnapshotError(f"unknown expression node tag {tag!r}")

    def _atom_deref(self, encoded: Json):
        if isinstance(encoded, list):
            return self._decoded[encoded[1]]
        return encoded

    # -- cell values ---------------------------------------------------------

    def encode_value(self, value) -> Json:
        """Encode a cell/register value: int, Expr, Pointer, or FnPtr."""
        if isinstance(value, bool):  # before int: bools are ints in Python
            raise SnapshotError(f"unexpected bool cell value {value!r}")
        if isinstance(value, int):
            return value
        if isinstance(value, Expr):
            return ["e", self.encode_expr(value)]
        if isinstance(value, Pointer):
            return ["p", value.obj, self.encode_value(value.offset)]
        if isinstance(value, FnPtr):
            return ["fn", value.name]
        raise SnapshotError(f"unserializable cell value {value!r}")

    def decode_value(self, encoded: Json):
        if isinstance(encoded, int):
            return encoded
        if isinstance(encoded, list):
            tag = encoded[0]
            if tag == "e":
                return self._decoded[encoded[1]]
            if tag == "p":
                return Pointer(encoded[1], self.decode_value(encoded[2]))
            if tag == "fn":
                return FnPtr(encoded[1])
        raise SnapshotError(f"unknown value encoding {encoded!r}")

    # -- meta values ---------------------------------------------------------

    def encode_meta(self, value) -> Json:
        """Tagged encoding for the open-ended ``state.meta`` dict.

        Covers the types the engine and the bundled policies store --
        including dicts (the race policy's per-cell lockset table) and
        frozen dataclass records, rebuilt by import path on decode.
        Anything else is an explicit error: a policy adding unserializable
        metadata must extend the snapshot format, not silently lose state.
        """
        if value is None:
            return ["none"]
        if isinstance(value, bool):
            return ["bool", value]
        if isinstance(value, int):
            return ["i", value]
        if isinstance(value, float):
            return ["fl", value]
        if isinstance(value, str):
            return ["s", value]
        if isinstance(value, InstrRef):
            return ["ref", repr(value)]
        if isinstance(value, frozenset):
            return ["fs", sorted(self.encode_meta(v) for v in value)]
        if isinstance(value, tuple):
            return ["t", [self.encode_meta(v) for v in value]]
        if isinstance(value, dict):
            return ["d", [[self.encode_meta(k), self.encode_meta(v)]
                          for k, v in value.items()]]
        if dataclasses.is_dataclass(value) and not isinstance(value, type):
            cls = type(value)
            return ["dc", f"{cls.__module__}:{cls.__qualname__}",
                    [self.encode_meta(getattr(value, f.name))
                     for f in dataclasses.fields(value)]]
        raise SnapshotError(
            f"unserializable meta value {value!r} ({type(value).__name__})"
        )

    def decode_meta(self, encoded: Json):
        tag = encoded[0]
        if tag == "none":
            return None
        if tag in ("bool", "i", "fl", "s"):
            return encoded[1]
        if tag == "ref":
            return InstrRef.parse(encoded[1])
        if tag == "fs":
            return frozenset(self.decode_meta(v) for v in encoded[1])
        if tag == "t":
            return tuple(self.decode_meta(v) for v in encoded[1])
        if tag == "d":
            return {self.decode_meta(k): self.decode_meta(v)
                    for k, v in encoded[1]}
        if tag == "dc":
            return self._decode_dataclass(encoded[1], encoded[2])
        raise SnapshotError(f"unknown meta encoding {encoded!r}")

    def _decode_dataclass(self, path: str, fields: list):
        module_name, _, qualname = path.partition(":")
        try:
            obj = importlib.import_module(module_name)
            for part in qualname.split("."):
                obj = getattr(obj, part)
        except (ImportError, AttributeError) as exc:
            raise SnapshotError(f"unknown dataclass {path!r}") from exc
        if not (isinstance(obj, type) and dataclasses.is_dataclass(obj)):
            raise SnapshotError(f"{path!r} is not a dataclass")
        return obj(*[self.decode_meta(f) for f in fields])

    # -- states --------------------------------------------------------------

    def encode_state(self, state: ExecutionState) -> dict:
        """Encode one execution state (recursing into its snapshot map)."""
        return {
            "parent_sid": state.parent_sid,
            "objects": [
                [
                    obj.obj_id, obj.kind, obj.name, int(obj.freed),
                    [self.encode_value(c) for c in obj.cells],
                ]
                for obj in state.address_space.objects.values()
            ],
            "globals": dict(state.globals),
            "threads": [self._encode_thread(t) for t in state.threads.values()],
            "current_tid": state.current_tid,
            "next_tid": state.next_tid,
            "next_obj": state.next_obj,
            "constraints": [
                ["e", self.encode_expr(c)] for c in state.constraints
            ],
            "mutexes": [
                [list(key), rec.owner, list(rec.waiters)]
                for key, rec in state.mutexes.items()
            ],
            "condvars": [
                [list(key), list(tids)] for key, tids in state.condvars.items()
            ],
            "env": self._encode_env(state.env),
            "input_events": [
                [e.kind, e.key, [self.encode_value(v) for v in e.variables]]
                for e in state.input_events
            ],
            "output": list(state.output),
            "sync_log": [
                [e.seq, e.tid, e.op,
                 list(e.addr) if e.addr is not None else None, repr(e.ref)]
                for e in state.sync_log
            ],
            "segments": [[s.tid, s.instrs] for s in state.segments],
            "segment_instrs": state.segment_instrs,
            "steps": state.steps,
            "forks": state.forks,
            "status": state.status,
            "exit_code": state.exit_code,
            "bug": self._encode_bug(state.bug),
            "snapshots": [
                [list(key), self.encode_state(snap)]
                for key, snap in state.snapshots.items()
            ],
            "schedule_distance": state.schedule_distance,
            "preemptions": state.preemptions,
            "meta": [
                [key, self.encode_meta(value)]
                for key, value in state.meta.items()
            ],
            "last_model": (
                dict(state.last_model) if state.last_model is not None else None
            ),
        }

    def decode_state(self, data: dict) -> ExecutionState:
        state = ExecutionState()  # fresh process-local sid
        state.parent_sid = data["parent_sid"]
        space = AddressSpace()
        for obj_id, kind, name, freed, cells in data["objects"]:
            obj = MemObject(
                obj_id, len(cells), kind, name,
                init=[self.decode_value(c) for c in cells],
            )
            obj.freed = bool(freed)
            space.add(obj)
        state.address_space = space
        state.globals = dict(data["globals"])
        state.threads = {}
        for encoded in data["threads"]:
            thread = self._decode_thread(encoded)
            state.threads[thread.tid] = thread
        state.current_tid = data["current_tid"]
        state.next_tid = data["next_tid"]
        state.next_obj = data["next_obj"]
        for encoded in data["constraints"]:
            state.add_constraint(self.decode_value(encoded))
        state.mutexes = {
            tuple(key): MutexRec(owner, list(waiters))
            for key, owner, waiters in data["mutexes"]
        }
        state.condvars = {
            tuple(key): list(tids) for key, tids in data["condvars"]
        }
        state.env = self._decode_env(data["env"])
        state.input_events = [
            InputEvent(kind, key, [self.decode_value(v) for v in variables])
            for kind, key, variables in data["input_events"]
        ]
        state.output = list(data["output"])
        state.sync_log = [
            SyncEvent(seq, tid, op,
                      tuple(addr) if addr is not None else None,
                      InstrRef.parse(ref))
            for seq, tid, op, addr, ref in data["sync_log"]
        ]
        state.segments = [Segment(tid, n) for tid, n in data["segments"]]
        state.segment_instrs = data["segment_instrs"]
        state.steps = data["steps"]
        state.forks = data["forks"]
        state.status = data["status"]
        state.exit_code = data["exit_code"]
        state.bug = self._decode_bug(data["bug"])
        state.snapshots = {
            tuple(key): self.decode_state(snap)
            for key, snap in data["snapshots"]
        }
        state.schedule_distance = data["schedule_distance"]
        state.preemptions = data["preemptions"]
        state.meta = {key: self.decode_meta(value) for key, value in data["meta"]}
        model = data["last_model"]
        state.last_model = dict(model) if model is not None else None
        return state

    # -- pieces --------------------------------------------------------------

    def _encode_thread(self, thread: ThreadState) -> dict:
        blocked = thread.blocked_on
        return {
            "tid": thread.tid,
            "status": thread.status,
            "blocked_on": (
                [blocked[0], list(blocked[1]) if isinstance(blocked[1], tuple)
                 else blocked[1]]
                if blocked is not None else None
            ),
            "reacquire": (
                list(thread.reacquire_mutex)
                if thread.reacquire_mutex is not None else None
            ),
            "instr_count": thread.instr_count,
            "entry": thread.entry_function,
            "replaying": int(thread.replaying),
            "frames": [
                [
                    frame.function, frame.block, frame.index,
                    [[name, self.encode_value(v)]
                     for name, v in frame.regs.items()],
                    frame.ret_dst, list(frame.allocas),
                ]
                for frame in thread.frames
            ],
        }

    def _decode_thread(self, data: dict) -> ThreadState:
        thread = ThreadState(data["tid"], data["entry"])
        thread.status = data["status"]
        blocked = data["blocked_on"]
        if blocked is not None:
            kind, target = blocked
            thread.blocked_on = (
                (kind, tuple(target)) if isinstance(target, list)
                else (kind, target)
            )
        reacquire = data["reacquire"]
        thread.reacquire_mutex = tuple(reacquire) if reacquire is not None else None
        thread.instr_count = data["instr_count"]
        thread.replaying = bool(data["replaying"])
        for function, block, index, regs, ret_dst, allocas in data["frames"]:
            frame = Frame(function, block)
            frame.index = index
            frame.regs = {name: self.decode_value(v) for name, v in regs}
            frame.ret_dst = ret_dst
            frame.allocas = list(allocas)
            thread.frames.append(frame)
        return thread

    def _encode_env(self, env: EnvState) -> dict:
        return {
            "stdin": [self.encode_value(v) for v in env.stdin_vars],
            "env_buffers": [
                [name, self.encode_value(ptr)]
                for name, ptr in env.env_buffers.items()
            ],
            "arg_buffers": [
                [index, self.encode_value(ptr)]
                for index, ptr in env.arg_buffers.items()
            ],
            "argc": (
                self.encode_value(env.argc_var)
                if env.argc_var is not None else None
            ),
            "buffers": [
                [name, self.encode_value(ptr)]
                for name, ptr in env.buffers.items()
            ],
        }

    def _decode_env(self, data: dict) -> EnvState:
        env = EnvState()
        env.stdin_vars = [self.decode_value(v) for v in data["stdin"]]
        env.env_buffers = {
            name: self.decode_value(ptr) for name, ptr in data["env_buffers"]
        }
        env.arg_buffers = {
            index: self.decode_value(ptr) for index, ptr in data["arg_buffers"]
        }
        env.argc_var = (
            self.decode_value(data["argc"]) if data["argc"] is not None else None
        )
        env.buffers = {
            name: self.decode_value(ptr) for name, ptr in data["buffers"]
        }
        return env

    def _encode_bug(self, bug: Optional[BugInfo]) -> Optional[dict]:
        if bug is None:
            return None
        return {
            "kind": bug.kind.value,
            "ref": repr(bug.ref),
            "tid": bug.tid,
            "message": bug.message,
            "line": bug.line,
            "fault_obj": bug.fault_obj,
            "fault_offset": bug.fault_offset,
            "fault_value": bug.fault_value,
            "cycle": [[e.waiter, e.resource, e.holder] for e in bug.cycle],
        }

    def _decode_bug(self, data: Optional[dict]) -> Optional[BugInfo]:
        if data is None:
            return None
        return BugInfo(
            kind=BugKind(data["kind"]),
            ref=InstrRef.parse(data["ref"]),
            tid=data["tid"],
            message=data["message"],
            line=data["line"],
            fault_obj=data["fault_obj"],
            fault_offset=data["fault_offset"],
            fault_value=data["fault_value"],
            cycle=[
                DeadlockEdge(waiter, resource, holder)
                for waiter, resource, holder in data["cycle"]
            ],
        )


# -- payload helpers ---------------------------------------------------------


def snapshot_states(states: list[ExecutionState]) -> dict:
    """Serialize a batch of states into one self-contained payload."""
    codec = SnapshotCodec()
    encoded = [codec.encode_state(state) for state in states]
    return {"format": SNAPSHOT_FORMAT, "exprs": codec.nodes, "states": encoded}


def restore_states(payload: dict) -> list[ExecutionState]:
    """Rebuild the states of a :func:`snapshot_states` payload."""
    fmt = payload.get("format")
    if fmt != SNAPSHOT_FORMAT:
        raise SnapshotError(
            f"unsupported snapshot format {fmt!r} (expected {SNAPSHOT_FORMAT!r})"
        )
    codec = SnapshotCodec()
    codec.decode_nodes(payload["exprs"])
    return [codec.decode_state(data) for data in payload["states"]]


def verify_roundtrip(state: ExecutionState) -> None:
    """Assert that ``state`` survives serialization bit-for-bit.

    Encodes the live state, restores it, re-encodes the restored copy, and
    compares the two documents (state ids and expression uids are process-
    local and never serialized, so canonical encodings of a faithful
    round-trip are identical).  Raises :class:`SnapshotError` on the first
    field that differs.
    """
    first = snapshot_states([state])
    second = snapshot_states(restore_states(first))
    if first == second:
        return
    original, restored = first["states"][0], second["states"][0]
    for key in original:
        if original[key] != restored.get(key):
            raise SnapshotError(
                f"round-trip mismatch in field {key!r}: "
                f"{original[key]!r} != {restored.get(key)!r}"
            )
    raise SnapshotError("round-trip mismatch in expression table")
