"""Parallel exploration: sharded work-stealing search with checkpoint/resume.

This package scales the path-search phase -- the paper's own evaluation
shows synthesis time dominated by exploring the proximity-guided frontier --
across a pool of worker processes:

* :mod:`repro.distrib.snapshot` -- versioned serialization of
  :class:`~repro.symbex.state.ExecutionState` (frames, COW address space,
  environment, path constraints) to a compact checkpoint format, with
  round-trip fidelity verified against the live state;
* :mod:`repro.distrib.pool` -- :class:`ParallelExplorer`, which partitions
  the frontier by proximity-score bands, runs ``explore()`` shards in worker
  processes, rebalances via work-stealing when a shard's queue drains, and
  first-win cancels siblings when any worker reaches the goal;
* :mod:`repro.distrib.checkpoint` -- periodic frontier checkpoints to disk
  plus resume, so a killed or budget-exhausted synthesis continues instead
  of restarting.
"""

from .checkpoint import CheckpointError, ExplorationCheckpoint
from .pool import DistribUnsupportedError, ParallelExplorer, parallel_supported
from .snapshot import (
    SNAPSHOT_FORMAT,
    SnapshotCodec,
    SnapshotError,
    restore_states,
    snapshot_states,
    verify_roundtrip,
)

__all__ = [
    "CheckpointError",
    "DistribUnsupportedError",
    "ExplorationCheckpoint",
    "ParallelExplorer",
    "SNAPSHOT_FORMAT",
    "SnapshotCodec",
    "SnapshotError",
    "parallel_supported",
    "restore_states",
    "snapshot_states",
    "verify_roundtrip",
]
