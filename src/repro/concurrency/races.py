"""Data-race detection and race schedule synthesis (paper section 4.2).

Detection is Eraser-style lockset analysis: for each shared cell, intersect
the set of mutexes held across accesses; a cell whose candidate lockset
empties while being accessed by more than one thread with at least one write
is a potential (harmful) data race.  Because the detector observes *symbolic*
execution, it sees an arbitrary number of paths, independent of workload --
the advantage the paper calls out over plain dynamic detectors.

Schedule synthesis: preemptions are inserted *before* accesses flagged as
racy (plus the synchronization points the deadlock policy already covers).
To avoid useless schedules early in the run, the longest common prefix of the
reported threads' final call stacks gates fine-grained preemption: only
states in which every live thread has reached the gate procedure fork at
memory accesses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..ir import Instr, InstrRef
from ..symbex.executor import Executor
from ..symbex.policy import SchedulerPolicy
from ..symbex.state import AddrKey, ExecutionState


@dataclass(frozen=True, slots=True)
class RaceReport:
    cell: AddrKey
    first_ref: InstrRef
    second_ref: InstrRef
    tids: tuple[int, int]
    wrote: bool


@dataclass(slots=True)
class _CellInfo:
    """Immutable per-cell lockset record (functional updates only: states
    share these through forked ``meta`` dictionaries)."""

    lockset: frozenset[AddrKey]
    tids: frozenset[int]
    wrote: bool
    last_ref: InstrRef
    last_tid: int


class RaceDetector:
    """Global accumulator of racy locations across all explored states."""

    def __init__(self) -> None:
        self.racy_refs: set[InstrRef] = set()
        self.racy_cells: set[AddrKey] = set()
        self.reports: list[RaceReport] = []

    def record(self, cell: AddrKey, info: _CellInfo, ref: InstrRef, tid: int) -> None:
        if cell not in self.racy_cells:
            self.reports.append(
                RaceReport(cell, info.last_ref, ref, (info.last_tid, tid), info.wrote)
            )
        self.racy_cells.add(cell)
        self.racy_refs.add(ref)
        self.racy_refs.add(info.last_ref)


class RaceSchedulePolicy(SchedulerPolicy):
    """Insert preemptions before potentially racy accesses."""

    def __init__(
        self,
        detector: Optional[RaceDetector] = None,
        gate_function: Optional[str] = None,
        max_forks_per_ref: int = 4,
        static_racy_refs: Optional[frozenset[InstrRef]] = None,
    ) -> None:
        self.detector = detector or RaceDetector()
        self.gate_function = gate_function
        self.max_forks_per_ref = max_forks_per_ref
        # Accesses the static lockset analysis flagged as candidate races.
        # When provided, preemption forks happen *only* at these refs (in
        # addition to the call-stack-prefix gate): everything else provably
        # holds a consistent lock or is thread-local.  ``None`` keeps the
        # purely dynamic behavior.
        self.static_racy_refs = static_racy_refs

    # -- hooks ------------------------------------------------------------

    def wants_memory_hooks(self, state: ExecutionState) -> bool:
        return len(state.live_threads()) > 1

    def on_memory_access(
        self,
        executor: Executor,
        state: ExecutionState,
        instr: Instr,
        ref: InstrRef,
        key: AddrKey,
        is_write: bool,
    ) -> list[ExecutionState]:
        self._update_lockset(state, ref, key, is_write)
        if not self._gate_open(state):
            return []
        if self.static_racy_refs is not None and ref not in self.static_racy_refs:
            return []
        if ref not in self.detector.racy_refs and key not in self.detector.racy_cells:
            return []
        flag = f"racefork:{ref}"
        count = int(state.meta.get(flag, 0))  # type: ignore[arg-type]
        if count >= self.max_forks_per_ref:
            return []
        state.meta[flag] = count + 1
        forks = []
        for tid in state.runnable_tids():
            if tid == state.current_tid:
                continue
            snap = state.fork()
            executor.stats.states_created += 1
            snap.uncount_instruction()  # the access has not executed in the fork
            snap.switch_to(tid)
            forks.append(snap)
        return forks

    # -- lockset analysis ------------------------------------------------------

    def _update_lockset(
        self, state: ExecutionState, ref: InstrRef, key: AddrKey, is_write: bool
    ) -> None:
        tid = state.current_tid
        held = frozenset(
            mkey for mkey, rec in state.mutexes.items() if rec.owner == tid
        )
        table: dict = state.meta.get("eraser") or {}
        info = table.get(key)
        if info is None:
            new_info = _CellInfo(held, frozenset((tid,)), is_write, ref, tid)
        else:
            lockset = info.lockset & held
            tids = info.tids | {tid}
            wrote = info.wrote or is_write
            new_info = _CellInfo(lockset, tids, wrote, ref, tid)
            if len(tids) > 1 and wrote and not lockset:
                self.detector.record(key, info, ref, tid)
        # Functional update: forked states share meta values, never mutate.
        table = dict(table)
        table[key] = new_info
        state.meta["eraser"] = table

    def _gate_open(self, state: ExecutionState) -> bool:
        """The common-stack-prefix heuristic: fine-grained preemption only
        once every live thread has entered the gate procedure."""
        if self.gate_function is None:
            return True
        if state.meta.get("race_gate"):
            return True
        threads = [t for t in state.live_threads() if t.tid != 0 or len(state.threads) == 1]
        if not threads:
            return False
        for thread in threads:
            functions = {frame.function for frame in thread.frames}
            if self.gate_function not in functions:
                return False
        state.meta["race_gate"] = True
        return True


class ChainedPolicy(SchedulerPolicy):
    """Combine several policies: fork hooks concatenate, ``pick_next`` and
    memory-hook interest delegate to the first policy that cares."""

    def __init__(self, *policies: SchedulerPolicy) -> None:
        if not policies:
            raise ValueError("ChainedPolicy needs at least one policy")
        self.policies = policies

    def pick_next(self, state):
        return self.policies[0].pick_next(state)

    def wants_memory_hooks(self, state):
        return any(p.wants_memory_hooks(state) for p in self.policies)

    def fork_before_acquire(self, executor, state, key, instr, ref):
        return [
            s for p in self.policies
            for s in p.fork_before_acquire(executor, state, key, instr, ref)
        ]

    def after_acquire(self, executor, state, key, instr, ref):
        return [
            s for p in self.policies
            for s in p.after_acquire(executor, state, key, instr, ref)
        ]

    def on_contention(self, executor, state, key, holder, instr, ref):
        return [
            s for p in self.policies
            for s in p.on_contention(executor, state, key, holder, instr, ref)
        ]

    def fork_before_release(self, executor, state, key, instr, ref):
        return [
            s for p in self.policies
            for s in p.fork_before_release(executor, state, key, instr, ref)
        ]

    def on_release(self, executor, state, key, instr, ref):
        for p in self.policies:
            p.on_release(executor, state, key, instr, ref)

    def on_thread_event(self, executor, state, kind, tid, instr):
        return [
            s for p in self.policies
            for s in p.on_thread_event(executor, state, kind, tid, instr)
        ]

    def on_memory_access(self, executor, state, instr, ref, key, is_write):
        return [
            s for p in self.policies
            for s in p.on_memory_access(executor, state, instr, ref, key, is_write)
        ]


def common_stack_prefix(stacks: list[list[str]]) -> list[str]:
    """Longest common prefix of call stacks given outermost-first function
    names (used to pick the race gate procedure)."""
    if not stacks:
        return []
    prefix: list[str] = []
    for depth in range(min(len(s) for s in stacks)):
        names = {stack[depth] for stack in stacks}
        if len(names) != 1:
            break
        prefix.append(names.pop())
    return prefix
