"""Thread schedule synthesis: deadlock and data-race strategies (paper §4)."""

from .deadlock import FAR, NEAR, DeadlockSchedulePolicy
from .races import (
    ChainedPolicy,
    RaceDetector,
    RaceReport,
    RaceSchedulePolicy,
    common_stack_prefix,
)

__all__ = [
    "ChainedPolicy",
    "DeadlockSchedulePolicy",
    "FAR",
    "NEAR",
    "RaceDetector",
    "RaceReport",
    "RaceSchedulePolicy",
    "common_stack_prefix",
]
