"""Deadlock schedule synthesis (paper section 4.1).

The strategy: help each thread "find" its outer lock as quickly as possible.

* Whenever a thread acquires a *free* mutex M, fork a snapshot state in which
  the thread is preempted just before the acquisition and another thread runs
  instead.  The continuing state remembers the snapshot in its map
  ``KS: mutex -> state`` (``state.snapshots``).  Snapshots are dropped when M
  is unlocked -- a free mutex cannot participate in a deadlock.
* If the thread just acquired its *inner lock* (the lock statement its final
  call stack in the bug report blocks on), preempt it and mark the state's
  schedule distance "near": M stays locked, creating the conditions for some
  other thread to request M as its outer lock.
* If a thread requests M while another thread T2 holds it *as T2's inner
  lock*, M could be the requester's outer lock: "switch to" the snapshot
  taken before T2 acquired M by setting every snapshot in KS near and the
  current state far.  The searcher's heavy schedule-distance bias makes the
  snapshots run next.

Thread identity in the report does not transfer to the synthesized run, so
inner locks are matched by *location* (the lock statement's InstrRef), which
is exactly what the report's call stacks give us.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..ir import Instr, InstrRef
from ..symbex.executor import Executor
from ..symbex.policy import SchedulerPolicy
from ..symbex.state import AddrKey, ExecutionState

NEAR = 0.0
FAR = 1.0

BoostFn = Callable[[ExecutionState], None]


class DeadlockSchedulePolicy(SchedulerPolicy):
    """ESD's preemption strategy for reproducing reported deadlocks."""

    def __init__(
        self,
        inner_lock_refs: frozenset[InstrRef],
        boost: Optional[BoostFn] = None,
        fork_at_unlock: bool = True,
        skip_release_refs: frozenset[InstrRef] = frozenset(),
    ) -> None:
        self.inner_lock_refs = inner_lock_refs
        self.boost = boost or (lambda state: None)
        self.fork_at_unlock = fork_at_unlock
        # Unlock sites the static lockset analysis proved leave *no* lock
        # held afterwards: a preemption there cannot contribute to a
        # deadlock (there is no nested window to interleave into), so the
        # release fork is skipped.  Empty set = fork everywhere (legacy).
        self.skip_release_refs = skip_release_refs
        self.snapshots_taken = 0
        self.activations = 0
        self.releases_skipped = 0

    # -- helpers ------------------------------------------------------------

    @staticmethod
    def _other_runnable(state: ExecutionState) -> list[int]:
        return [t for t in state.runnable_tids() if t != state.current_tid]

    def _fork_preempted(
        self, executor: Executor, state: ExecutionState,
        before_instruction: bool = True,
    ) -> list[ExecutionState]:
        """States identical to ``state`` except another thread runs next.

        ``before_instruction`` means the hook fired before the current
        instruction's semantics completed; the fork has not executed it.
        """
        forks = []
        for tid in self._other_runnable(state):
            snap = state.fork()
            executor.stats.states_created += 1
            if before_instruction:
                snap.uncount_instruction()
            snap.switch_to(tid)
            forks.append(snap)
        return forks

    # -- hooks ------------------------------------------------------------

    def fork_before_acquire(
        self, executor: Executor, state: ExecutionState, key: AddrKey,
        instr: Instr, ref: InstrRef,
    ) -> list[ExecutionState]:
        # One snapshot per (thread, mutex) hold episode: a woken thread
        # re-trying the same acquisition is the same "encounter" and must not
        # fork again, or contended locks spin off unbounded siblings.
        flag = f"snapfork:{key}"
        forked: frozenset = state.meta.get(flag, frozenset())  # type: ignore[assignment]
        forks: list[ExecutionState] = []
        if state.current_tid not in forked:
            state.meta[flag] = forked | {state.current_tid}
            forks = self._fork_preempted(executor, state)
            if forks:
                state.snapshots[key] = forks[0]
                self.snapshots_taken += 1
        # Remember where this mutex is being acquired: at contention time we
        # ask "was M acquired at its holder's inner-lock statement?".
        state.meta[f"acq:{key}"] = ref
        return forks

    def after_acquire(
        self, executor: Executor, state: ExecutionState, key: AddrKey,
        instr: Instr, ref: InstrRef,
    ) -> list[ExecutionState]:
        if ref in self.inner_lock_refs:
            others = self._other_runnable(state)
            if others:
                state.schedule_distance = NEAR
                state.switch_to(others[0])
        return []

    def on_contention(
        self, executor: Executor, state: ExecutionState, key: AddrKey,
        holder: int, instr: Instr, ref: InstrRef,
    ) -> list[ExecutionState]:
        acquired_at = state.meta.get(f"acq:{key}")
        if acquired_at in self.inner_lock_refs:
            # M is the holder's inner lock, so it may be the requester's
            # outer lock: roll "back" by boosting every snapshot in KS.
            for snapshot in state.snapshots.values():
                snapshot.schedule_distance = NEAR
                self.boost(snapshot)
                self.activations += 1
            state.schedule_distance = FAR
        return []

    def fork_before_release(
        self, executor: Executor, state: ExecutionState, key: AddrKey,
        instr: Instr, ref: InstrRef,
    ) -> list[ExecutionState]:
        if not self.fork_at_unlock:
            return []
        if ref in self.skip_release_refs:
            self.releases_skipped += 1
            return []
        return self._fork_preempted(executor, state)

    def on_release(
        self, executor: Executor, state: ExecutionState, key: AddrKey,
        instr: Instr, ref: InstrRef,
    ) -> None:
        # A free mutex cannot be part of a deadlock: drop its snapshot and
        # re-arm the snapshot fork for the next acquisition episode.
        state.snapshots.pop(key, None)
        state.meta.pop(f"acq:{key}", None)
        state.meta.pop(f"snapfork:{key}", None)

    def on_thread_event(
        self, executor: Executor, state: ExecutionState, kind: str, tid: int,
        instr: Instr,
    ) -> list[ExecutionState]:
        if kind == "create":
            # A new thread is a new scheduling opportunity.  The create
            # itself already completed, so the fork keeps its count.
            return self._fork_preempted(executor, state, before_instruction=False)
        return []
