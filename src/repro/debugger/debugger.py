"""A gdb-like debugger over deterministic playback (paper section 5.2).

"Developers run the buggy program in the playback environment and can attach
to it with a debugger at any time.  They can repeat the execution over and
over again, place breakpoints, inspect data structures, etc."

The debugger drives a :class:`~repro.playback.stepper.StrictStepper`, so the
execution under inspection is exactly the synthesized one, every time.
Supported operations mirror the gdb workflow: breakpoints by function/line,
``continue``, ``step``, ``next`` (step over calls), ``backtrace``, ``print``
of named variables and array cells, thread listing, and source listing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from .. import ir
from ..core.execfile import ExecutionFile
from ..playback.stepper import StrictStepper
from ..symbex.memory import FnPtr, Pointer
from ..symbex.state import ExecutionState


@dataclass(slots=True)
class Breakpoint:
    number: int
    function: str
    line: Optional[int]
    enabled: bool = True
    hits: int = 0

    def describe(self) -> str:
        where = self.function if self.line is None else f"{self.function}:{self.line}"
        return f"breakpoint {self.number} at {where} (hit {self.hits} times)"


@dataclass(slots=True)
class StopEvent:
    reason: str  # 'breakpoint' | 'step' | 'exited' | 'bug' | 'done'
    breakpoint: Optional[Breakpoint] = None
    line: int = 0
    function: str = ""

    def __repr__(self) -> str:
        at = f" at {self.function}:{self.line}" if self.function else ""
        return f"<stop: {self.reason}{at}>"


class Debugger:
    """Deterministic source-level debugger for synthesized executions."""

    def __init__(self, module: ir.Module, execution: ExecutionFile) -> None:
        self.module = module
        self.execution = execution
        self._stepper = StrictStepper(module, execution)
        self._breakpoints: list[Breakpoint] = []
        self._next_bp = 1

    # -- session control ------------------------------------------------------

    def restart(self) -> None:
        """Replay from the beginning (playback is repeatable)."""
        self._stepper = StrictStepper(self.module, self.execution)
        for bp in self._breakpoints:
            bp.hits = 0

    @property
    def state(self) -> ExecutionState:
        return self._stepper.state

    @property
    def finished(self) -> bool:
        return self._stepper.done

    # -- breakpoints ------------------------------------------------------------

    def break_at(self, function: str, line: Optional[int] = None) -> Breakpoint:
        if function not in self.module.functions:
            raise KeyError(f"no function {function!r}")
        bp = Breakpoint(self._next_bp, function, line)
        self._next_bp += 1
        self._breakpoints.append(bp)
        return bp

    def delete(self, number: int) -> None:
        self._breakpoints = [b for b in self._breakpoints if b.number != number]

    def breakpoints(self) -> list[Breakpoint]:
        return list(self._breakpoints)

    def _hit(self, state: ExecutionState) -> Optional[Breakpoint]:
        thread = state.threads.get(state.current_tid)
        if thread is None or not thread.frames:
            return None
        ref = thread.pc
        try:
            line = self.module.instruction(ref).line
        except (KeyError, IndexError):
            return None
        for bp in self._breakpoints:
            if not bp.enabled or bp.function != ref.function:
                continue
            if bp.line is None:
                if ref.block == self.module.functions[ref.function].entry and ref.index == 0:
                    return bp
            elif bp.line == line:
                return bp
        return None

    # -- execution ------------------------------------------------------------

    def cont(self) -> StopEvent:
        """Continue until a breakpoint or the end of the execution."""
        # Always make at least one instruction of progress, so repeated
        # cont() calls do not re-report the same breakpoint forever.
        if not self._stepper.done:
            self._stepper.step()
        while not self._stepper.done:
            bp = self._hit(self._stepper.state)
            if bp is not None:
                bp.hits += 1
                return self._stop("breakpoint", bp)
            self._stepper.step()
        return self._stop_terminal()

    def step(self, count: int = 1) -> StopEvent:
        """Execute ``count`` instructions (gdb's ``stepi``)."""
        for _ in range(count):
            if self._stepper.done:
                break
            self._stepper.step()
        if self._stepper.done:
            return self._stop_terminal()
        return self._stop("step")

    def step_line(self) -> StopEvent:
        """Execute until the source line changes (gdb's ``step``)."""
        start = self._current_line()
        while not self._stepper.done:
            self._stepper.step()
            line = self._current_line()
            if line != start and line != 0:
                break
        if self._stepper.done:
            return self._stop_terminal()
        return self._stop("step")

    def next_line(self) -> StopEvent:
        """Like step_line but steps over calls (gdb's ``next``)."""
        state = self._stepper.state
        thread = state.threads.get(state.current_tid)
        depth = len(thread.frames) if thread else 0
        tid = state.current_tid
        start = self._current_line()
        while not self._stepper.done:
            self._stepper.step()
            state = self._stepper.state
            thread = state.threads.get(tid)
            if thread is None or not thread.frames:
                break
            if state.current_tid != tid:
                continue
            if len(thread.frames) > depth:
                continue
            line = self._current_line()
            if line != start and line != 0:
                break
        if self._stepper.done:
            return self._stop_terminal()
        return self._stop("step")

    def finish(self) -> StopEvent:
        """Run until the current function returns."""
        state = self._stepper.state
        tid = state.current_tid
        thread = state.threads.get(tid)
        depth = len(thread.frames) if thread else 0
        while not self._stepper.done:
            self._stepper.step()
            thread = self._stepper.state.threads.get(tid)
            if thread is None or len(thread.frames) < depth:
                break
        if self._stepper.done:
            return self._stop_terminal()
        return self._stop("step")

    # -- inspection ------------------------------------------------------------

    def backtrace(self, tid: Optional[int] = None) -> list[str]:
        state = self._stepper.state
        thread = state.threads.get(tid if tid is not None else state.current_tid)
        if thread is None or not thread.frames:
            return []
        lines = []
        for depth, ref in enumerate(thread.call_stack()):
            try:
                line = self.module.instruction(ref).line
                source = self.module.source_line(line).strip()
            except (KeyError, IndexError):
                line, source = 0, ""
            lines.append(f"#{depth}  {ref.function} () at line {line}: {source}")
        return lines

    def info_threads(self) -> list[str]:
        state = self._stepper.state
        rows = []
        for thread in state.threads.values():
            mark = "*" if thread.tid == state.current_tid else " "
            where = str(thread.pc) if thread.frames else "-"
            extra = ""
            if thread.blocked_on:
                extra = f" blocked on {thread.blocked_on[0]}"
            rows.append(f"{mark} thread {thread.tid} [{thread.status}]{extra} at {where}")
        return rows

    def read_var(self, name: str, tid: Optional[int] = None):
        """Value of a named local (current frame) or global variable."""
        state = self._stepper.state
        thread = state.threads.get(tid if tid is not None else state.current_tid)
        if thread is not None and thread.frames:
            frame = thread.top
            addr_reg = f"{name}.addr"
            if addr_reg in frame.regs:
                pointer = frame.regs[addr_reg]
                assert isinstance(pointer, Pointer)
                return self._cell(state, pointer.obj, pointer.offset)
        if name in state.globals:
            return self._cell(state, state.globals[name], 0)
        raise KeyError(f"no variable {name!r} in scope")

    def read_array(self, name: str, length: int, tid: Optional[int] = None) -> list:
        base = None
        state = self._stepper.state
        thread = state.threads.get(tid if tid is not None else state.current_tid)
        if thread is not None and thread.frames:
            addr_reg = f"{name}.addr"
            if addr_reg in thread.top.regs:
                base = thread.top.regs[addr_reg]
        if base is None and name in state.globals:
            base = Pointer(state.globals[name], 0)
        if not isinstance(base, Pointer):
            raise KeyError(f"no array {name!r} in scope")
        return [
            self._cell(state, base.obj, base.offset + i) for i in range(length)
        ]

    @staticmethod
    def _cell(state: ExecutionState, obj: int, offset) -> object:
        value = state.address_space.read(obj, offset)
        if isinstance(value, Pointer):
            return f"<ptr obj{value.obj}+{value.offset}>"
        if isinstance(value, FnPtr):
            return f"<fn {value.name}>"
        return value

    def list_source(self, context: int = 3) -> list[str]:
        line = self._current_line()
        if line == 0:
            return []
        lines = []
        for n in range(max(1, line - context), line + context + 1):
            text = self.module.source_line(n)
            marker = "->" if n == line else "  "
            lines.append(f"{marker} {n:4d}  {text}")
        return lines

    def where(self) -> str:
        state = self._stepper.state
        thread = state.threads.get(state.current_tid)
        if thread is None or not thread.frames:
            return "<no frame>"
        ref = thread.pc
        return f"thread {state.current_tid} at {ref} (line {self._current_line()})"

    # -- helpers ------------------------------------------------------------

    def _current_line(self) -> int:
        instr = self._stepper.current_instruction
        return instr.line if instr is not None else 0

    def _stop(self, reason: str, bp: Optional[Breakpoint] = None) -> StopEvent:
        state = self._stepper.state
        thread = state.threads.get(state.current_tid)
        function = thread.pc.function if thread and thread.frames else ""
        return StopEvent(reason, bp, self._current_line(), function)

    def _stop_terminal(self) -> StopEvent:
        state = self._stepper.state
        if state.status == "bug":
            return StopEvent("bug", line=state.bug.line if state.bug else 0)
        if state.status == "exited":
            return StopEvent("exited")
        return StopEvent("done")
