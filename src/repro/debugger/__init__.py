"""gdb-like debugging of synthesized executions."""

from .debugger import Breakpoint, Debugger, StopEvent

__all__ = ["Breakpoint", "Debugger", "StopEvent"]
