"""Schema versioning and canonical JSON for persisted artifacts.

Every JSON document the system persists -- coredumps, bug reports,
execution files, triage databases, job specs/records, the artifact-store
index -- carries an explicit ``schema_version``.  Readers accept documents
whose version they understand and reject everything else with a clear
:class:`SchemaVersionError` instead of mis-parsing a future format.  A
missing version is read as version 1: every pre-versioning file in the wild
is a version-1 document.

Canonical JSON (sorted keys, minimal separators, UTF-8) is the byte form
content addressing hashes: two semantically identical documents must map to
the same digest regardless of who serialized them.
"""

from __future__ import annotations

import hashlib
import json

__all__ = [
    "SchemaVersionError",
    "atomic_write_bytes",
    "atomic_write_text",
    "canonical_json_bytes",
    "content_digest",
    "check_schema_version",
]


class SchemaVersionError(ValueError):
    """A persisted document declares a schema version this code does not
    understand (or is not the kind of document expected)."""


def check_schema_version(data: dict, expected: int, what: str) -> int:
    """Validate ``data['schema_version']`` against ``expected``.

    Returns the effective version.  Absent versions mean 1 (files written
    before versioning); anything other than ``expected`` raises
    :class:`SchemaVersionError` with a message naming the document kind.
    """
    version = data.get("schema_version", 1)
    if not isinstance(version, int) or version != expected:
        raise SchemaVersionError(
            f"unsupported {what} schema version {version!r} "
            f"(this build reads version {expected}); "
            f"upgrade repro or re-export the file"
        )
    return version


def canonical_json_bytes(obj) -> bytes:
    """The canonical byte serialization of a JSON-able object."""
    return json.dumps(
        obj, sort_keys=True, separators=(",", ":"), ensure_ascii=False
    ).encode("utf-8")


def content_digest(data: bytes) -> str:
    """The content address of a byte string (sha256 hex)."""
    return hashlib.sha256(data).hexdigest()


def atomic_write_bytes(path, data: bytes) -> None:
    """Write-then-rename: a crash mid-write must never destroy the previous
    good file.  The one implementation every persisted artifact shares."""
    from pathlib import Path

    target = Path(path)
    tmp = target.with_name(target.name + ".tmp")
    tmp.write_bytes(data)
    tmp.replace(target)


def atomic_write_text(path, text: str) -> None:
    atomic_write_bytes(path, text.encode("utf-8"))
