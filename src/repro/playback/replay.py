"""Execution playback (paper section 5.2).

Two modes, as in the paper:

* **strict** -- "one single thread runs at a time, and all instructions
  execute in the exact same order as during synthesis": the replayer follows
  the recorded context-switch segments literally.
* **happens-before** -- threads are context-switched "only when this is
  necessary to satisfy the happens-before relations in the execution file":
  the replayer gates each thread at its next synchronization operation until
  that operation is the earliest unconsumed event of the recorded order.

Both run the program concretely (inputs come from the execution file), so
playback is deterministic and repeatable -- attach the debugger, replay,
inspect, replay again.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .. import ir
from ..core.execfile import ExecutionFile
from ..symbex import BugInfo, ConcreteEnv, ExecConfig, Executor
from ..symbex.state import RUNNABLE, ExecutionState


class PlaybackDivergence(Exception):
    """The program did not follow the synthesized execution (e.g. it was
    recompiled/patched since synthesis)."""


@dataclass(slots=True)
class PlaybackResult:
    state: ExecutionState
    bug_reproduced: bool
    bug: Optional[BugInfo]
    steps: int
    output: list[str] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        return self.state.exit_code


def play_back(
    module: ir.Module,
    execution: ExecutionFile,
    mode: str = "strict",
    max_steps: int = 10_000_000,
) -> PlaybackResult:
    """Replay a synthesized execution file against the program."""
    if mode == "strict":
        return _play_strict(module, execution, max_steps)
    if mode == "happens-before":
        return _play_happens_before(module, execution, max_steps)
    raise ValueError(f"unknown playback mode {mode!r}")


def _make_executor(module: ir.Module, execution: ExecutionFile) -> Executor:
    return Executor(
        module,
        env=ConcreteEnv(execution.inputs),
        config=ExecConfig(),
    )


def _check_reproduced(execution: ExecutionFile, state: ExecutionState) -> bool:
    if state.status != "bug" or state.bug is None:
        return False
    if execution.bug_kind and state.bug.kind.value != execution.bug_kind:
        return False
    if execution.bug_ref and repr(state.bug.ref) != execution.bug_ref:
        return False
    return True


# ---------------------------------------------------------------------------
# Strict serial replay
# ---------------------------------------------------------------------------


def _play_strict(
    module: ir.Module, execution: ExecutionFile, max_steps: int
) -> PlaybackResult:
    executor = _make_executor(module, execution)
    state = executor.initial_state()
    total = 0
    for segment in execution.strict_schedule:
        if state.terminated:
            break
        if segment.tid not in state.threads:
            raise PlaybackDivergence(
                f"schedule names thread {segment.tid}, which does not exist yet"
            )
        state.current_tid = segment.tid
        executed = 0
        while executed < segment.instrs and not state.terminated:
            thread = state.threads.get(segment.tid)
            if thread is None or thread.status != RUNNABLE:
                raise PlaybackDivergence(
                    f"thread {segment.tid} cannot run at instruction {executed} "
                    f"of its segment (status: {thread.status if thread else 'gone'})"
                )
            state.current_tid = segment.tid
            before = state.steps
            successors = executor.step(state)
            if len(successors) != 1:
                raise PlaybackDivergence("playback execution forked")
            state = successors[0]
            executed += state.steps - before
            total += 1
            if total > max_steps:
                raise PlaybackDivergence("playback exceeded step budget")
    # Let termination (exit or deadlock detection) fire if it has not yet.
    guard = 0
    while not state.terminated:
        successors = executor.step(state)
        if len(successors) != 1:
            raise PlaybackDivergence("playback execution forked at the end")
        state = successors[0]
        guard += 1
        if guard > max_steps:
            raise PlaybackDivergence("program did not terminate after schedule")
    return PlaybackResult(
        state=state,
        bug_reproduced=_check_reproduced(execution, state),
        bug=state.bug,
        steps=state.steps,
        output=list(state.output),
    )


# ---------------------------------------------------------------------------
# Happens-before replay
# ---------------------------------------------------------------------------


def _play_happens_before(
    module: ir.Module, execution: ExecutionFile, max_steps: int
) -> PlaybackResult:
    executor = _make_executor(module, execution)
    state = executor.initial_state()
    events = execution.happens_before
    total = 0

    for position, event in enumerate(events):
        if state.terminated:
            break
        thread = state.threads.get(event.tid)
        if thread is None:
            raise PlaybackDivergence(
                f"event #{position} names unknown thread {event.tid}"
            )
        if thread.status == "exited":
            raise PlaybackDivergence(
                f"event #{position}: thread {event.tid} already exited"
            )
        # Run the event's thread until it logs its next sync operation.
        logged = len(state.sync_log)
        while len(state.sync_log) == logged and not state.terminated:
            current = state.threads.get(event.tid)
            if current is None or current.status != RUNNABLE:
                raise PlaybackDivergence(
                    f"event #{position}: thread {event.tid} is "
                    f"{current.status if current else 'gone'}, expected runnable"
                )
            state.current_tid = event.tid
            successors = executor.step(state)
            if len(successors) != 1:
                raise PlaybackDivergence("playback execution forked")
            state = successors[0]
            total += 1
            if total > max_steps:
                raise PlaybackDivergence("playback exceeded step budget")
        if state.terminated and len(state.sync_log) == logged:
            break
        produced = state.sync_log[-1]
        if produced.tid != event.tid or produced.op != event.op:
            raise PlaybackDivergence(
                f"event #{position}: expected {event.op} by thread {event.tid}, "
                f"got {produced.op} by thread {produced.tid}"
            )

    guard = 0
    while not state.terminated:
        successors = executor.step(state)
        if len(successors) != 1:
            raise PlaybackDivergence("playback execution forked at the end")
        state = successors[0]
        guard += 1
        if guard > max_steps:
            raise PlaybackDivergence("program did not terminate after all events")
    return PlaybackResult(
        state=state,
        bug_reproduced=_check_reproduced(execution, state),
        bug=state.bug,
        steps=state.steps,
        output=list(state.output),
    )
