"""Per-statement coverage of a synthesized execution (repair step 1).

Spectrum-based fault localization needs to know, for one failing and several
passing executions, exactly which statements ran.  The collector drives the
strict playback stepper instruction by instruction and attributes each
executed instruction to its ``(function, source line)`` statement and to its
:class:`~repro.ir.InstrRef` -- the same artifact ``repro play --coverage``
emits as JSON for standalone triage.

Besides hit counts, the map records the execution's *end sites*: the bug
location for a crash, and every blocked thread's program counter for a
deadlock.  Localization boosts these (the coredump's stacks are evidence the
spectrum alone cannot see -- a deadlocked run covers strictly fewer
statements than a lucky run over the same inputs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .. import ir
from ..core.execfile import ExecutionFile
from ..ir import InstrRef
from ..symbex.state import BLOCKED
from .stepper import StrictStepper

COVERAGE_FORMAT = "esd-coverage-v1"
COVERAGE_SCHEMA_VERSION = 1

LineKey = tuple[str, int]  # (function, source line)


@dataclass(slots=True)
class CoverageMap:
    """Hit counts for one replayed execution."""

    program: str
    # (function, line) -> times any instruction of that statement executed.
    lines: dict[LineKey, int] = field(default_factory=dict)
    refs: dict[InstrRef, int] = field(default_factory=dict)
    # Statements where the execution ended: the crash site, or each blocked
    # thread's pc for a deadlock.  Empty for passing executions.
    end_sites: tuple[LineKey, ...] = ()
    status: str = ""  # terminal state status: 'exited' | 'bug'
    bug_kind: str = ""
    exit_code: int = 0
    steps: int = 0

    @property
    def failing(self) -> bool:
        return self.status == "bug"

    def covers(self, key: LineKey) -> bool:
        return key in self.lines

    def function_lines(self) -> dict[str, dict[int, int]]:
        """Per-function {line: hits} view (what the CLI emits)."""
        result: dict[str, dict[int, int]] = {}
        for (function, line), hits in sorted(self.lines.items()):
            result.setdefault(function, {})[line] = hits
        return result

    def to_dict(self) -> dict:
        return {
            "format": COVERAGE_FORMAT,
            "schema_version": COVERAGE_SCHEMA_VERSION,
            "program": self.program,
            "status": self.status,
            "bug_kind": self.bug_kind,
            "exit_code": self.exit_code,
            "steps": self.steps,
            "functions": {
                function: {str(line): hits for line, hits in lines.items()}
                for function, lines in self.function_lines().items()
            },
            "instructions": {
                repr(ref): hits for ref, hits in sorted(self.refs.items())
            },
            "end_sites": [
                {"function": function, "line": line}
                for function, line in self.end_sites
            ],
        }


def collect_coverage(
    module: ir.Module,
    execution: ExecutionFile,
    max_steps: int = 10_000_000,
) -> CoverageMap:
    """Replay ``execution`` through the strict stepper, counting statement
    hits.  The replay runs to termination, so a failing execution's map ends
    at the reproduced bug."""
    stepper = StrictStepper(module, execution, max_steps=max_steps)
    coverage = CoverageMap(program=execution.program)
    while not stepper.done:
        stepper.step()
        if not stepper.executed_last or stepper.last_ref is None:
            continue
        ref = stepper.last_ref
        line = _line_of(module, ref)
        key = (ref.function, line)
        coverage.lines[key] = coverage.lines.get(key, 0) + 1
        coverage.refs[ref] = coverage.refs.get(ref, 0) + 1

    state = stepper.state
    coverage.status = state.status
    coverage.exit_code = state.exit_code
    coverage.steps = state.steps
    sites: list[LineKey] = []
    if state.bug is not None:
        coverage.bug_kind = state.bug.kind.value
        sites.append((state.bug.ref.function, state.bug.line))
    for thread in state.threads.values():
        if thread.status == BLOCKED and thread.frames:
            pc = thread.pc
            sites.append((pc.function, _line_of(module, pc)))
    # Preserve discovery order but drop duplicates (two threads blocked on
    # the same statement are one suspect site).
    coverage.end_sites = tuple(dict.fromkeys(sites))
    return coverage


def _line_of(module: ir.Module, ref: InstrRef) -> int:
    try:
        return module.instruction(ref).line
    except KeyError:
        return 0


def merge_coverage(maps: list[CoverageMap]) -> Optional[CoverageMap]:
    """Fold several maps of one program into an aggregate (hit counts sum)."""
    if not maps:
        return None
    merged = CoverageMap(program=maps[0].program)
    for cov in maps:
        for key, hits in cov.lines.items():
            merged.lines[key] = merged.lines.get(key, 0) + hits
        for ref, hits in cov.refs.items():
            merged.refs[ref] = merged.refs.get(ref, 0) + hits
    return merged
