"""Deterministic playback of synthesized executions (paper section 5)."""

from .replay import PlaybackDivergence, PlaybackResult, play_back
from .stepper import PlaybackDivergenceError, StrictStepper

__all__ = [
    "PlaybackDivergence",
    "PlaybackDivergenceError",
    "PlaybackResult",
    "StrictStepper",
    "play_back",
]
