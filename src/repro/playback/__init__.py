"""Deterministic playback of synthesized executions (paper section 5)."""

from .coverage import CoverageMap, collect_coverage, merge_coverage
from .replay import PlaybackDivergence, PlaybackResult, play_back
from .stepper import PlaybackDivergenceError, StrictStepper

__all__ = [
    "CoverageMap",
    "PlaybackDivergence",
    "PlaybackDivergenceError",
    "PlaybackResult",
    "StrictStepper",
    "collect_coverage",
    "merge_coverage",
    "play_back",
]
