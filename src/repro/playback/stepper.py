"""Single-instruction stepping over a synthesized execution.

The strict replayer as a resumable object: the debugger drives it one
instruction at a time; :func:`repro.playback.play_back` drives it to the end.
"""

from __future__ import annotations

from typing import Optional

from .. import ir
from ..core.execfile import ExecutionFile
from ..ir import InstrRef
from ..symbex import ConcreteEnv, ExecConfig, Executor
from ..symbex.state import RUNNABLE, ExecutionState


class PlaybackDivergenceError(Exception):
    """Raised when the program no longer follows the synthesized schedule."""


class StrictStepper:
    """Replays the strict serial schedule one instruction per ``step()``."""

    def __init__(
        self, module: ir.Module, execution: ExecutionFile, max_steps: int = 10_000_000
    ) -> None:
        self.module = module
        self.execution = execution
        self.executor = Executor(
            module, env=ConcreteEnv(execution.inputs), config=ExecConfig()
        )
        self.state: ExecutionState = self.executor.initial_state()
        self.max_steps = max_steps
        self._segments = execution.strict_schedule
        self._segment_index = 0
        self._executed_in_segment = 0
        self._total = 0
        # Where the last step() actually executed an instruction (None when
        # it only made a scheduling decision).  The coverage collector reads
        # these to attribute per-statement hit counts.
        self.last_ref: Optional[InstrRef] = None
        self.last_tid: Optional[int] = None
        self.executed_last = False
        if self._segments:
            self.state.current_tid = self._segments[0].tid

    @property
    def done(self) -> bool:
        return self.state.terminated

    @property
    def current_instruction(self) -> Optional[ir.Instr]:
        if self.done:
            return None
        thread = self.state.threads.get(self.state.current_tid)
        if thread is None or not thread.frames:
            return None
        return self.module.instruction(thread.pc)

    def step(self) -> ExecutionState:
        """Execute exactly one instruction (following the schedule)."""
        if self.done:
            return self.state
        if self._total >= self.max_steps:
            raise PlaybackDivergenceError("playback exceeded step budget")
        self._position_on_schedule()
        if self.done:
            return self.state
        before = self.state.steps
        thread = self.state.threads.get(self.state.current_tid)
        ref = (
            thread.pc
            if thread is not None and thread.frames
            and thread.status == RUNNABLE else None
        )
        tid = self.state.current_tid
        successors = self.executor.step(self.state)
        if len(successors) != 1:
            raise PlaybackDivergenceError("playback execution forked")
        self.state = successors[0]
        self._total += 1
        self._executed_in_segment += self.state.steps - before
        # state.steps only advances when an instruction actually executed
        # (a pure reschedule leaves it untouched), so the captured pc is
        # exactly the instruction that ran.
        self.executed_last = self.state.steps > before
        self.last_ref = ref if self.executed_last else None
        self.last_tid = tid if self.executed_last else None
        return self.state

    def run(self, should_stop=None) -> ExecutionState:
        """Step until termination or until ``should_stop(state)`` is true
        *before* executing the next instruction."""
        while not self.done:
            if should_stop is not None and should_stop(self.state):
                break
            self.step()
        return self.state

    # -- schedule bookkeeping ------------------------------------------------

    def _position_on_schedule(self) -> None:
        while self._segment_index < len(self._segments):
            segment = self._segments[self._segment_index]
            if self._executed_in_segment >= segment.instrs:
                self._segment_index += 1
                self._executed_in_segment = 0
                continue
            thread = self.state.threads.get(segment.tid)
            if thread is None:
                raise PlaybackDivergenceError(
                    f"schedule names thread {segment.tid}, which does not exist"
                )
            if thread.status != RUNNABLE:
                raise PlaybackDivergenceError(
                    f"thread {segment.tid} cannot run (status {thread.status}) at "
                    f"instruction {self._executed_in_segment} of segment "
                    f"{self._segment_index}"
                )
            self.state.current_tid = segment.tid
            return
        # Past the recorded schedule: let the program terminate naturally
        # (e.g. the final scheduling step that diagnoses the deadlock).
