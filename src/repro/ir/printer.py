"""Textual dump of IR modules, for debugging and golden tests."""

from __future__ import annotations

from .module import Function, Module


def format_function(func: Function) -> str:
    lines = [f"func {func.name}({', '.join(func.params)}) {{"]
    for label, block in func.blocks.items():
        lines.append(f"{label}:")
        for instr in block.instrs:
            lines.append(f"    {instr!r}")
        if block.terminator is not None:
            lines.append(f"    {block.terminator!r}")
    lines.append("}")
    return "\n".join(lines)


def format_module(module: Module) -> str:
    parts = [f"; module {module.name}"]
    for var in module.globals.values():
        kind = "mutex" if var.is_mutex else "cond" if var.is_cond else "global"
        init = f" = {var.init}" if var.init else ""
        parts.append(f"{kind} @{var.name}[{var.size}]{init}")
    for func in module.functions.values():
        parts.append("")
        parts.append(format_function(func))
    return "\n".join(parts) + "\n"
