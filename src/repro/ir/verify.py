"""Structural validation of IR modules.

The verifier catches frontend and generator bugs early: unterminated blocks,
dangling branch targets, calls to missing functions, registers that are never
defined, and malformed operators.  It is run by the MiniC compiler and by the
BPF program generator on everything they emit.
"""

from __future__ import annotations

from .instructions import (
    BINARY_OPS,
    INTRINSICS,
    UNARY_OPS,
    BinOp,
    Call,
    CondBr,
    Intrinsic,
    UnOp,
)
from .module import Function, Module, instr_operand_regs
from .values import FuncRef, GlobalRef


class VerificationError(Exception):
    """Raised when a module is structurally invalid."""


def verify_module(module: Module) -> None:
    """Raise :class:`VerificationError` on the first structural problem."""
    if "main" not in module.functions:
        raise VerificationError("module has no main function")
    for func in module.functions.values():
        _verify_function(module, func)


def _verify_function(module: Module, func: Function) -> None:
    if func.entry not in func.blocks:
        raise VerificationError(f"{func.name}: missing entry block {func.entry!r}")

    defined: set[str] = set(func.params)
    for _, instr in func.iter_instructions():
        name = instr.defined
        if name is not None:
            defined.add(name)

    for label, block in func.blocks.items():
        where = f"{func.name}:{label}"
        if block.terminator is None:
            raise VerificationError(f"{where}: block is not terminated")
        for target in block.terminator.successors():
            if target not in func.blocks:
                raise VerificationError(f"{where}: branch to unknown block {target!r}")
        if isinstance(block.terminator, CondBr):
            term = block.terminator
            if term.then_target == term.else_target:
                raise VerificationError(f"{where}: condbr with identical targets")

        for index, instr in enumerate(list(block.instrs) + [block.terminator]):
            at = f"{where}:{index}"
            if isinstance(instr, BinOp) and instr.op not in BINARY_OPS:
                raise VerificationError(f"{at}: unknown binary op {instr.op!r}")
            if isinstance(instr, UnOp) and instr.op not in UNARY_OPS:
                raise VerificationError(f"{at}: unknown unary op {instr.op!r}")
            if isinstance(instr, Intrinsic) and instr.name not in INTRINSICS:
                raise VerificationError(f"{at}: unknown intrinsic {instr.name!r}")
            if isinstance(instr, Call) and isinstance(instr.callee, FuncRef):
                if instr.callee.name not in module.functions:
                    raise VerificationError(
                        f"{at}: call to unknown function {instr.callee.name!r}"
                    )
                callee = module.functions[instr.callee.name]
                if len(instr.args) != len(callee.params):
                    raise VerificationError(
                        f"{at}: call to {callee.name} with {len(instr.args)} args, "
                        f"expected {len(callee.params)}"
                    )
            for reg in instr_operand_regs(instr):
                if reg not in defined:
                    raise VerificationError(f"{at}: use of undefined register %{reg}")
            for op in instr.operands():
                if isinstance(op, GlobalRef) and op.name not in module.globals:
                    raise VerificationError(f"{at}: unknown global @{op.name}")
                if isinstance(op, FuncRef) and op.name not in module.functions:
                    raise VerificationError(f"{at}: unknown function &{op.name}")
