"""IR containers: basic blocks, functions, globals, modules.

A :class:`Module` is the unit ESD analyzes and executes -- the analogue of the
LLVM bitcode file the paper compiles each program to.  Program locations are
identified by :class:`InstrRef` (function, block label, instruction index),
which is the representation used for goals, critical edges, and schedules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from .instructions import Instr, Terminator
from .values import Value


@dataclass(frozen=True, slots=True, order=True)
class InstrRef:
    """A stable reference to one instruction.

    ``index == len(block.instrs)`` refers to the block's terminator.
    """

    function: str
    block: str
    index: int

    def __repr__(self) -> str:
        return f"{self.function}:{self.block}:{self.index}"

    @classmethod
    def parse(cls, text: str) -> "InstrRef":
        function, block, index = text.rsplit(":", 2)
        return cls(function, block, int(index))


class BasicBlock:
    """A labelled straight-line instruction sequence plus one terminator."""

    __slots__ = ("label", "instrs", "terminator")

    def __init__(self, label: str) -> None:
        self.label = label
        self.instrs: list[Instr] = []
        self.terminator: Optional[Terminator] = None

    def append(self, instr: Instr) -> None:
        if self.terminator is not None:
            raise ValueError(f"block {self.label} already terminated")
        if isinstance(instr, Terminator):
            self.terminator = instr
        else:
            self.instrs.append(instr)

    @property
    def terminated(self) -> bool:
        return self.terminator is not None

    def instruction_at(self, index: int) -> Instr:
        """Instruction at ``index``; the terminator sits at ``len(instrs)``."""
        if index == len(self.instrs):
            assert self.terminator is not None
            return self.terminator
        return self.instrs[index]

    def __len__(self) -> int:
        """Number of instructions including the terminator."""
        return len(self.instrs) + (1 if self.terminator is not None else 0)

    def __repr__(self) -> str:
        return f"<block {self.label} ({len(self)} instrs)>"


class Function:
    """A function: parameter names plus an ordered collection of blocks."""

    def __init__(self, name: str, params: Optional[list[str]] = None) -> None:
        self.name = name
        self.params: list[str] = list(params or [])
        self.blocks: dict[str, BasicBlock] = {}
        self.entry: str = "entry"

    def block(self, label: str) -> BasicBlock:
        """Get or create the block with this label."""
        existing = self.blocks.get(label)
        if existing is not None:
            return existing
        block = BasicBlock(label)
        self.blocks[label] = block
        return block

    def instruction(self, ref: InstrRef) -> Instr:
        if ref.function != self.name:
            raise KeyError(f"{ref} is not in function {self.name}")
        return self.blocks[ref.block].instruction_at(ref.index)

    def iter_instructions(self) -> Iterator[tuple[InstrRef, Instr]]:
        for label, block in self.blocks.items():
            for index, instr in enumerate(block.instrs):
                yield InstrRef(self.name, label, index), instr
            if block.terminator is not None:
                yield InstrRef(self.name, label, len(block.instrs)), block.terminator

    @property
    def size(self) -> int:
        """Total instruction count (including terminators)."""
        return sum(len(block) for block in self.blocks.values())

    def __repr__(self) -> str:
        return f"<function {self.name}({', '.join(self.params)})>"


@dataclass(slots=True)
class GlobalVar:
    """A module-level memory object of ``size`` cells.

    ``init`` supplies initial cell values (shorter than ``size`` means the
    tail is zero-filled).  String literals become NUL-terminated globals.
    """

    name: str
    size: int
    init: list[int] = field(default_factory=list)
    is_mutex: bool = False
    is_cond: bool = False


class Module:
    """A whole program: functions + globals + source metadata."""

    def __init__(self, name: str = "module") -> None:
        self.name = name
        self.functions: dict[str, Function] = {}
        self.globals: dict[str, GlobalVar] = {}
        self.source_lines: list[str] = []
        self._string_counter = 0

    def function(self, name: str, params: Optional[list[str]] = None) -> Function:
        """Get or create a function."""
        existing = self.functions.get(name)
        if existing is not None:
            return existing
        func = Function(name, params)
        self.functions[name] = func
        return func

    def add_global(self, var: GlobalVar) -> GlobalVar:
        if var.name in self.globals:
            raise ValueError(f"duplicate global {var.name}")
        self.globals[var.name] = var
        return var

    def intern_string(self, text: str) -> str:
        """Create (or reuse) a NUL-terminated global holding ``text``.

        Returns the global's name.
        """
        cells = [ord(ch) for ch in text] + [0]
        for var in self.globals.values():
            if var.init == cells and var.name.startswith(".str"):
                return var.name
        name = f".str{self._string_counter}"
        self._string_counter += 1
        self.add_global(GlobalVar(name, len(cells), cells))
        return name

    def instruction(self, ref: InstrRef) -> Instr:
        return self.functions[ref.function].instruction(ref)

    def source_line(self, line: int) -> str:
        if 1 <= line <= len(self.source_lines):
            return self.source_lines[line - 1]
        return ""

    @property
    def size(self) -> int:
        return sum(func.size for func in self.functions.values())

    def __repr__(self) -> str:
        return (
            f"<module {self.name}: {len(self.functions)} functions, "
            f"{len(self.globals)} globals, {self.size} instrs>"
        )


def instr_operand_regs(instr: Instr) -> list[str]:
    """Names of registers read by ``instr``."""
    from .values import Reg

    return [op.name for op in instr.operands() if isinstance(op, Reg)]
