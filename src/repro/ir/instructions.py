"""IR instruction set.

Instructions are word-granular, mirroring the LLVM subset ESD operates on
(paper section 6.2): loads and stores address individual memory cells, calls
may be direct (:class:`~repro.ir.values.FuncRef` callee) or indirect (register
callee), and every basic block ends in exactly one terminator.

Synchronization operations are first-class instructions rather than opaque
calls so that the scheduler can identify preemption points syntactically, the
way ESD hijacks calls to the real threads library (paper section 6.1).

Every instruction carries the MiniC source ``line`` that produced it, which is
what the coredump generator and the gdb-like debugger report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .values import Value

# Binary operators.  Comparison operators produce 0/1.  ``&&``/``||`` are
# *bitwise-logical* on already-evaluated 0/1 operands; the MiniC frontend
# compiles short-circuit evaluation into control flow.
BINARY_OPS = frozenset(
    {
        "+", "-", "*", "/", "%",
        "&", "|", "^", "<<", ">>",
        "==", "!=", "<", "<=", ">", ">=",
        "&&", "||",
    }
)

COMPARISON_OPS = frozenset({"==", "!=", "<", "<=", ">", ">="})

UNARY_OPS = frozenset({"-", "!", "~"})

# Environment intrinsics understood by the executor.  ``getchar``/``getenv``
# and friends return fresh symbolic values during synthesis and concrete
# values during playback.
INTRINSICS = frozenset(
    {
        "getchar",      # () -> int, one byte of stdin (-1 for EOF is not modeled)
        "getenv",       # (name_ptr) -> ptr to NUL-terminated env string
        "argc",         # () -> int
        "arg",          # (i) -> ptr to NUL-terminated argv[i]
        "read_input",   # (name_ptr, size) -> ptr to a fresh symbolic buffer
        "print_int",    # (v) -> void
        "print_str",    # (ptr) -> void
        "abort",        # () -> crash
        "exit",         # (code) -> terminate thread group
        "assume",       # (cond) -> constrain path (testing aid)
    }
)


@dataclass(slots=True)
class Instr:
    """Base class for all instructions."""

    line: int = field(default=0, kw_only=True)

    @property
    def defined(self) -> Optional[str]:
        """Name of the register this instruction defines, if any."""
        dst = getattr(self, "dst", None)
        return dst.name if dst is not None else None

    def operands(self) -> tuple[Value, ...]:
        """All value operands read by this instruction."""
        return ()


# ---------------------------------------------------------------------------
# Straight-line instructions
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class Assign(Instr):
    dst: Value
    src: Value

    def operands(self) -> tuple[Value, ...]:
        return (self.src,)

    def __repr__(self) -> str:
        return f"{self.dst} = {self.src}"


@dataclass(slots=True)
class BinOp(Instr):
    dst: Value
    op: str
    lhs: Value
    rhs: Value

    def operands(self) -> tuple[Value, ...]:
        return (self.lhs, self.rhs)

    def __repr__(self) -> str:
        return f"{self.dst} = {self.lhs} {self.op} {self.rhs}"


@dataclass(slots=True)
class UnOp(Instr):
    dst: Value
    op: str
    value: Value

    def operands(self) -> tuple[Value, ...]:
        return (self.value,)

    def __repr__(self) -> str:
        return f"{self.dst} = {self.op}{self.value}"


@dataclass(slots=True)
class Alloc(Instr):
    """Allocate ``size`` cells; yields a pointer.  ``heap`` selects malloc
    semantics (freeable, survives the frame) vs. stack semantics."""

    dst: Value
    size: Value
    heap: bool = False
    name: str = ""

    def operands(self) -> tuple[Value, ...]:
        return (self.size,)

    def __repr__(self) -> str:
        kind = "malloc" if self.heap else "alloca"
        return f"{self.dst} = {kind}({self.size})"


@dataclass(slots=True)
class Free(Instr):
    ptr: Value

    def operands(self) -> tuple[Value, ...]:
        return (self.ptr,)

    def __repr__(self) -> str:
        return f"free({self.ptr})"


@dataclass(slots=True)
class Load(Instr):
    dst: Value
    addr: Value

    def operands(self) -> tuple[Value, ...]:
        return (self.addr,)

    def __repr__(self) -> str:
        return f"{self.dst} = load {self.addr}"


@dataclass(slots=True)
class Store(Instr):
    addr: Value
    value: Value

    def operands(self) -> tuple[Value, ...]:
        return (self.addr, self.value)

    def __repr__(self) -> str:
        return f"store {self.value} -> {self.addr}"


@dataclass(slots=True)
class Gep(Instr):
    """Pointer arithmetic: ``dst = base + offset`` (in cells)."""

    dst: Value
    base: Value
    offset: Value

    def operands(self) -> tuple[Value, ...]:
        return (self.base, self.offset)

    def __repr__(self) -> str:
        return f"{self.dst} = gep {self.base}, {self.offset}"


@dataclass(slots=True)
class Call(Instr):
    """Direct (FuncRef callee) or indirect (register callee) call."""

    dst: Optional[Value]
    callee: Value
    args: list[Value] = field(default_factory=list)

    def operands(self) -> tuple[Value, ...]:
        return (self.callee, *self.args)

    def __repr__(self) -> str:
        args = ", ".join(map(repr, self.args))
        prefix = f"{self.dst} = " if self.dst is not None else ""
        return f"{prefix}call {self.callee}({args})"


@dataclass(slots=True)
class Intrinsic(Instr):
    dst: Optional[Value]
    name: str
    args: list[Value] = field(default_factory=list)

    def operands(self) -> tuple[Value, ...]:
        return tuple(self.args)

    def __repr__(self) -> str:
        args = ", ".join(map(repr, self.args))
        prefix = f"{self.dst} = " if self.dst is not None else ""
        return f"{prefix}{self.name}({args})"


@dataclass(slots=True)
class Assert(Instr):
    """A failed assert is a crash whose goal condition is the negated cond."""

    cond: Value
    message: str = ""

    def operands(self) -> tuple[Value, ...]:
        return (self.cond,)

    def __repr__(self) -> str:
        return f"assert {self.cond}  ; {self.message!r}"


# ---------------------------------------------------------------------------
# Synchronization instructions (preemption points for schedule synthesis)
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class MutexLock(Instr):
    mutex: Value

    def operands(self) -> tuple[Value, ...]:
        return (self.mutex,)

    def __repr__(self) -> str:
        return f"lock {self.mutex}"


@dataclass(slots=True)
class MutexUnlock(Instr):
    mutex: Value

    def operands(self) -> tuple[Value, ...]:
        return (self.mutex,)

    def __repr__(self) -> str:
        return f"unlock {self.mutex}"


@dataclass(slots=True)
class CondWait(Instr):
    cond: Value
    mutex: Value

    def operands(self) -> tuple[Value, ...]:
        return (self.cond, self.mutex)

    def __repr__(self) -> str:
        return f"cond_wait {self.cond}, {self.mutex}"


@dataclass(slots=True)
class CondSignal(Instr):
    cond: Value
    broadcast: bool = False

    def operands(self) -> tuple[Value, ...]:
        return (self.cond,)

    def __repr__(self) -> str:
        op = "cond_broadcast" if self.broadcast else "cond_signal"
        return f"{op} {self.cond}"


@dataclass(slots=True)
class ThreadCreate(Instr):
    """Spawn a thread running ``func(arg)``; yields the new thread id."""

    dst: Optional[Value]
    func: Value
    arg: Value

    def operands(self) -> tuple[Value, ...]:
        return (self.func, self.arg)

    def __repr__(self) -> str:
        prefix = f"{self.dst} = " if self.dst is not None else ""
        return f"{prefix}thread_create {self.func}, {self.arg}"


@dataclass(slots=True)
class ThreadJoin(Instr):
    dst: Optional[Value]
    tid: Value

    def operands(self) -> tuple[Value, ...]:
        return (self.tid,)

    def __repr__(self) -> str:
        prefix = f"{self.dst} = " if self.dst is not None else ""
        return f"{prefix}thread_join {self.tid}"


SYNC_INSTRS = (MutexLock, MutexUnlock, CondWait, CondSignal, ThreadCreate, ThreadJoin)


# ---------------------------------------------------------------------------
# Terminators
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class Terminator(Instr):
    """Base class for block terminators."""

    def successors(self) -> tuple[str, ...]:
        return ()


@dataclass(slots=True)
class Br(Terminator):
    target: str

    def successors(self) -> tuple[str, ...]:
        return (self.target,)

    def __repr__(self) -> str:
        return f"br {self.target}"


@dataclass(slots=True)
class CondBr(Terminator):
    cond: Value
    then_target: str
    else_target: str

    def operands(self) -> tuple[Value, ...]:
        return (self.cond,)

    def successors(self) -> tuple[str, ...]:
        return (self.then_target, self.else_target)

    def __repr__(self) -> str:
        return f"br {self.cond}, {self.then_target}, {self.else_target}"


@dataclass(slots=True)
class Ret(Terminator):
    value: Optional[Value] = None

    def operands(self) -> tuple[Value, ...]:
        return (self.value,) if self.value is not None else ()

    def __repr__(self) -> str:
        return f"ret {self.value}" if self.value is not None else "ret"


@dataclass(slots=True)
class Unreachable(Terminator):
    def __repr__(self) -> str:
        return "unreachable"
