"""IR value operands.

The IR is a three-address code over virtual registers.  Operands are one of:

* :class:`Const` -- a 32-bit integer constant (the null pointer is ``Const(0)``),
* :class:`Reg` -- a per-function virtual register,
* :class:`GlobalRef` -- the address of a module-level global memory object,
* :class:`FuncRef` -- a function pointer constant.

Operands are immutable and hashable so they can be used as dictionary keys by
the static analyses.
"""

from __future__ import annotations

from dataclasses import dataclass

INT_MIN = -(2**31)
INT_MAX = 2**31 - 1


def wrap32(value: int) -> int:
    """Wrap a Python int to a signed 32-bit integer (two's complement)."""
    return (value + 2**31) % 2**32 - 2**31


class Value:
    """Base class for IR operands."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class Const(Value):
    """A signed 32-bit integer constant."""

    value: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "value", wrap32(self.value))

    def __repr__(self) -> str:
        return str(self.value)


@dataclass(frozen=True, slots=True)
class Reg(Value):
    """A virtual register, local to one function activation."""

    name: str

    def __repr__(self) -> str:
        return "%" + self.name


@dataclass(frozen=True, slots=True)
class GlobalRef(Value):
    """The address of a global memory object (evaluates to a pointer)."""

    name: str

    def __repr__(self) -> str:
        return "@" + self.name


@dataclass(frozen=True, slots=True)
class FuncRef(Value):
    """A function pointer constant."""

    name: str

    def __repr__(self) -> str:
        return "&" + self.name


@dataclass(frozen=True, slots=True)
class Hole(Value):
    """A symbolic constant to be synthesized (constraint-based repair).

    A patch template replaces a concrete operand with a hole; the symbolic
    executor evaluates every occurrence of one hole to the *same* symbolic
    variable over ``[lo, hi]``, so the repair engine can constrain its value
    ("bug goal unreachable and passing executions preserved") and concretize
    the solver's model back into a :class:`Const`.  Holes never appear in
    modules the frontend emits -- only in candidate-patch modules built by
    :mod:`repro.repair`.
    """

    name: str
    lo: int = INT_MIN
    hi: int = INT_MAX

    def __repr__(self) -> str:
        return f"?{self.name}[{self.lo},{self.hi}]"


NULL = Const(0)

TRUE = Const(1)
FALSE = Const(0)
