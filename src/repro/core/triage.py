"""Automated bug triage and deduplication (paper section 8).

"ESD can be used to automatically identify reports of the same bug: if two
synthesized executions are identical, then they correspond to the same bug."
Incoming reports are synthesized, and the resulting execution files are
compared by fingerprint; duplicates are attached to the existing bug id.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Union

from ..schema import (
    SchemaVersionError,
    atomic_write_text,
    check_schema_version,
)
from .execfile import ExecutionFile

TRIAGE_DB_FORMAT = "esd-triage-db-v1"
TRIAGE_DB_SCHEMA_VERSION = 1


def same_bug(a: ExecutionFile, b: ExecutionFile) -> bool:
    """Two synthesized executions that are identical are the same bug."""
    return a.fingerprint() == b.fingerprint()


@dataclass(slots=True)
class TriageEntry:
    bug_id: int
    execution: ExecutionFile
    duplicates: int = 0


@dataclass(slots=True)
class TriageDatabase:
    """A bug tracker keyed by synthesized-execution fingerprints.

    Entries are indexed by fingerprint, so ``submit`` is O(1) regardless of
    how many distinct bugs the database holds, and shards filled in parallel
    can be combined with :meth:`merge`.
    """

    entries: list[TriageEntry] = field(default_factory=list)
    _next_id: int = 1
    _index: dict[tuple, TriageEntry] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Support construction from a pre-existing entry list.
        for entry in self.entries:
            self._index[entry.execution.fingerprint()] = entry
        if self.entries:
            self._next_id = max(self._next_id,
                                max(e.bug_id for e in self.entries) + 1)

    def submit(self, execution: ExecutionFile) -> tuple[int, bool]:
        """Register a synthesized execution.

        Returns ``(bug_id, is_new)``: duplicates of an earlier report get the
        original bug id.
        """
        fingerprint = execution.fingerprint()
        entry = self._index.get(fingerprint)
        if entry is not None:
            entry.duplicates += 1
            return entry.bug_id, False
        bug_id = self._next_id
        self._next_id += 1
        entry = TriageEntry(bug_id, execution)
        self.entries.append(entry)
        self._index[fingerprint] = entry
        return bug_id, True

    def merge(self, other: "TriageDatabase") -> dict[int, int]:
        """Fold another (sharded) database into this one.

        Returns a mapping from the other database's bug ids to the local
        ones.  Duplicate counts carry over: an entry that collides with a
        local fingerprint contributes its original report plus all its
        recorded duplicates to the local entry's count.
        """
        mapping: dict[int, int] = {}
        for entry in other.entries:
            fingerprint = entry.execution.fingerprint()
            local = self._index.get(fingerprint)
            if local is not None:
                local.duplicates += entry.duplicates + 1
            else:
                local = TriageEntry(self._next_id, entry.execution,
                                    entry.duplicates)
                self._next_id += 1
                self.entries.append(local)
                self._index[fingerprint] = local
            mapping[entry.bug_id] = local.bug_id
        return mapping

    def __len__(self) -> int:
        return len(self.entries)

    # -- persistence (triage accumulates across invocations) -----------------

    def to_dict(self) -> dict:
        return {
            "format": TRIAGE_DB_FORMAT,
            "schema_version": TRIAGE_DB_SCHEMA_VERSION,
            "entries": [
                {
                    "bug_id": entry.bug_id,
                    "duplicates": entry.duplicates,
                    "execution": entry.execution.to_dict(),
                }
                for entry in self.entries
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TriageDatabase":
        if data.get("format") != TRIAGE_DB_FORMAT:
            raise SchemaVersionError(
                f"not a triage database: format {data.get('format')!r} "
                f"(expected {TRIAGE_DB_FORMAT!r})"
            )
        check_schema_version(data, TRIAGE_DB_SCHEMA_VERSION, "triage database")
        return cls(entries=[
            TriageEntry(
                bug_id=entry["bug_id"],
                execution=ExecutionFile.from_dict(entry["execution"]),
                duplicates=entry.get("duplicates", 0),
            )
            for entry in data.get("entries", [])
        ])

    def save(self, path: Union[str, Path]) -> None:
        """Write atomically so a crash mid-save keeps the previous database."""
        atomic_write_text(path, json.dumps(self.to_dict(), indent=2))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "TriageDatabase":
        data = json.loads(Path(path).read_text())
        if not isinstance(data, dict):
            raise SchemaVersionError(f"{path} is not a triage database")
        return cls.from_dict(data)
