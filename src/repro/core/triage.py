"""Automated bug triage and deduplication (paper section 8).

"ESD can be used to automatically identify reports of the same bug: if two
synthesized executions are identical, then they correspond to the same bug."
Incoming reports are synthesized, and the resulting execution files are
compared by fingerprint; duplicates are attached to the existing bug id.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .execfile import ExecutionFile


def same_bug(a: ExecutionFile, b: ExecutionFile) -> bool:
    """Two synthesized executions that are identical are the same bug."""
    return a.fingerprint() == b.fingerprint()


@dataclass(slots=True)
class TriageEntry:
    bug_id: int
    execution: ExecutionFile
    duplicates: int = 0


@dataclass(slots=True)
class TriageDatabase:
    """A bug tracker keyed by synthesized-execution fingerprints.

    Entries are indexed by fingerprint, so ``submit`` is O(1) regardless of
    how many distinct bugs the database holds, and shards filled in parallel
    can be combined with :meth:`merge`.
    """

    entries: list[TriageEntry] = field(default_factory=list)
    _next_id: int = 1
    _index: dict[tuple, TriageEntry] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Support construction from a pre-existing entry list.
        for entry in self.entries:
            self._index[entry.execution.fingerprint()] = entry
        if self.entries:
            self._next_id = max(self._next_id,
                                max(e.bug_id for e in self.entries) + 1)

    def submit(self, execution: ExecutionFile) -> tuple[int, bool]:
        """Register a synthesized execution.

        Returns ``(bug_id, is_new)``: duplicates of an earlier report get the
        original bug id.
        """
        fingerprint = execution.fingerprint()
        entry = self._index.get(fingerprint)
        if entry is not None:
            entry.duplicates += 1
            return entry.bug_id, False
        bug_id = self._next_id
        self._next_id += 1
        entry = TriageEntry(bug_id, execution)
        self.entries.append(entry)
        self._index[fingerprint] = entry
        return bug_id, True

    def merge(self, other: "TriageDatabase") -> dict[int, int]:
        """Fold another (sharded) database into this one.

        Returns a mapping from the other database's bug ids to the local
        ones.  Duplicate counts carry over: an entry that collides with a
        local fingerprint contributes its original report plus all its
        recorded duplicates to the local entry's count.
        """
        mapping: dict[int, int] = {}
        for entry in other.entries:
            fingerprint = entry.execution.fingerprint()
            local = self._index.get(fingerprint)
            if local is not None:
                local.duplicates += entry.duplicates + 1
            else:
                local = TriageEntry(self._next_id, entry.execution,
                                    entry.duplicates)
                self._next_id += 1
                self.entries.append(local)
                self._index[fingerprint] = local
            mapping[entry.bug_id] = local.bug_id
        return mapping

    def __len__(self) -> int:
        return len(self.entries)
