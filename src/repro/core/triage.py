"""Automated bug triage and deduplication (paper section 8).

"ESD can be used to automatically identify reports of the same bug: if two
synthesized executions are identical, then they correspond to the same bug."
Incoming reports are synthesized, and the resulting execution files are
compared by fingerprint; duplicates are attached to the existing bug id.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from ..schema import SchemaVersionError, atomic_write_text
from .execfile import ExecutionFile

TRIAGE_DB_FORMAT = "esd-triage-db-v1"
# Version 2 adds per-bug repair outcomes (patch artifact digest + verified
# flag).  Version-1 files load as unpatched; version-2 files are rejected by
# older readers via their exact-version check.
TRIAGE_DB_SCHEMA_VERSION = 2
_READABLE_VERSIONS = (1, 2)


def same_bug(a: ExecutionFile, b: ExecutionFile) -> bool:
    """Two synthesized executions that are identical are the same bug."""
    return a.fingerprint() == b.fingerprint()


@dataclass(slots=True)
class TriageEntry:
    bug_id: int
    execution: ExecutionFile
    duplicates: int = 0
    # Repair outcome: the content digest of the stored patch artifact and
    # whether it passed validation (ESD could no longer synthesize the
    # report and the passing executions replayed identically).
    patch_digest: Optional[str] = None
    patch_verified: bool = False

    @property
    def patched(self) -> bool:
        return self.patch_digest is not None and self.patch_verified


@dataclass(slots=True)
class TriageDatabase:
    """A bug tracker keyed by synthesized-execution fingerprints.

    Entries are indexed by fingerprint, so ``submit`` is O(1) regardless of
    how many distinct bugs the database holds, and shards filled in parallel
    can be combined with :meth:`merge`.
    """

    entries: list[TriageEntry] = field(default_factory=list)
    _next_id: int = 1
    _index: dict[tuple, TriageEntry] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Support construction from a pre-existing entry list.
        for entry in self.entries:
            self._index[entry.execution.fingerprint()] = entry
        if self.entries:
            self._next_id = max(self._next_id,
                                max(e.bug_id for e in self.entries) + 1)

    def submit(self, execution: ExecutionFile) -> tuple[int, bool]:
        """Register a synthesized execution.

        Returns ``(bug_id, is_new)``: duplicates of an earlier report get the
        original bug id.
        """
        fingerprint = execution.fingerprint()
        entry = self._index.get(fingerprint)
        if entry is not None:
            entry.duplicates += 1
            return entry.bug_id, False
        bug_id = self._next_id
        self._next_id += 1
        entry = TriageEntry(bug_id, execution)
        self.entries.append(entry)
        self._index[fingerprint] = entry
        return bug_id, True

    def merge(self, other: "TriageDatabase") -> dict[int, int]:
        """Fold another (sharded) database into this one.

        Returns a mapping from the other database's bug ids to the local
        ones.  Duplicate counts carry over: an entry that collides with a
        local fingerprint contributes its original report plus all its
        recorded duplicates to the local entry's count.  A repair outcome
        carries over when the local entry has none (a verified patch is
        never downgraded by an unpatched shard).
        """
        mapping: dict[int, int] = {}
        for entry in other.entries:
            fingerprint = entry.execution.fingerprint()
            local = self._index.get(fingerprint)
            if local is not None:
                local.duplicates += entry.duplicates + 1
                if entry.patch_digest is not None and not local.patched:
                    local.patch_digest = entry.patch_digest
                    local.patch_verified = entry.patch_verified
            else:
                local = TriageEntry(self._next_id, entry.execution,
                                    entry.duplicates,
                                    patch_digest=entry.patch_digest,
                                    patch_verified=entry.patch_verified)
                self._next_id += 1
                self.entries.append(local)
                self._index[fingerprint] = local
            mapping[entry.bug_id] = local.bug_id
        return mapping

    def entry(self, bug_id: int) -> Optional[TriageEntry]:
        for candidate in self.entries:
            if candidate.bug_id == bug_id:
                return candidate
        return None

    def record_repair(self, bug_id: int, patch_digest: str,
                      verified: bool) -> TriageEntry:
        """Attach a repair outcome (patch artifact digest + verified flag)
        to a tracked bug."""
        entry = self.entry(bug_id)
        if entry is None:
            raise KeyError(f"no bug #{bug_id} in the triage database")
        entry.patch_digest = patch_digest
        entry.patch_verified = verified
        return entry

    @property
    def patched_count(self) -> int:
        return sum(1 for entry in self.entries if entry.patched)

    def __len__(self) -> int:
        return len(self.entries)

    # -- persistence (triage accumulates across invocations) -----------------

    def to_dict(self) -> dict:
        return {
            "format": TRIAGE_DB_FORMAT,
            "schema_version": TRIAGE_DB_SCHEMA_VERSION,
            "entries": [
                {
                    "bug_id": entry.bug_id,
                    "duplicates": entry.duplicates,
                    "execution": entry.execution.to_dict(),
                    "patch_digest": entry.patch_digest,
                    "patch_verified": entry.patch_verified,
                }
                for entry in self.entries
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TriageDatabase":
        if data.get("format") != TRIAGE_DB_FORMAT:
            raise SchemaVersionError(
                f"not a triage database: format {data.get('format')!r} "
                f"(expected {TRIAGE_DB_FORMAT!r})"
            )
        # Both readable versions share the entry shape; version 1 simply
        # predates the repair-outcome fields (absent -> unpatched).
        version = data.get("schema_version", 1)
        if not isinstance(version, int) or version not in _READABLE_VERSIONS:
            raise SchemaVersionError(
                f"unsupported triage database schema version {version!r} "
                f"(this build reads versions "
                f"{', '.join(map(str, _READABLE_VERSIONS))}); "
                f"upgrade repro or re-export the file"
            )
        return cls(entries=[
            TriageEntry(
                bug_id=entry["bug_id"],
                execution=ExecutionFile.from_dict(entry["execution"]),
                duplicates=entry.get("duplicates", 0),
                patch_digest=entry.get("patch_digest"),
                patch_verified=entry.get("patch_verified", False),
            )
            for entry in data.get("entries", [])
        ])

    def save(self, path: Union[str, Path]) -> None:
        """Write atomically so a crash mid-save keeps the previous database."""
        atomic_write_text(path, json.dumps(self.to_dict(), indent=2))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "TriageDatabase":
        data = json.loads(Path(path).read_text())
        if not isinstance(data, dict):
            raise SchemaVersionError(f"{path} is not a triage database")
        return cls.from_dict(data)
