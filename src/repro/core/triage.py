"""Automated bug triage and deduplication (paper section 8).

"ESD can be used to automatically identify reports of the same bug: if two
synthesized executions are identical, then they correspond to the same bug."
Incoming reports are synthesized, and the resulting execution files are
compared by fingerprint; duplicates are attached to the existing bug id.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .execfile import ExecutionFile


def same_bug(a: ExecutionFile, b: ExecutionFile) -> bool:
    """Two synthesized executions that are identical are the same bug."""
    return a.fingerprint() == b.fingerprint()


@dataclass(slots=True)
class TriageEntry:
    bug_id: int
    execution: ExecutionFile
    duplicates: int = 0


@dataclass(slots=True)
class TriageDatabase:
    """A tiny bug tracker keyed by synthesized-execution fingerprints."""

    entries: list[TriageEntry] = field(default_factory=list)
    _next_id: int = 1

    def submit(self, execution: ExecutionFile) -> tuple[int, bool]:
        """Register a synthesized execution.

        Returns ``(bug_id, is_new)``: duplicates of an earlier report get the
        original bug id.
        """
        for entry in self.entries:
            if same_bug(entry.execution, execution):
                entry.duplicates += 1
                return entry.bug_id, False
        bug_id = self._next_id
        self._next_id += 1
        self.entries.append(TriageEntry(bug_id, execution))
        return bug_id, True

    def __len__(self) -> int:
        return len(self.entries)
