"""The ESD synthesis driver: bug report in, execution file out (``esdsynth``).

Pipeline (paper sections 2-4):

1. extract the goal <B, C> from the coredump;
2. static phase: build the inter-procedural CFG and distance tables, find
   critical edges and intermediate goals;
3. dynamic phase: proximity-guided multi-threaded symbolic execution with the
   bug-class-specific scheduling strategy (deadlock snapshots / race
   preemptions);
4. solve the winning state's constraints and emit the execution file.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from .. import ir
from ..analysis import DistanceCalculator, find_intermediate_goals
from ..concurrency import (
    ChainedPolicy,
    DeadlockSchedulePolicy,
    RaceDetector,
    RaceSchedulePolicy,
)
from ..coredump import BugReport
from ..search import (
    GoalSpec,
    ProximityGuidedSearcher,
    SearchBudget,
    SearchOutcome,
    explore,
)
from ..solver import Solver
from ..symbex import ExecConfig, Executor, SchedulerPolicy, SymbolicEnv
from ..symbex.state import ExecutionState
from .execfile import ExecutionFile, execution_file_from_state
from .goals import SynthesisGoal, extract_goal


@dataclass(slots=True)
class ESDConfig:
    """Knobs for synthesis; the ablation benchmarks flip the ESD-specific
    focusing techniques off one at a time."""

    budget: SearchBudget = field(default_factory=lambda: SearchBudget(
        max_instructions=20_000_000, max_states=500_000, max_seconds=180.0,
    ))
    seed: int = 0
    string_size: int = 8
    max_args: int = 4
    # Focusing techniques (paper section 3.3/3.4):
    use_intermediate_goals: bool = True
    prune_unreachable: bool = True
    use_schedule_distance: bool = True
    # Schedule synthesis:
    fork_at_unlock: bool = True
    with_race_detection: bool = False


@dataclass(slots=True)
class SynthesisResult:
    found: bool
    reason: str
    goal: SynthesisGoal
    execution_file: Optional[ExecutionFile]
    goal_state: Optional[ExecutionState]
    static_seconds: float
    search_seconds: float
    instructions: int
    states_explored: int
    other_bugs: int
    intermediate_goal_count: int = 0

    @property
    def total_seconds(self) -> float:
        return self.static_seconds + self.search_seconds


def esd_synthesize(
    module: ir.Module,
    report: BugReport,
    config: Optional[ESDConfig] = None,
) -> SynthesisResult:
    """Synthesize an execution reproducing the reported bug."""
    config = config or ESDConfig()
    goal = extract_goal(module, report)

    static_started = time.monotonic()
    distances = DistanceCalculator(module)
    solver = Solver()
    intermediate: list[GoalSpec] = []
    if config.use_intermediate_goals:
        seen: set[tuple] = set()
        for target in goal.targets:
            for ig in find_intermediate_goals(module, target, solver):
                if ig.alternatives not in seen:
                    seen.add(ig.alternatives)
                    intermediate.append(
                        GoalSpec(ig.alternatives, f"ig:{ig.variable}")
                    )
    final = GoalSpec(goal.targets, "final")
    # Warm the distance tables so search-phase timing is pure search.
    for spec in intermediate + [final]:
        for ref in spec.refs:
            distances.instruction_distance(ref, ref)
    static_seconds = time.monotonic() - static_started

    policy = _build_policy(module, goal, config)
    executor = Executor(
        module,
        solver=solver,
        env=SymbolicEnv(config.string_size, config.max_args),
        policy=policy,
        config=ExecConfig(string_size=config.string_size, max_args=config.max_args),
    )
    searcher = ProximityGuidedSearcher(
        distances,
        intermediate,
        final,
        seed=config.seed,
        prune_unreachable=config.prune_unreachable,
        use_schedule_distance=config.use_schedule_distance,
    )
    _wire_boost(policy, searcher)

    outcome = explore(
        executor, searcher, executor.initial_state(), goal.matches, config.budget
    )
    return _result_from_outcome(module, goal, outcome, executor, static_seconds,
                                len(intermediate))


def _build_policy(
    module: ir.Module, goal: SynthesisGoal, config: ESDConfig
) -> SchedulerPolicy:
    multithreaded = any(
        isinstance(instr, ir.ThreadCreate)
        for func in module.functions.values()
        for _, instr in func.iter_instructions()
    )
    if not multithreaded:
        return SchedulerPolicy()
    policies: list[SchedulerPolicy] = [
        DeadlockSchedulePolicy(
            goal.inner_lock_refs, fork_at_unlock=config.fork_at_unlock
        )
    ]
    if goal.bug_class == "race" or config.with_race_detection:
        policies.append(
            RaceSchedulePolicy(RaceDetector(), gate_function=goal.gate_function)
        )
    if len(policies) == 1:
        return policies[0]
    return ChainedPolicy(*policies)


def _wire_boost(policy: SchedulerPolicy, searcher: ProximityGuidedSearcher) -> None:
    if isinstance(policy, DeadlockSchedulePolicy):
        policy.boost = searcher.boost
    elif isinstance(policy, ChainedPolicy):
        for sub in policy.policies:
            if isinstance(sub, DeadlockSchedulePolicy):
                sub.boost = searcher.boost


def _result_from_outcome(
    module: ir.Module,
    goal: SynthesisGoal,
    outcome: SearchOutcome,
    executor: Executor,
    static_seconds: float,
    intermediate_count: int,
) -> SynthesisResult:
    execution_file = None
    if outcome.found:
        assert outcome.goal_state is not None
        execution_file = execution_file_from_state(
            module.name,
            outcome.goal_state,
            executor.solver,
            synthesis_seconds=static_seconds + outcome.stats.seconds,
            instructions_explored=outcome.stats.instructions,
        )
    return SynthesisResult(
        found=outcome.found,
        reason=outcome.reason,
        goal=goal,
        execution_file=execution_file,
        goal_state=outcome.goal_state,
        static_seconds=static_seconds,
        search_seconds=outcome.stats.seconds,
        instructions=outcome.stats.instructions,
        states_explored=outcome.stats.states_explored,
        other_bugs=len(outcome.other_bugs),
        intermediate_goal_count=intermediate_count,
    )
