"""The ESD synthesis driver: bug report in, execution file out.

Pipeline (paper sections 2-4):

1. extract the goal <B, C> from the coredump;
2. static phase: build the inter-procedural CFG and distance tables, find
   critical edges and intermediate goals;
3. dynamic phase: proximity-guided multi-threaded symbolic execution with the
   bug-class-specific scheduling strategy (deadlock snapshots / race
   preemptions);
4. solve the winning state's constraints and emit the execution file.

The static phase (step 2) depends only on the module and the goal targets,
not on the individual report, so a stream of reports against one program can
share it.  :class:`StaticAnalysisCache` holds those artifacts -- the
:class:`~repro.analysis.DistanceCalculator` and the intermediate-goal specs
keyed by goal target -- and :func:`esd_synthesize` accepts one via
``statics=``; :class:`repro.api.ReproSession` keeps a cache per module and
threads it through every call, which is how batch synthesis amortizes static
analysis (paper section 8's service usage model).

Searchers and bug-class schedule policies are no longer hard-wired here:
they are looked up by name in :mod:`repro.api.registry`, so a new bug class
or search strategy is a plugin registration away.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Optional

from .. import ir
from ..analysis import (
    DistanceCalculator,
    DistanceSource,
    GoalGatedDistances,
    find_intermediate_goals,
)
from ..concurrency import ChainedPolicy
from ..coredump import BugReport
from ..search import (
    EventCallback,
    GoalSpec,
    SearchBudget,
    SearchOutcome,
    StopPredicate,
    explore_frontier,
)
from ..solver import Solver
from ..symbex import ExecConfig, Executor, SchedulerPolicy, SymbolicEnv
from ..symbex.state import ExecutionState
from .execfile import ExecutionFile, execution_file_from_state
from .goals import SynthesisGoal, extract_goal


@dataclass(slots=True)
class ESDConfig:
    """Knobs for synthesis; the ablation benchmarks flip the ESD-specific
    focusing techniques off one at a time."""

    budget: SearchBudget = field(default_factory=lambda: SearchBudget(
        max_instructions=20_000_000, max_states=500_000, max_seconds=180.0,
    ))
    seed: int = 0
    string_size: int = 8
    max_args: int = 4
    # State-selection strategy, looked up in repro.api.registry ('esd' is the
    # paper's proximity-guided search; 'dfs'/'bfs'/'random-path' are the KC
    # baselines; plugins may register more).
    strategy: str = "esd"
    # Focusing techniques (paper section 3.3/3.4):
    use_intermediate_goals: bool = True
    prune_unreachable: bool = True
    use_schedule_distance: bool = True
    # Schedule synthesis:
    fork_at_unlock: bool = True
    with_race_detection: bool = False
    # Static pruning (abstract interpretation + lockset analysis): answer
    # provably-infeasible branch/bounds/divisor probes without the solver
    # and fork unlock preemptions only inside statically-nested lock
    # windows.  Off by default: it is the technique bench_static.py
    # measures, and the byte-identical-artifact invariant is asserted
    # there rather than assumed everywhere.
    use_static_pruning: bool = False

    def to_dict(self) -> dict:
        """JSON form (used by exploration checkpoints)."""
        return {
            "budget": {
                "max_instructions": self.budget.max_instructions,
                "max_states": self.budget.max_states,
                "max_seconds": self.budget.max_seconds,
                "batch_instructions": self.budget.batch_instructions,
            },
            "seed": self.seed,
            "string_size": self.string_size,
            "max_args": self.max_args,
            "strategy": self.strategy,
            "use_intermediate_goals": self.use_intermediate_goals,
            "prune_unreachable": self.prune_unreachable,
            "use_schedule_distance": self.use_schedule_distance,
            "fork_at_unlock": self.fork_at_unlock,
            "with_race_detection": self.with_race_detection,
            "use_static_pruning": self.use_static_pruning,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ESDConfig":
        budget = data.get("budget", {})
        return cls(
            budget=SearchBudget(
                max_instructions=budget.get("max_instructions", 20_000_000),
                max_states=budget.get("max_states", 500_000),
                max_seconds=budget.get("max_seconds", 180.0),
                batch_instructions=budget.get("batch_instructions", 64),
            ),
            seed=data.get("seed", 0),
            string_size=data.get("string_size", 8),
            max_args=data.get("max_args", 4),
            strategy=data.get("strategy", "esd"),
            use_intermediate_goals=data.get("use_intermediate_goals", True),
            prune_unreachable=data.get("prune_unreachable", True),
            use_schedule_distance=data.get("use_schedule_distance", True),
            fork_at_unlock=data.get("fork_at_unlock", True),
            with_race_detection=data.get("with_race_detection", False),
            use_static_pruning=data.get("use_static_pruning", False),
        )


@dataclass(slots=True)
class StaticStats:
    """Counters for the static-phase cache (the test spy for amortization)."""

    distance_builds: int = 0
    goal_computes: int = 0
    cache_hits: int = 0
    # Static-pipeline artifacts (PR 6): each counts *builds*, so a stream
    # of reports against one module should leave them at 1.
    absint_builds: int = 0
    lock_builds: int = 0
    slice_builds: int = 0
    # Goal-directed reachability artifacts (PR 7).  Summaries are
    # per-module (1 per module); reach/wp are per distinct goal target set.
    summary_builds: int = 0
    reach_builds: int = 0
    wp_builds: int = 0


class StaticAnalysisCache:
    """Per-module static-phase artifacts, built once and reused.

    Thread-safe: portfolio synthesis runs several variants concurrently
    against one cache.
    """

    def __init__(self, module: ir.Module) -> None:
        self.module = module
        self.stats = StaticStats()
        self._lock = threading.RLock()
        self._distances: Optional[DistanceCalculator] = None
        self._goal_specs: dict[tuple, tuple[GoalSpec, ...]] = {}
        self._warmed: set = set()
        self._absint = None
        self._concurrency = None
        self._slices: dict[tuple, object] = {}
        self._summaries = None
        self._reach: dict[tuple, object] = {}
        self._wp: dict[tuple, object] = {}

    def distances(self) -> DistanceCalculator:
        with self._lock:
            if self._distances is None:
                self._distances = DistanceCalculator(self.module)
                self.stats.distance_builds += 1
            return self._distances

    def absint_facts(self):
        """Abstract-interpretation facts (built once per module).

        Returns :class:`repro.analysis.absint.ModuleFacts`; consult its
        ``pruning_sound`` property before feeding it to an executor.
        """
        from ..analysis.absint import ModuleFacts, analyze_module

        with self._lock:
            if self._absint is None:
                self._absint = analyze_module(self.module)
                self.stats.absint_builds += 1
            facts: ModuleFacts = self._absint
            return facts

    def concurrency_facts(self):
        """Lockset / lock-order facts (:class:`repro.analysis.locks.ConcurrencyFacts`)."""
        from ..analysis.locks import ConcurrencyFacts, analyze_locks

        with self._lock:
            if self._concurrency is None:
                self._concurrency = analyze_locks(self.module)
                self.stats.lock_builds += 1
            facts: ConcurrencyFacts = self._concurrency
            return facts

    def crash_slice(self, report: BugReport):
        """The backward slice from this report's crash site, memoized by
        criterion (distinct reports against one module often share one)."""
        from ..analysis.slice import slice_for_report

        key = (
            repr(report.coredump.fault_ref),
            report.coredump.fault_line,
            tuple(
                (t.top.function, t.top.line)
                for t in report.coredump.blocked_threads()
                if t.top is not None
            ),
        )
        with self._lock:
            if key not in self._slices:
                self._slices[key] = slice_for_report(self.module, report)
                self.stats.slice_builds += 1
            return self._slices[key]

    def summaries(self):
        """Compositional function summaries (:class:`repro.analysis.summaries.ModuleSummaries`)."""
        from ..analysis.summaries import ModuleSummaries, summarize_module

        with self._lock:
            if self._summaries is None:
                self._summaries = summarize_module(self.module)
                self.stats.summary_builds += 1
            summaries: ModuleSummaries = self._summaries
            return summaries

    def reachability(self, targets: tuple):
        """Goal-directed may-reach set for one goal target tuple
        (:class:`repro.analysis.reach.GoalReach`), memoized per target set."""
        from ..analysis.reach import GoalReach, compute_reach

        facts = self.absint_facts()
        with self._lock:
            cached = self._reach.get(targets)
            if cached is None:
                cached = compute_reach(self.module, list(targets), facts)
                self._reach[targets] = cached
                self.stats.reach_builds += 1
            reach: GoalReach = cached
            return reach

    def necessary_conditions(self, targets: tuple):
        """Backward necessary preconditions for one goal target tuple
        (:class:`repro.analysis.wp.NecessaryConditions`), memoized per set."""
        from ..analysis.wp import NecessaryConditions, compute_necessary_conditions

        facts = self.absint_facts()
        summaries = self.summaries()
        reach = self.reachability(targets)
        with self._lock:
            cached = self._wp.get(targets)
            if cached is None:
                cached = compute_necessary_conditions(
                    self.module, list(targets), facts, summaries, reach
                )
                self._wp[targets] = cached
                self.stats.wp_builds += 1
            conditions: NecessaryConditions = cached
            return conditions

    def intermediate_goal_specs(
        self, goal: SynthesisGoal, solver: Solver, *, static_eval: bool = False
    ) -> tuple[GoalSpec, ...]:
        """The disjunctive intermediate-goal specs for a goal's targets,
        computed once per distinct target set and flag value.

        ``static_eval`` lets the derivation answer pinned-constant
        feasibility probes from the abstract interpreter's constant domain
        instead of the solver, and filter out defining blocks the
        interpreter proved unreachable -- the filter can shrink the spec
        set, so the memo key includes the flag.
        """
        key = (goal.targets, static_eval)
        with self._lock:
            cached = self._goal_specs.get(key)
            if cached is not None:
                self.stats.cache_hits += 1
                return cached
            specs: list[GoalSpec] = []
            seen: set[tuple] = set()
            for target in goal.targets:
                for ig in find_intermediate_goals(
                    self.module, target, solver, static_eval=static_eval
                ):
                    if ig.alternatives not in seen:
                        seen.add(ig.alternatives)
                        specs.append(GoalSpec(ig.alternatives, f"ig:{ig.variable}"))
            result = tuple(specs)
            self._goal_specs[key] = result
            self.stats.goal_computes += 1
            return result

    def warm(self, specs: Iterable[GoalSpec]) -> None:
        """Build the per-goal distance tables up front so search-phase timing
        is pure search; repeat calls for the same refs are no-ops.

        The lock is held across the builds: a concurrent caller must not see
        a ref marked warm before its table exists, or its static/search time
        split would be wrong (the table would be built lazily mid-search).
        """
        distances = self.distances()
        with self._lock:
            for spec in specs:
                for ref in spec.refs:
                    if ref in self._warmed:
                        continue
                    distances.instruction_distance(ref, ref)
                    self._warmed.add(ref)


@dataclass(slots=True)
class SynthesisResult:
    found: bool
    reason: str
    goal: SynthesisGoal
    execution_file: Optional[ExecutionFile]
    goal_state: Optional[ExecutionState]
    static_seconds: float
    search_seconds: float
    instructions: int
    states_explored: int
    other_bugs: int
    intermediate_goal_count: int = 0
    # States the searcher dropped at INF distance (goal-gated proximity).
    states_pruned: int = 0
    # The executor's necessary-precondition counters (None when the
    # goal-directed layer was off or unsound for this module).
    static_prune: Optional[object] = None

    @property
    def total_seconds(self) -> float:
        return self.static_seconds + self.search_seconds


@dataclass(slots=True)
class SearchSetup:
    """Everything the dynamic phase needs, built once per (module, report,
    config) triple.  :func:`esd_synthesize` uses it inline; the parallel
    exploration pool builds one per worker process."""

    goal: "SynthesisGoal"
    executor: Executor
    searcher: object
    policy: SchedulerPolicy
    intermediate_count: int
    static_seconds: float


def build_search_setup(
    module: ir.Module,
    report: BugReport,
    config: Optional[ESDConfig] = None,
    *,
    statics: Optional[StaticAnalysisCache] = None,
    solver: Optional[Solver] = None,
    seed_offset: int = 0,
    tracer=None,
    flight=None,
) -> SearchSetup:
    """Run the static phase and wire up executor/searcher/policy.

    ``seed_offset`` perturbs the searcher's RNG seed (each parallel worker
    gets a distinct stream so sibling shards do not mirror each other's
    queue choices).  ``tracer`` (a :class:`repro.obs.Tracer`) wraps the
    call in a ``phase:static`` span and is handed to the executor's
    solver owner for query attribution; timing stays in the trace, never
    in the returned setup or any artifact derived from it.  ``flight``
    (a :class:`repro.obs.FlightRecorder`) is attached to the executor
    the same way; like the tracer it only observes, so recorded runs
    stay byte-identical to unrecorded ones.
    """
    config = config or ESDConfig()
    if statics is None:
        statics = StaticAnalysisCache(module)
    elif statics.module is not module:
        raise ValueError(
            f"statics cache was built for module {statics.module.name!r}, "
            f"not {module.name!r}; a recompiled (e.g. patched) program needs "
            f"a fresh cache/session"
        )
    span = (tracer.begin("phase:static", "phase")
            if tracer is not None and tracer.enabled else None)
    try:
        setup = _build_search_setup_timed(
            module, report, config, statics=statics, solver=solver,
            seed_offset=seed_offset,
        )
        if span is not None:
            setup.executor.tracer = tracer
        if flight is not None and flight.enabled:
            setup.executor.flight = flight
        return setup
    finally:
        if span is not None:
            tracer.finish(span)


def _build_search_setup_timed(
    module: ir.Module,
    report: BugReport,
    config: ESDConfig,
    *,
    statics: StaticAnalysisCache,
    solver: Optional[Solver],
    seed_offset: int,
) -> SearchSetup:
    # Resolve the strategy before paying for the static phase, so a typo'd
    # name fails fast (lazy import: the registry layers above core).
    from ..api.registry import get_searcher

    searcher_factory = get_searcher(config.strategy)
    goal = extract_goal(module, report)

    static_started = time.monotonic()
    distances = statics.distances()
    if solver is None:
        solver = Solver()
    intermediate: list[GoalSpec] = []
    if config.use_intermediate_goals:
        intermediate = list(
            statics.intermediate_goal_specs(
                goal, solver, static_eval=config.use_static_pruning
            )
        )
    final = GoalSpec(goal.targets, "final")
    statics.warm(intermediate + [final])
    absint = None
    wp_conditions = None
    search_distances: DistanceSource = distances
    if config.use_static_pruning:
        facts = statics.absint_facts()
        if facts.pruning_sound:
            absint = facts
            # Goal-directed layer: gate the proximity heuristic with the
            # pruned reach set (states that provably cannot reach the goal
            # score INF and are dropped) and hand the executor the
            # necessary preconditions so refuted branch directions skip
            # their feasibility probes.
            reach = statics.reachability(goal.targets)
            search_distances = GoalGatedDistances(distances, reach.blocks)
            wp_conditions = statics.necessary_conditions(goal.targets)
    static_seconds = time.monotonic() - static_started

    policy = _build_policy(module, goal, config, report.bug_type)
    executor = Executor(
        module,
        solver=solver,
        env=SymbolicEnv(config.string_size, config.max_args),
        policy=policy,
        config=ExecConfig(string_size=config.string_size, max_args=config.max_args),
        absint=absint,
        wp=wp_conditions,
    )
    if seed_offset:
        config = replace(config, seed=config.seed + seed_offset)
    searcher = searcher_factory(search_distances, intermediate, final, config)
    _wire_boost(policy, searcher)
    return SearchSetup(
        goal=goal,
        executor=executor,
        searcher=searcher,
        policy=policy,
        intermediate_count=len(intermediate),
        static_seconds=static_seconds,
    )


def esd_synthesize(
    module: ir.Module,
    report: BugReport,
    config: Optional[ESDConfig] = None,
    *,
    statics: Optional[StaticAnalysisCache] = None,
    solver: Optional[Solver] = None,
    on_progress: Optional[EventCallback] = None,
    should_stop: Optional[StopPredicate] = None,
    tracer=None,
    flight=None,
    executor_sink: Optional[Callable[[Executor], None]] = None,
) -> SynthesisResult:
    """Synthesize an execution reproducing the reported bug.

    ``statics`` shares static-phase artifacts across calls (see
    :class:`StaticAnalysisCache`); ``solver`` shares a solver -- and with it
    the structural counterexample cache -- across calls, the way
    :class:`~repro.api.ReproSession` amortizes solves over a stream of
    reports (the solver is reentrant, so portfolio variants may share one
    concurrently); ``on_progress`` observes the explore loop via
    :class:`~repro.search.SynthesisEvent`; ``should_stop`` cancels the
    search cooperatively (outcome reason ``'cancelled'``); ``tracer``
    wraps the whole call in a ``job`` span containing the ``phase:*``
    spans of the static, search, and solve phases; ``executor_sink``
    receives the run's executor once the search ends (found or not), so
    callers tracking cumulative ``ExecStats`` across runs can fold in
    this run's counters before the executor is dropped.
    """
    config = config or ESDConfig()
    job = (tracer.begin(f"synth:{module.name}", "job",
                        {"bug_type": report.bug_type})
           if tracer is not None and tracer.enabled else None)
    result: Optional[SynthesisResult] = None
    try:
        setup = build_search_setup(
            module, report, config, statics=statics, solver=solver,
            tracer=tracer, flight=flight,
        )
        try:
            result = search_from_setup(
                module, setup, config, on_progress=on_progress,
                should_stop=should_stop, tracer=tracer, flight=flight,
            )
            return result
        finally:
            if executor_sink is not None:
                executor_sink(setup.executor)
    finally:
        if job is not None:
            attrs = ({"found": result.found, "reason": result.reason,
                      "instructions": result.instructions,
                      "states": result.states_explored}
                     if result is not None else {})
            tracer.finish(job, attrs)


def search_from_setup(
    module: ir.Module,
    setup: SearchSetup,
    config: Optional[ESDConfig] = None,
    *,
    frontier: Optional[list[ExecutionState]] = None,
    count_frontier: bool = True,
    on_progress: Optional[EventCallback] = None,
    should_stop: Optional[StopPredicate] = None,
    tracer=None,
    flight=None,
) -> SynthesisResult:
    """The dynamic phase alone: explore from a prepared
    :class:`SearchSetup` and package the outcome.

    This is the seam the job service schedules through -- it runs
    :func:`build_search_setup` while a job is in its STATIC state and this
    function while it is SEARCHING, on the same shared caches
    :func:`esd_synthesize` uses inline.  ``frontier`` overrides the start
    states (a checkpoint's restored frontier instead of the initial state);
    ``count_frontier=False`` keeps resumed totals from double-counting
    states that were already counted in the leg that snapshotted them.
    """
    config = config or ESDConfig()
    states = (frontier if frontier is not None
              else [setup.executor.initial_state()])
    span = (tracer.begin("phase:search", "phase")
            if tracer is not None and tracer.enabled else None)
    try:
        outcome = explore_frontier(
            setup.executor,
            setup.searcher,
            states,
            setup.goal.matches,
            config.budget,
            on_event=on_progress,
            should_stop=should_stop,
            count_frontier=count_frontier,
            tracer=tracer,
            flight=flight,
        )
    finally:
        if span is not None:
            tracer.finish(span)
    if flight is not None and flight.enabled:
        flight.totals.update(_flight_totals(outcome, setup))
    return _result_from_outcome(
        module, setup.goal, outcome, setup.executor, setup.static_seconds,
        setup.intermediate_count, setup.searcher, tracer=tracer,
    )


def _flight_totals(outcome: SearchOutcome, setup: SearchSetup) -> dict:
    """Whole-run stats stamped into the flight log after a recorded search.

    ``repro explain`` uses ``states_explored`` as the attribution
    denominator and the solver/pruning counters for subsystem spend; all
    of it lives in the log document, never in synthesis artifacts.
    """
    solver_stats = setup.executor.solver.stats
    prune = setup.executor.prune_stats
    return {
        "states_explored": outcome.stats.states_explored,
        "picks": outcome.stats.picks,
        "instructions": outcome.stats.instructions,
        "search_seconds": round(outcome.stats.seconds, 6),
        "static_seconds": round(setup.static_seconds, 6),
        "states_pruned": int(getattr(setup.searcher, "pruned", 0) or 0),
        "solver_queries": solver_stats.queries,
        "static_answers": solver_stats.static_answers,
        "wp_checks": prune.checks,
        "wp_branch_prunes": prune.branch_prunes,
        "wp_probes_avoided": prune.probes_avoided,
        "wp_state_kills": prune.state_kills,
    }


def _build_policy(
    module: ir.Module, goal: SynthesisGoal, config: ESDConfig, bug_type: str
) -> SchedulerPolicy:
    from ..api.registry import get_bug_class  # lazy: registry layers above core

    # Keyed by the report's bug type, not goal.bug_class: a plugin whose goal
    # extractor reuses a built-in goal shape (so goal.bug_class says 'crash')
    # must still get its own schedule policies.
    policies = get_bug_class(bug_type).build_policies(module, goal, config)
    if not policies:
        return SchedulerPolicy()
    if len(policies) == 1:
        return policies[0]
    return ChainedPolicy(*policies)


def _wire_boost(policy: SchedulerPolicy, searcher) -> None:
    """Connect policies that re-prioritize snapshot states (deadlock's
    'switch to' move) to searchers that support it."""
    boost = getattr(searcher, "boost", None)
    if boost is None:
        return
    subs = policy.policies if isinstance(policy, ChainedPolicy) else [policy]
    for sub in subs:
        if hasattr(sub, "boost"):
            sub.boost = boost


def _result_from_outcome(
    module: ir.Module,
    goal: SynthesisGoal,
    outcome: SearchOutcome,
    executor: Executor,
    static_seconds: float,
    intermediate_count: int,
    searcher: object = None,
    tracer=None,
) -> SynthesisResult:
    execution_file = None
    if outcome.found:
        assert outcome.goal_state is not None
        span = (tracer.begin("phase:solve", "phase")
                if tracer is not None and tracer.enabled else None)
        try:
            execution_file = execution_file_from_state(
                module.name,
                outcome.goal_state,
                executor.solver,
                synthesis_seconds=static_seconds + outcome.stats.seconds,
                instructions_explored=outcome.stats.instructions,
            )
        finally:
            if span is not None:
                tracer.finish(span)
    return SynthesisResult(
        found=outcome.found,
        reason=outcome.reason,
        goal=goal,
        execution_file=execution_file,
        goal_state=outcome.goal_state,
        static_seconds=static_seconds,
        search_seconds=outcome.stats.seconds,
        instructions=outcome.stats.instructions,
        states_explored=outcome.stats.states_explored,
        other_bugs=len(outcome.other_bugs),
        intermediate_goal_count=intermediate_count,
        states_pruned=int(getattr(searcher, "pruned", 0) or 0),
        static_prune=executor.prune_stats if executor.wp is not None else None,
    )
