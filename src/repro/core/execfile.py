"""The synthesized-execution file (paper section 5.1).

Contains everything playback needs: concrete values for all program inputs
(solved from the path constraints) and the thread schedule, in both forms the
paper describes -- happens-before relations between synchronization
operations (allowing parallel playback) and the strict serial schedule (the
exact context-switch points, for serial single-stepping).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from ..ir import InstrRef
from ..solver import Solver
from ..symbex.env import RecordedInputs
from ..schema import canonical_json_bytes, check_schema_version
from ..symbex.state import ExecutionState, Segment

EXECFILE_SCHEMA_VERSION = 1


@dataclass(slots=True)
class HappensBefore:
    """One serialized sync operation; the file stores the total order, and
    playback enforces the per-resource partial order it induces."""

    seq: int
    tid: int
    op: str
    addr: Optional[tuple] = None
    ref: str = ""

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "tid": self.tid,
            "op": self.op,
            "addr": list(self.addr) if self.addr is not None else None,
            "ref": self.ref,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "HappensBefore":
        addr = data.get("addr")
        return cls(
            seq=data["seq"],
            tid=data["tid"],
            op=data["op"],
            addr=tuple(addr) if addr is not None else None,
            ref=data.get("ref", ""),
        )


@dataclass(slots=True)
class ExecutionFile:
    program: str
    inputs: RecordedInputs
    strict_schedule: list[Segment] = field(default_factory=list)
    happens_before: list[HappensBefore] = field(default_factory=list)
    bug_summary: str = ""
    bug_kind: str = ""
    bug_ref: str = ""
    synthesis_seconds: float = 0.0
    instructions_explored: int = 0

    # -- (de)serialization ----------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "format": "esd-execution-file-v1",
            "schema_version": EXECFILE_SCHEMA_VERSION,
            "program": self.program,
            "inputs": self.inputs.to_dict(),
            "strict_schedule": [[s.tid, s.instrs] for s in self.strict_schedule],
            "happens_before": [h.to_dict() for h in self.happens_before],
            "bug_summary": self.bug_summary,
            "bug_kind": self.bug_kind,
            "bug_ref": self.bug_ref,
            "synthesis_seconds": self.synthesis_seconds,
            "instructions_explored": self.instructions_explored,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExecutionFile":
        check_schema_version(data, EXECFILE_SCHEMA_VERSION, "execution file")
        return cls(
            program=data["program"],
            inputs=RecordedInputs.from_dict(data["inputs"]),
            strict_schedule=[Segment(t, n) for t, n in data.get("strict_schedule", [])],
            happens_before=[
                HappensBefore.from_dict(h) for h in data.get("happens_before", [])
            ],
            bug_summary=data.get("bug_summary", ""),
            bug_kind=data.get("bug_kind", ""),
            bug_ref=data.get("bug_ref", ""),
            synthesis_seconds=data.get("synthesis_seconds", 0.0),
            instructions_explored=data.get("instructions_explored", 0),
        )

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ExecutionFile":
        return cls.from_dict(json.loads(Path(path).read_text()))

    def canonical_dict(self) -> dict:
        """The content-addressable form: volatile search provenance --
        wall-clock timing and instructions explored -- is zeroed (it lives
        in the job record instead), so re-synthesizing the same execution
        yields the same digest no matter how much exploration (or static
        pruning) it took to find."""
        data = self.to_dict()
        data["synthesis_seconds"] = 0.0
        data["instructions_explored"] = 0
        return data

    def canonical_bytes(self) -> bytes:
        """Deterministic byte serialization for the artifact store: two
        identical synthesized executions are one stored object."""
        return canonical_json_bytes(self.canonical_dict())

    # -- identity (for bug triage/dedup, paper section 8) -----------------------

    def fingerprint(self) -> tuple:
        """Two synthesized executions with the same fingerprint correspond to
        the same bug (automated dedup)."""
        return (
            self.program,
            self.bug_kind,
            self.bug_ref,
            tuple(self.inputs.stdin),
            tuple(sorted(self.inputs.env.items())),
            tuple(self.inputs.args),
            tuple((s.tid, s.instrs) for s in self.strict_schedule),
        )


def concretize_inputs(state: ExecutionState, solver: Solver) -> RecordedInputs:
    """Solve the goal state's path constraints and produce concrete values
    for every input the execution introduced (paper: "solves the constraints
    ... and computes all the inputs required").

    Unconstrained input variables default to their domain minimum (0), which
    for strings means "empty from here on".
    """
    model = solver.model(state.constraints)
    if model is None:
        raise ValueError("goal state constraints are unsatisfiable")

    def value_of(var) -> int:
        return model.get(var.name, var.lo)

    inputs = RecordedInputs()
    for event in state.input_events:
        if event.kind == "stdin":
            inputs.stdin.append(value_of(event.variables[0]))
        elif event.kind == "env":
            inputs.env[event.key] = _string_from(event.variables, value_of)
        elif event.kind == "arg":
            index = int(event.key)
            while len(inputs.args) < index:
                inputs.args.append("")
            text = _string_from(event.variables, value_of)
            if index == 0:
                continue  # argv[0] is the program name
            inputs.args[index - 1] = text
        elif event.kind == "argc":
            inputs.argc = value_of(event.variables[0])
        elif event.kind == "buffer":
            inputs.buffers[event.key] = [value_of(v) for v in event.variables]
    return inputs


def _string_from(variables, value_of) -> str:
    chars = []
    for var in variables:
        value = value_of(var) & 0xFF
        if value == 0:
            break
        chars.append(chr(value))
    return "".join(chars)


def execution_file_from_state(
    module_name: str,
    state: ExecutionState,
    solver: Solver,
    synthesis_seconds: float = 0.0,
    instructions_explored: int = 0,
) -> ExecutionFile:
    """Build the playback file from a goal state (synthesis step 6)."""
    inputs = concretize_inputs(state, solver)
    happens_before = [
        HappensBefore(e.seq, e.tid, e.op, e.addr, repr(e.ref))
        for e in state.sync_log
    ]
    bug_kind = state.bug.kind.value if state.bug else ""
    bug_ref = repr(state.bug.ref) if state.bug else ""
    return ExecutionFile(
        program=module_name,
        inputs=inputs,
        strict_schedule=state.finish_segments(),
        happens_before=happens_before,
        bug_summary=state.bug.summary() if state.bug else "",
        bug_kind=bug_kind,
        bug_ref=bug_ref,
        synthesis_seconds=synthesis_seconds,
        instructions_explored=instructions_explored,
    )
