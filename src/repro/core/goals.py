"""Goal extraction: from a coredump to search goals <B, C> (paper §3.1).

For each thread in the bug report the goal is a tuple ``<B, C>``: the basic
block (here: exact instruction) where the failure was detected, plus a
condition on program state that held when the bug manifested.  The extraction
is bug-class specific:

* **crash** -- B is the faulting instruction from the dump; C is the bug kind
  plus fault details (e.g. the dereferenced pointer was NULL, the assert
  condition was false).  A state matches when it crashes at B with the same
  kind.
* **deadlock** -- B (per deadlocked thread) is the lock statement the thread
  blocked on; C is the circular wait.  A state matches when it deadlocks
  with threads blocked at exactly those lock statements.
* **race** -- B is where the *inconsistency* was detected (not where the race
  occurred), handled like a crash; the common-stack-prefix gate function for
  the race scheduler is derived here as well.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .. import ir
from ..concurrency import common_stack_prefix
from ..coredump import BugReport, Coredump
from ..ir import InstrRef
from ..symbex.bugs import BugKind
from ..symbex.state import BLOCKED, ExecutionState

# Crash kinds considered "the same manifestation" for goal matching: a dump
# showing a null dereference matches a synthesized null or wild dereference
# at the same instruction, etc.
_EQUIVALENT_KINDS: dict[BugKind, frozenset[BugKind]] = {
    BugKind.NULL_DEREF: frozenset({BugKind.NULL_DEREF, BugKind.WILD_POINTER}),
    BugKind.WILD_POINTER: frozenset({BugKind.NULL_DEREF, BugKind.WILD_POINTER}),
    BugKind.OUT_OF_BOUNDS: frozenset({BugKind.OUT_OF_BOUNDS}),
    BugKind.USE_AFTER_FREE: frozenset({BugKind.USE_AFTER_FREE}),
    BugKind.INVALID_FREE: frozenset({BugKind.INVALID_FREE, BugKind.DOUBLE_FREE}),
    BugKind.DOUBLE_FREE: frozenset({BugKind.INVALID_FREE, BugKind.DOUBLE_FREE}),
    BugKind.DIV_BY_ZERO: frozenset({BugKind.DIV_BY_ZERO}),
    BugKind.ASSERT_FAIL: frozenset({BugKind.ASSERT_FAIL}),
    BugKind.ABORT: frozenset({BugKind.ABORT}),
    BugKind.INVALID_UNLOCK: frozenset({BugKind.INVALID_UNLOCK}),
}


class GoalError(Exception):
    """The coredump does not contain enough information for this bug type."""


@dataclass(slots=True)
class SynthesisGoal:
    """The executable form of <B, C>: target locations plus a matcher."""

    bug_class: str  # 'crash' | 'deadlock' | 'race'
    targets: tuple[InstrRef, ...]  # B, per thread for deadlocks
    kinds: frozenset[BugKind] = frozenset()
    fault_value: Optional[int] = None
    inner_lock_refs: frozenset[InstrRef] = frozenset()
    gate_function: Optional[str] = None
    description: str = ""
    # Reported per-thread stacks (outermost-first function names), used by
    # heuristics and diagnostics.
    report_stacks: list[list[str]] = field(default_factory=list)

    def matches(self, state: ExecutionState) -> bool:
        if state.status != "bug" or state.bug is None:
            return False
        if self.bug_class == "deadlock":
            return self._matches_deadlock(state)
        return self._matches_crash(state)

    def _matches_crash(self, state: ExecutionState) -> bool:
        bug = state.bug
        assert bug is not None
        if self.kinds and bug.kind not in self.kinds:
            return False
        return bug.ref in self.targets

    def _matches_deadlock(self, state: ExecutionState) -> bool:
        bug = state.bug
        assert bug is not None
        if bug.kind is not BugKind.DEADLOCK:
            return False
        blocked = {
            thread.pc
            for thread in state.threads.values()
            if thread.status == BLOCKED
            and thread.blocked_on is not None
            and thread.blocked_on[0] in ("mutex", "cond")
        }
        return set(self.targets) <= blocked


def extract_goal(module: ir.Module, report: BugReport) -> SynthesisGoal:
    """Compute the synthesis goal from a bug report (``esdsynth`` step 1)."""
    dump = report.coredump
    if dump.corrupted:
        # The ghttpd case: reconstruct the smashed call stack from the call
        # graph before extracting anything (paper section 8's automated
        # stack reconstruction).
        from ..coredump import repair_stack

        dump = repair_stack(dump, module)
    if report.bug_type == "deadlock":
        return _deadlock_goal(module, dump)
    if report.bug_type in ("crash", "race"):
        return _crash_goal(module, dump, report.bug_type)
    # Bug classes the core does not know may be registered as plugins with
    # their own goal extractor (lazy import: the registry layers above core).
    from ..api.registry import find_bug_class

    plugin = find_bug_class(report.bug_type)
    if plugin is not None and plugin.extract is not None:
        return plugin.extract(module, report)
    raise GoalError(f"unknown bug type {report.bug_type!r}")


def _crash_goal(module: ir.Module, dump: Coredump, bug_class: str) -> SynthesisGoal:
    if dump.fault_ref is None:
        raise GoalError("coredump has no faulting instruction")
    _check_ref(module, dump.fault_ref)
    kinds = (
        _EQUIVALENT_KINDS.get(dump.bug_kind, frozenset({dump.bug_kind}))
        if dump.bug_kind is not None else frozenset()
    )
    stacks = [t.functions_outermost_first() for t in dump.threads]
    gate = None
    if bug_class == "race" and len(stacks) > 1:
        prefix = common_stack_prefix(
            [t.functions_outermost_first() for t in dump.threads if t.tid != 0]
            or stacks
        )
        gate = prefix[-1] if prefix else None
    return SynthesisGoal(
        bug_class=bug_class,
        targets=(dump.fault_ref,),
        kinds=kinds,
        fault_value=dump.fault_value,
        gate_function=gate,
        description=f"{dump.bug_kind.value if dump.bug_kind else 'crash'}"
        f" at {dump.fault_ref} (line {dump.fault_line})",
        report_stacks=stacks,
    )


def _deadlock_goal(module: ir.Module, dump: Coredump) -> SynthesisGoal:
    """B per thread: the sync statement in the last frame of each blocked
    thread's call stack (the thread's *inner lock*)."""
    targets: list[InstrRef] = []
    for thread in dump.blocked_threads():
        if thread.blocked_kind not in ("mutex", "cond"):
            continue
        top = thread.top
        if top is None:
            continue
        ref = _sync_ref_at(module, top.ref)
        if ref is not None:
            targets.append(ref)
    if not targets:
        raise GoalError("no blocked threads with sync frames in the coredump")
    stacks = [t.functions_outermost_first() for t in dump.threads]
    return SynthesisGoal(
        bug_class="deadlock",
        targets=tuple(sorted(set(targets))),
        kinds=frozenset({BugKind.DEADLOCK}),
        inner_lock_refs=frozenset(targets),
        description="deadlock with threads blocked at "
        + ", ".join(str(t) for t in sorted(set(targets))),
        report_stacks=stacks,
    )


def _sync_ref_at(module: ir.Module, ref: InstrRef) -> Optional[InstrRef]:
    """The blocked thread's top frame points at (or just past) the blocking
    sync instruction; normalize to the sync instruction itself."""
    func = module.functions.get(ref.function)
    if func is None:
        return None
    block = func.blocks.get(ref.block)
    if block is None:
        return None
    for index in (ref.index, ref.index - 1):
        if 0 <= index <= len(block.instrs):
            instr = block.instruction_at(index)
            if isinstance(instr, (ir.MutexLock, ir.CondWait)):
                return InstrRef(ref.function, ref.block, index)
    return None


def _check_ref(module: ir.Module, ref: InstrRef) -> None:
    func = module.functions.get(ref.function)
    if func is None or ref.block not in func.blocks:
        raise GoalError(f"coredump references unknown location {ref}")
