"""ESD's core: goal extraction, the synthesis driver, execution files, triage."""

from .execfile import (
    ExecutionFile,
    HappensBefore,
    concretize_inputs,
    execution_file_from_state,
)
from .goals import GoalError, SynthesisGoal, extract_goal
from .synthesis import (
    ESDConfig,
    SearchSetup,
    StaticAnalysisCache,
    StaticStats,
    SynthesisResult,
    build_search_setup,
    esd_synthesize,
    search_from_setup,
)
from .triage import TriageDatabase, TriageEntry, same_bug

__all__ = [
    "ESDConfig",
    "ExecutionFile",
    "GoalError",
    "HappensBefore",
    "SearchSetup",
    "StaticAnalysisCache",
    "StaticStats",
    "SynthesisGoal",
    "SynthesisResult",
    "TriageDatabase",
    "TriageEntry",
    "build_search_setup",
    "concretize_inputs",
    "esd_synthesize",
    "execution_file_from_state",
    "extract_goal",
    "same_bug",
    "search_from_setup",
]
