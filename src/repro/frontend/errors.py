"""Diagnostics for the Python frontend.

Every failure names the offending construct and carries the exact source
position (1-based line, 0-based column, matching CPython's ``ast`` fields).
The contract is strict: a program either compiles with Python-faithful
semantics or is rejected here -- the frontend never miscompiles a construct
it only half-understands.
"""

from __future__ import annotations

import ast as pyast


class FrontendError(Exception):
    """Base class for Python-frontend compilation failures."""

    def __init__(self, message: str, line: int = 0, col: int = 0) -> None:
        if line:
            location = f"line {line}:{col}" if col else f"line {line}"
            super().__init__(f"{location}: {message}")
        else:
            super().__init__(message)
        self.line = line
        self.col = col


class UnsupportedPythonError(FrontendError):
    """The source uses Python outside the supported subset.

    The message always names the AST node class and, where it helps, the
    reason the construct cannot be mapped onto the ESD IR faithfully.
    """

    @classmethod
    def for_node(cls, node: pyast.AST, why: str = "") -> "UnsupportedPythonError":
        kind = type(node).__name__
        message = f"unsupported Python construct {kind}"
        if why:
            message += f" ({why})"
        return cls(
            message,
            getattr(node, "lineno", 0),
            getattr(node, "col_offset", 0),
        )


class PythonCompileError(FrontendError):
    """The construct is in the subset but the program is ill-formed
    (unknown name, arity mismatch, duplicate definition, ...)."""
