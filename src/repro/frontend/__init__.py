"""Real-Python frontend: compile a practical Python subset to the ESD IR.

``compile_python_source`` is the entry point; it either produces a verified
IR module with Python-faithful semantics or raises a precise
:class:`UnsupportedPythonError` / :class:`PythonCompileError` -- it never
miscompiles a construct it only partially understands.
"""

from .compiler import compile_python_source
from .errors import FrontendError, PythonCompileError, UnsupportedPythonError

__all__ = [
    "FrontendError",
    "PythonCompileError",
    "UnsupportedPythonError",
    "compile_python_source",
]
