"""Real-Python frontend: compile a practical subset of Python to the ESD IR.

The frontend parses actual Python with the stdlib ``ast`` module and lowers
it with the same pre-mem2reg discipline as the MiniC compiler
(``repro.lang.compiler``): every variable is memory-resident (one ``alloca``
per local, ``Load``/``Store`` per access), expression temporaries are fresh
virtual registers, and boolean contexts compile to short-circuit control
flow.  Everything downstream -- the symbolic executor, the static analyses,
the proximity-guided search, playback, localization and the repair grammar
-- runs unchanged on compiled Python.

Supported subset (see README "Python frontend" for the full table):

* module-level: ``import threading/os/sys``, integer/bool constant globals,
  fixed-size integer list globals (``[c] * N`` or literals),
  ``lock = threading.Lock()``, function definitions, an ignored
  ``if __name__ == "__main__":`` block;
* functions: positional parameters, locals, ``global``, ``if``/``elif``/
  ``else``, ``while``, ``for i in range(...)`` (constant step),
  ``break``/``continue``/``return``, ``assert``, ``pass``, calls,
  ``with lock:``, augmented assignment;
* expressions: int/bool constants, ``+ - * // % << >> & | ^``, unary
  ``- ~ not``, comparisons (including chains over re-evaluable operands),
  ``and``/``or`` in test position (and in value position when every operand
  is boolean-valued), list subscripts with Python negative-index semantics
  where the length is statically known, ``len``, ``print``, ``os.getenv``,
  ``sys.exit``, ``lock.acquire()/release()``, ``threading.Thread(target=f,
  args=(x,))`` + ``t.start()/t.join()``;
* semantics fidelity: ``//`` and ``%`` are floor division (the IR's native
  ``/``/``%`` are C-truncating, so the frontend emits the adjustment
  sequence), chained comparisons evaluate middle operands once, ``range``
  loop variables keep their last body value after the loop.

Documented subset limits (not silent divergences -- each is either rejected
or stated in README): integers wrap at 32 bits, negative indexing of
unknown-length buffers (parameters, ``os.getenv`` results) traps as an
out-of-bounds access, a missing environment variable reads as a zero-filled
buffer rather than ``None``, and reading a local before assignment yields 0
instead of ``UnboundLocalError``.

Anything else raises :class:`UnsupportedPythonError` naming the node and
its exact source position -- the frontend never miscompiles.
"""

from __future__ import annotations

import ast as pyast
from dataclasses import dataclass
from typing import Optional

from .. import ir
from .errors import PythonCompileError, UnsupportedPythonError

_ALLOWED_IMPORTS = {"threading", "os", "sys"}

_BINOP_MAP = {
    pyast.Add: "+",
    pyast.Sub: "-",
    pyast.Mult: "*",
    pyast.LShift: "<<",
    pyast.RShift: ">>",
    pyast.BitAnd: "&",
    pyast.BitOr: "|",
    pyast.BitXor: "^",
}

_CMP_MAP = {
    pyast.Eq: "==",
    pyast.NotEq: "!=",
    pyast.Lt: "<",
    pyast.LtE: "<=",
    pyast.Gt: ">",
    pyast.GtE: ">=",
}


@dataclass(slots=True)
class _Symbol:
    name: str
    kind: str  # 'scalar' | 'array' | 'mutex'
    address: ir.Value  # Reg holding the alloca address, or GlobalRef
    size: Optional[int] = None  # element count when statically known


@dataclass(slots=True)
class _PendingThread:
    target: str  # module-level function name
    arg_slot: ir.Reg  # alloca holding the (already evaluated) argument


def compile_python_source(source: str, name: str = "module") -> ir.Module:
    """Compile Python ``source`` into a verified IR module.

    The program must define a zero-argument ``main`` function (the process
    entry point, mirroring C).  Constructs outside the supported subset
    raise :class:`UnsupportedPythonError` with the node name and position.
    """
    try:
        tree = pyast.parse(source)
    except SyntaxError as exc:
        raise PythonCompileError(
            f"syntax error: {exc.msg}", exc.lineno or 0, (exc.offset or 1) - 1
        ) from exc
    module = _PyCompiler(tree, source, name).compile()
    ir.verify_module(module)
    return module


class _PyCompiler:
    def __init__(self, tree: pyast.Module, source: str, name: str) -> None:
        self._tree = tree
        self._module = ir.Module(name)
        self._module.source_lines = source.splitlines()
        self._globals: dict[str, _Symbol] = {}
        self._imports: set[str] = set()
        self._func_defs: dict[str, pyast.FunctionDef] = {}
        # Per-function state:
        self._func: Optional[ir.Function] = None
        self._block: Optional[ir.BasicBlock] = None
        self._locals: dict[str, _Symbol] = {}
        self._global_decls: set[str] = set()
        self._threads: dict[str, _PendingThread] = {}
        self._temp_counter = 0
        self._label_counter = 0
        # (break_label, continue_label, with_depth at loop entry)
        self._loop_stack: list[tuple[str, str, int]] = []
        self._with_stack: list[ir.Value] = []  # held lock addresses

    # -- top level -----------------------------------------------------------

    def compile(self) -> ir.Module:
        body = list(self._tree.body)
        for stmt in body:
            if isinstance(stmt, pyast.FunctionDef):
                self._scan_function_def(stmt)
        for stmt in body:
            self._compile_module_stmt(stmt)
        if "main" not in self._module.functions:
            raise PythonCompileError("program must define a main() function")
        return self._module

    def _scan_function_def(self, node: pyast.FunctionDef) -> None:
        if node.name in self._func_defs:
            raise PythonCompileError(
                f"duplicate function {node.name!r}", node.lineno, node.col_offset
            )
        args = node.args
        if args.vararg or args.kwarg or args.kwonlyargs or args.posonlyargs:
            raise UnsupportedPythonError.for_node(
                node, "only plain positional parameters are supported"
            )
        if args.defaults or args.kw_defaults:
            raise UnsupportedPythonError.for_node(
                node, "parameter defaults are not supported"
            )
        if node.decorator_list:
            raise UnsupportedPythonError.for_node(
                node, "decorators are not supported"
            )
        self._func_defs[node.name] = node

    def _compile_module_stmt(self, stmt: pyast.stmt) -> None:
        if isinstance(stmt, pyast.FunctionDef):
            self._compile_function(stmt)
            return
        if isinstance(stmt, pyast.Import):
            for alias in stmt.names:
                if alias.name not in _ALLOWED_IMPORTS or alias.asname:
                    raise UnsupportedPythonError.for_node(
                        stmt,
                        f"cannot import {alias.name!r}; only plain "
                        f"'import {'/'.join(sorted(_ALLOWED_IMPORTS))}'",
                    )
                self._imports.add(alias.name)
            return
        if isinstance(stmt, pyast.ImportFrom):
            raise UnsupportedPythonError.for_node(
                stmt, "use 'import threading' style imports"
            )
        if isinstance(stmt, pyast.Assign):
            self._compile_global_assign(stmt)
            return
        if isinstance(stmt, pyast.Expr) and isinstance(stmt.value, pyast.Constant) \
                and isinstance(stmt.value.value, str):
            return  # module docstring
        if isinstance(stmt, pyast.If) and self._is_main_guard(stmt.test):
            return  # the CPython-side driver block; the IR entry is main()
        raise UnsupportedPythonError.for_node(
            stmt, "not supported at module level"
        )

    @staticmethod
    def _is_main_guard(test: pyast.expr) -> bool:
        return (
            isinstance(test, pyast.Compare)
            and isinstance(test.left, pyast.Name)
            and test.left.id == "__name__"
            and len(test.ops) == 1
            and isinstance(test.ops[0], pyast.Eq)
            and len(test.comparators) == 1
            and isinstance(test.comparators[0], pyast.Constant)
            and test.comparators[0].value == "__main__"
        )

    def _compile_global_assign(self, stmt: pyast.Assign) -> None:
        if len(stmt.targets) != 1 or not isinstance(stmt.targets[0], pyast.Name):
            raise UnsupportedPythonError.for_node(
                stmt, "module-level assignment must bind a single name"
            )
        name = stmt.targets[0].id
        if name in self._globals or name in self._func_defs:
            raise PythonCompileError(
                f"duplicate global {name!r}", stmt.lineno, stmt.col_offset
            )
        value = stmt.value
        if self._is_lock_call(value):
            self._module.add_global(ir.GlobalVar(name, 1, is_mutex=True))
            self._globals[name] = _Symbol(name, "mutex", ir.GlobalRef(name))
            return
        cells = self._constant_list(value)
        if cells is not None:
            self._module.add_global(ir.GlobalVar(name, len(cells), list(cells)))
            self._globals[name] = _Symbol(
                name, "array", ir.GlobalRef(name), len(cells)
            )
            return
        const = self._constant_int(value)
        if const is not None:
            self._module.add_global(ir.GlobalVar(name, 1, [const]))
            self._globals[name] = _Symbol(name, "scalar", ir.GlobalRef(name))
            return
        raise UnsupportedPythonError.for_node(
            value,
            "module-level values must be int/bool constants, constant lists, "
            "or threading.Lock()",
        )

    def _is_lock_call(self, node: pyast.expr) -> bool:
        return (
            isinstance(node, pyast.Call)
            and not node.args and not node.keywords
            and isinstance(node.func, pyast.Attribute)
            and node.func.attr == "Lock"
            and isinstance(node.func.value, pyast.Name)
            and node.func.value.id == "threading"
        )

    def _constant_int(self, node: pyast.expr) -> Optional[int]:
        if isinstance(node, pyast.Constant):
            if isinstance(node.value, bool):
                return int(node.value)
            if isinstance(node.value, int):
                return node.value
            return None
        if isinstance(node, pyast.UnaryOp) and isinstance(node.op, pyast.USub):
            inner = self._constant_int(node.operand)
            return -inner if inner is not None else None
        return None

    def _constant_list(self, node: pyast.expr) -> Optional[list[int]]:
        """``[c1, c2, ...]`` or ``[c] * N`` with compile-time constants."""
        if isinstance(node, pyast.List):
            cells = [self._constant_int(e) for e in node.elts]
            if any(c is None for c in cells):
                return None
            return [c for c in cells if c is not None]
        if isinstance(node, pyast.BinOp) and isinstance(node.op, pyast.Mult):
            for lst, count in ((node.left, node.right), (node.right, node.left)):
                if isinstance(lst, pyast.List) and len(lst.elts) == 1:
                    fill = self._constant_int(lst.elts[0])
                    n = self._constant_int(count)
                    if fill is not None and n is not None and n > 0:
                        return [fill] * n
        return None

    # -- functions -----------------------------------------------------------

    def _compile_function(self, node: pyast.FunctionDef) -> None:
        params = [a.arg for a in node.args.args]
        self._func = self._module.function(node.name, params)
        self._locals = {}
        self._global_decls = set()
        self._threads = {}
        self._temp_counter = 0
        self._label_counter = 0
        self._loop_stack = []
        self._with_stack = []
        self._block = self._func.block("entry")

        assigned = self._scan_locals(node)
        for param in params:
            if param in self._globals:
                # Shadowing a module global with a parameter is legal Python
                # but a reliable source of reader confusion; keep it out of
                # the subset rather than risk misreading intent.
                raise UnsupportedPythonError.for_node(
                    node, f"parameter {param!r} shadows a module-level name"
                )
            symbol = self._declare_local(param, node.lineno)
            self._emit(ir.Store(symbol.address, ir.Reg(param), line=node.lineno))
        for name in assigned:
            if name not in self._locals:
                self._declare_local(name, node.lineno)

        body = node.body
        if body and isinstance(body[0], pyast.Expr) \
                and isinstance(body[0].value, pyast.Constant) \
                and isinstance(body[0].value.value, str):
            body = body[1:]  # docstring
        self._compile_body(body)
        if self._block is not None and not self._block.terminated:
            self._emit(ir.Ret(ir.Const(0), line=node.lineno))
        self._func = None

    def _scan_locals(self, node: pyast.FunctionDef) -> list[str]:
        """Python scoping: a name assigned anywhere in the function (and not
        declared ``global``) is local to the whole function."""
        declared_global: set[str] = set()
        assigned: list[str] = []

        def note(name: str) -> None:
            if name not in declared_global and name not in assigned:
                assigned.append(name)

        for stmt in pyast.walk(node):
            if isinstance(stmt, pyast.Global):
                declared_global.update(stmt.names)
        self._global_decls = declared_global
        for stmt in pyast.walk(node):
            if isinstance(stmt, pyast.Assign):
                for target in stmt.targets:
                    if isinstance(target, pyast.Name):
                        note(target.id)
            elif isinstance(stmt, pyast.AugAssign):
                if isinstance(stmt.target, pyast.Name):
                    note(stmt.target.id)
            elif isinstance(stmt, pyast.For):
                if isinstance(stmt.target, pyast.Name):
                    note(stmt.target.id)
        params = {a.arg for a in node.args.args}
        return [n for n in assigned if n not in params]

    # -- plumbing ------------------------------------------------------------

    def _emit(self, instr: ir.Instr) -> None:
        assert self._block is not None
        if self._block.terminated:
            self._block = self._new_block("dead")
        self._block.append(instr)

    def _temp(self) -> ir.Reg:
        self._temp_counter += 1
        return ir.Reg(f"t{self._temp_counter}")

    def _new_label(self, hint: str) -> str:
        self._label_counter += 1
        return f"{hint}{self._label_counter}"

    def _new_block(self, hint: str) -> ir.BasicBlock:
        assert self._func is not None
        return self._func.block(self._new_label(hint))

    def _switch_to(self, block: ir.BasicBlock) -> None:
        self._block = block

    def _declare_local(self, name: str, line: int) -> _Symbol:
        addr = ir.Reg(f"{name}.addr")
        self._emit(ir.Alloc(addr, ir.Const(1), heap=False, name=name, line=line))
        symbol = _Symbol(name, "scalar", addr)
        self._locals[name] = symbol
        return symbol

    def _lookup(self, name: str, node: pyast.AST) -> _Symbol:
        symbol = self._locals.get(name)
        if symbol is None:
            symbol = self._globals.get(name)
        if symbol is None:
            raise PythonCompileError(
                f"undefined variable {name!r}",
                getattr(node, "lineno", 0), getattr(node, "col_offset", 0),
            )
        return symbol

    def _unwind_withs(self, depth: int, line: int) -> None:
        """Release ``with`` locks entered past ``depth`` (for early exits)."""
        for lock_addr in reversed(self._with_stack[depth:]):
            self._emit(ir.MutexUnlock(lock_addr, line=line))

    # -- statements ----------------------------------------------------------

    def _compile_body(self, stmts: list[pyast.stmt]) -> None:
        for stmt in stmts:
            self._compile_statement(stmt)

    def _compile_statement(self, stmt: pyast.stmt) -> None:
        if isinstance(stmt, pyast.Assign):
            self._compile_assign(stmt)
        elif isinstance(stmt, pyast.AugAssign):
            self._compile_aug_assign(stmt)
        elif isinstance(stmt, pyast.Global):
            for name in stmt.names:
                if name not in self._globals:
                    raise PythonCompileError(
                        f"global declaration for unknown module name {name!r}",
                        stmt.lineno, stmt.col_offset,
                    )
        elif isinstance(stmt, pyast.Expr):
            self._compile_expr_stmt(stmt)
        elif isinstance(stmt, pyast.If):
            self._compile_if(stmt)
        elif isinstance(stmt, pyast.While):
            self._compile_while(stmt)
        elif isinstance(stmt, pyast.For):
            self._compile_for(stmt)
        elif isinstance(stmt, pyast.With):
            self._compile_with(stmt)
        elif isinstance(stmt, pyast.Assert):
            self._compile_assert(stmt)
        elif isinstance(stmt, pyast.Return):
            value = (
                self._compile_test_value(stmt.value)
                if stmt.value is not None and not self._is_none(stmt.value)
                else ir.Const(0)
            )
            self._unwind_withs(0, stmt.lineno)
            self._emit(ir.Ret(value, line=stmt.lineno))
        elif isinstance(stmt, pyast.Break):
            if not self._loop_stack:
                raise PythonCompileError(
                    "break outside loop", stmt.lineno, stmt.col_offset
                )
            break_label, _, depth = self._loop_stack[-1]
            self._unwind_withs(depth, stmt.lineno)
            self._emit(ir.Br(break_label, line=stmt.lineno))
        elif isinstance(stmt, pyast.Continue):
            if not self._loop_stack:
                raise PythonCompileError(
                    "continue outside loop", stmt.lineno, stmt.col_offset
                )
            _, continue_label, depth = self._loop_stack[-1]
            self._unwind_withs(depth, stmt.lineno)
            self._emit(ir.Br(continue_label, line=stmt.lineno))
        elif isinstance(stmt, pyast.Pass):
            pass
        else:
            raise UnsupportedPythonError.for_node(stmt)

    @staticmethod
    def _is_none(node: pyast.expr) -> bool:
        return isinstance(node, pyast.Constant) and node.value is None

    def _compile_assign(self, stmt: pyast.Assign) -> None:
        if len(stmt.targets) != 1:
            raise UnsupportedPythonError.for_node(
                stmt, "chained assignment is not supported"
            )
        target = stmt.targets[0]
        if isinstance(target, pyast.Name):
            self._compile_assign_name(target, stmt.value, stmt)
            return
        if isinstance(target, pyast.Subscript):
            value = self._compile_test_value(stmt.value)
            addr = self._subscript_address(target)
            self._emit(ir.Store(addr, value, line=stmt.lineno))
            return
        raise UnsupportedPythonError.for_node(
            target, "assignment target must be a name or a list subscript"
        )

    def _compile_assign_name(
        self, target: pyast.Name, value: pyast.expr, stmt: pyast.stmt
    ) -> None:
        name = target.id
        if self._is_thread_call(value):
            self._compile_thread_create(name, value, stmt)
            return
        if self._is_lock_call(value):
            raise UnsupportedPythonError.for_node(
                value, "locks must be created at module level"
            )
        symbol = self._assign_symbol(name, stmt)
        created = self._compile_list_create(name, value)
        if created is not None:
            base, size = created
            self._emit(ir.Store(symbol.address, base, line=stmt.lineno))
            symbol.size = size
            return
        compiled = self._compile_test_value(value)
        self._emit(ir.Store(symbol.address, compiled, line=stmt.lineno))
        # Propagate static list lengths through pointer copies.
        symbol.size = None
        if isinstance(value, pyast.Name):
            src = self._locals.get(value.id) or self._globals.get(value.id)
            if src is not None:
                symbol.size = src.size

    def _assign_symbol(self, name: str, stmt: pyast.stmt) -> _Symbol:
        if name in self._locals:
            return self._locals[name]
        symbol = self._globals.get(name)
        if symbol is None:
            raise PythonCompileError(
                f"assignment to undeclared name {name!r}",
                stmt.lineno, stmt.col_offset,
            )
        if name not in self._global_decls:
            raise PythonCompileError(
                f"assignment to module-level {name!r} without a global "
                "declaration", stmt.lineno, stmt.col_offset,
            )
        if symbol.kind != "scalar":
            raise UnsupportedPythonError.for_node(
                stmt, f"cannot rebind module-level {symbol.kind} {name!r}"
            )
        return symbol

    def _compile_list_create(
        self, name: str, value: pyast.expr
    ) -> Optional[tuple[ir.Value, int]]:
        """``xs = [e1, ...]`` / ``xs = [fill] * N``: a fresh fixed-size
        stack array per evaluation (matching Python's fresh-list semantics);
        returns (base address, length)."""
        elements: Optional[list[pyast.expr]] = None
        fill: Optional[pyast.expr] = None
        count = 0
        if isinstance(value, pyast.List):
            elements = value.elts
            count = len(elements)
        elif isinstance(value, pyast.BinOp) and isinstance(value.op, pyast.Mult):
            for lst, n_node in ((value.left, value.right),
                                (value.right, value.left)):
                if isinstance(lst, pyast.List) and len(lst.elts) == 1:
                    n = self._constant_int(n_node)
                    if n is None:
                        raise UnsupportedPythonError.for_node(
                            value, "list replication count must be a constant"
                        )
                    if n <= 0:
                        raise UnsupportedPythonError.for_node(
                            value, "list replication count must be positive"
                        )
                    fill = lst.elts[0]
                    count = n
                    break
            else:
                return None
        else:
            return None
        if count == 0:
            raise UnsupportedPythonError.for_node(
                value, "empty lists are not supported"
            )
        line = value.lineno
        self._label_counter += 1
        base = ir.Reg(f"{name}.data{self._label_counter}")
        self._emit(ir.Alloc(base, ir.Const(count), heap=False,
                            name=f"{name}.data", line=line))
        if elements is not None:
            values = [self._compile_test_value(e) for e in elements]
        else:
            assert fill is not None
            values = [self._compile_test_value(fill)] * count
        for offset, cell in enumerate(values):
            addr = self._temp()
            self._emit(ir.Gep(addr, base, ir.Const(offset), line=line))
            self._emit(ir.Store(addr, cell, line=line))
        return base, count

    def _compile_aug_assign(self, stmt: pyast.AugAssign) -> None:
        op = _BINOP_MAP.get(type(stmt.op))
        floor = isinstance(stmt.op, (pyast.FloorDiv, pyast.Mod))
        if op is None and not floor:
            raise UnsupportedPythonError.for_node(
                stmt, f"augmented {type(stmt.op).__name__} is not supported"
            )
        if isinstance(stmt.target, pyast.Name):
            symbol = self._assign_symbol(stmt.target.id, stmt)
            addr: ir.Value = symbol.address
        elif isinstance(stmt.target, pyast.Subscript):
            addr = self._subscript_address(stmt.target)
        else:
            raise UnsupportedPythonError.for_node(stmt.target)
        current = self._temp()
        self._emit(ir.Load(current, addr, line=stmt.lineno))
        rhs = self._compile_test_value(stmt.value)
        if floor:
            quotient, remainder = self._emit_floor_divmod(
                current, rhs, stmt.lineno
            )
            result = quotient if isinstance(stmt.op, pyast.FloorDiv) else remainder
        else:
            result = self._temp()
            self._emit(ir.BinOp(result, op, current, rhs, line=stmt.lineno))
        self._emit(ir.Store(addr, result, line=stmt.lineno))

    def _compile_expr_stmt(self, stmt: pyast.Expr) -> None:
        value = stmt.value
        if isinstance(value, pyast.Constant) and isinstance(value.value, str):
            return  # stray docstring
        if not isinstance(value, pyast.Call):
            raise UnsupportedPythonError.for_node(
                value, "expression statements must be calls"
            )
        self._compile_call(value, want_value=False)

    def _compile_assert(self, stmt: pyast.Assert) -> None:
        cond = self._compile_test_value(stmt.test)
        if stmt.msg is not None:
            if not (isinstance(stmt.msg, pyast.Constant)
                    and isinstance(stmt.msg.value, str)):
                raise UnsupportedPythonError.for_node(
                    stmt.msg, "assert message must be a string literal"
                )
            message = stmt.msg.value
        else:
            message = self._module.source_line(stmt.lineno).strip() \
                or f"assert at line {stmt.lineno}"
        self._emit(ir.Assert(cond, message, line=stmt.lineno))

    def _compile_if(self, stmt: pyast.If) -> None:
        then_block = self._new_block("if.then")
        end_block = self._new_block("if.end")
        else_block = self._new_block("if.else") if stmt.orelse else end_block
        self._compile_condition(stmt.test, then_block.label, else_block.label)

        self._switch_to(then_block)
        self._compile_body(stmt.body)
        if self._block is not None and not self._block.terminated:
            self._emit(ir.Br(end_block.label, line=stmt.lineno))

        if stmt.orelse:
            self._switch_to(else_block)
            self._compile_body(stmt.orelse)
            if self._block is not None and not self._block.terminated:
                self._emit(ir.Br(end_block.label, line=stmt.lineno))

        self._switch_to(end_block)

    def _compile_while(self, stmt: pyast.While) -> None:
        if stmt.orelse:
            raise UnsupportedPythonError.for_node(
                stmt, "while/else is not supported"
            )
        head = self._new_block("while.head")
        body = self._new_block("while.body")
        end = self._new_block("while.end")
        self._emit(ir.Br(head.label, line=stmt.lineno))
        self._switch_to(head)
        self._compile_condition(stmt.test, body.label, end.label)
        self._switch_to(body)
        self._loop_stack.append((end.label, head.label, len(self._with_stack)))
        self._compile_body(stmt.body)
        self._loop_stack.pop()
        if self._block is not None and not self._block.terminated:
            self._emit(ir.Br(head.label, line=stmt.lineno))
        self._switch_to(end)

    def _compile_for(self, stmt: pyast.For) -> None:
        if stmt.orelse:
            raise UnsupportedPythonError.for_node(
                stmt, "for/else is not supported"
            )
        if not isinstance(stmt.target, pyast.Name):
            raise UnsupportedPythonError.for_node(
                stmt.target, "loop target must be a single name"
            )
        call = stmt.iter
        if not (isinstance(call, pyast.Call) and isinstance(call.func, pyast.Name)
                and call.func.id == "range" and not call.keywords
                and 1 <= len(call.args) <= 3):
            raise UnsupportedPythonError.for_node(
                stmt.iter, "for loops must iterate over range(...)"
            )
        line = stmt.lineno
        if len(call.args) == 1:
            start: ir.Value = ir.Const(0)
            stop_expr = call.args[0]
            step = 1
        else:
            start = self._compile_test_value(call.args[0])
            stop_expr = call.args[1]
            step = 1
            if len(call.args) == 3:
                const_step = self._constant_int(call.args[2])
                if const_step is None or const_step == 0:
                    raise UnsupportedPythonError.for_node(
                        call.args[2],
                        "range step must be a non-zero integer constant",
                    )
                step = const_step
        stop = self._compile_test_value(stop_expr)
        # Pin the (once-evaluated) bound in a register that survives blocks.
        self._label_counter += 1
        loop_id = self._label_counter
        stop_reg = ir.Reg(f"{stmt.target.id}.stop{loop_id}")
        self._emit(ir.Assign(stop_reg, stop, line=line))
        # Hidden iterator slot: the loop variable itself only ever holds
        # values the body observed, so it keeps its last value after the
        # loop exactly like Python.
        iter_addr = ir.Reg(f"{stmt.target.id}.iter{loop_id}.addr")
        self._emit(ir.Alloc(iter_addr, ir.Const(1), heap=False,
                            name=f"{stmt.target.id}.iter", line=line))
        self._emit(ir.Store(iter_addr, start, line=line))
        target = self._locals.get(stmt.target.id)
        if target is None:
            target = self._assign_symbol(stmt.target.id, stmt)
        target.size = None

        head = self._new_block("for.head")
        body = self._new_block("for.body")
        step_block = self._new_block("for.step")
        end = self._new_block("for.end")
        self._emit(ir.Br(head.label, line=line))
        self._switch_to(head)
        current = self._temp()
        self._emit(ir.Load(current, iter_addr, line=line))
        in_range = self._temp()
        cmp_op = "<" if step > 0 else ">"
        self._emit(ir.BinOp(in_range, cmp_op, current, stop_reg, line=line))
        self._emit(ir.CondBr(in_range, body.label, end.label, line=line))
        self._switch_to(body)
        visible = self._temp()
        self._emit(ir.Load(visible, iter_addr, line=line))
        self._emit(ir.Store(target.address, visible, line=line))
        self._loop_stack.append(
            (end.label, step_block.label, len(self._with_stack))
        )
        self._compile_body(stmt.body)
        self._loop_stack.pop()
        if self._block is not None and not self._block.terminated:
            self._emit(ir.Br(step_block.label, line=line))
        self._switch_to(step_block)
        bumped_src = self._temp()
        self._emit(ir.Load(bumped_src, iter_addr, line=line))
        bumped = self._temp()
        self._emit(ir.BinOp(bumped, "+", bumped_src, ir.Const(step), line=line))
        self._emit(ir.Store(iter_addr, bumped, line=line))
        self._emit(ir.Br(head.label, line=line))
        self._switch_to(end)

    def _compile_with(self, stmt: pyast.With) -> None:
        if len(stmt.items) != 1:
            raise UnsupportedPythonError.for_node(
                stmt, "one context manager per with statement"
            )
        item = stmt.items[0]
        if item.optional_vars is not None:
            raise UnsupportedPythonError.for_node(
                stmt, "with ... as is not supported"
            )
        if not isinstance(item.context_expr, pyast.Name):
            raise UnsupportedPythonError.for_node(
                item.context_expr, "with expects a module-level lock name"
            )
        symbol = self._lookup(item.context_expr.id, item.context_expr)
        if symbol.kind != "mutex":
            raise UnsupportedPythonError.for_node(
                item.context_expr,
                f"with expects a threading.Lock, not {symbol.kind}",
            )
        self._emit(ir.MutexLock(symbol.address, line=stmt.lineno))
        self._with_stack.append(symbol.address)
        self._compile_body(stmt.body)
        self._with_stack.pop()
        if self._block is not None and not self._block.terminated:
            self._emit(ir.MutexUnlock(symbol.address, line=stmt.lineno))

    # -- conditions ----------------------------------------------------------

    def _compile_condition(
        self, test: pyast.expr, then_label: str, else_label: str
    ) -> None:
        """Boolean context with short-circuiting, like the MiniC frontend.
        Branching on an int tests ``!= 0`` which is exactly Python's
        truthiness for the subset's only value type."""
        if isinstance(test, pyast.BoolOp):
            values = test.values
            if isinstance(test.op, pyast.And):
                for value in values[:-1]:
                    middle = self._new_block("and.rhs")
                    self._compile_condition(value, middle.label, else_label)
                    self._switch_to(middle)
                self._compile_condition(values[-1], then_label, else_label)
                return
            for value in values[:-1]:
                middle = self._new_block("or.rhs")
                self._compile_condition(value, then_label, middle.label)
                self._switch_to(middle)
            self._compile_condition(values[-1], then_label, else_label)
            return
        if isinstance(test, pyast.UnaryOp) and isinstance(test.op, pyast.Not):
            self._compile_condition(test.operand, else_label, then_label)
            return
        if isinstance(test, pyast.Compare) and len(test.ops) > 1:
            self._compile_chained_compare_condition(test, then_label, else_label)
            return
        value = self._compile_expr(test)
        self._emit(ir.CondBr(value, then_label, else_label, line=test.lineno))

    def _compile_chained_compare_condition(
        self, test: pyast.Compare, then_label: str, else_label: str
    ) -> None:
        """``a < b < c`` desugars to ``a < b and b < c``.  Middle operands
        must be re-evaluable (names or constants) so the desugaring cannot
        duplicate side effects."""
        for middle_operand in test.comparators[:-1]:
            if not isinstance(middle_operand, (pyast.Name, pyast.Constant)):
                raise UnsupportedPythonError.for_node(
                    middle_operand,
                    "chained comparison operands must be names or constants",
                )
        operands = [test.left, *test.comparators]
        for i, op in enumerate(test.ops):
            last = i == len(test.ops) - 1
            target = then_label if last else self._new_label("chain")
            pair = pyast.Compare(
                left=operands[i], ops=[op], comparators=[operands[i + 1]],
                lineno=test.lineno, col_offset=test.col_offset,
            )
            if last:
                value = self._compile_expr(pair)
                self._emit(
                    ir.CondBr(value, then_label, else_label, line=test.lineno)
                )
            else:
                assert self._func is not None
                middle = self._func.block(target)
                value = self._compile_expr(pair)
                self._emit(
                    ir.CondBr(value, middle.label, else_label, line=test.lineno)
                )
                self._switch_to(middle)

    def _compile_test_value(self, expr: pyast.expr) -> ir.Value:
        """An expression in value position.  Boolean operators are lowered
        through control flow to 0/1, which is only faithful when every
        operand is itself boolean-valued (Python's ``and``/``or`` return an
        *operand*, not a bool) -- anything else is rejected."""
        if isinstance(expr, pyast.BoolOp):
            if not self._all_boolean_valued(expr):
                raise UnsupportedPythonError.for_node(
                    expr,
                    "and/or in value position requires boolean operands; "
                    "Python would return an operand value here",
                )
            return self._compile_short_circuit_value(expr)
        if isinstance(expr, pyast.Compare) and len(expr.ops) > 1:
            return self._compile_short_circuit_value(expr)
        return self._compile_expr(expr)

    def _all_boolean_valued(self, expr: pyast.expr) -> bool:
        if isinstance(expr, pyast.BoolOp):
            return all(self._all_boolean_valued(v) for v in expr.values)
        if isinstance(expr, pyast.UnaryOp):
            return isinstance(expr.op, pyast.Not)
        if isinstance(expr, pyast.Compare):
            return True
        return isinstance(expr, pyast.Constant) and isinstance(expr.value, bool)

    def _compile_short_circuit_value(self, expr: pyast.expr) -> ir.Value:
        self._label_counter += 1
        result = ir.Reg(f"sc{self._label_counter}.{self._temp_counter}")
        true_block = self._new_block("sc.true")
        false_block = self._new_block("sc.false")
        end_block = self._new_block("sc.end")
        self._compile_condition(expr, true_block.label, false_block.label)
        self._switch_to(true_block)
        self._emit(ir.Assign(result, ir.Const(1), line=expr.lineno))
        self._emit(ir.Br(end_block.label, line=expr.lineno))
        self._switch_to(false_block)
        self._emit(ir.Assign(result, ir.Const(0), line=expr.lineno))
        self._emit(ir.Br(end_block.label, line=expr.lineno))
        self._switch_to(end_block)
        return result

    # -- expressions ---------------------------------------------------------

    def _compile_expr(self, expr: pyast.expr) -> ir.Value:
        if isinstance(expr, pyast.Constant):
            if isinstance(expr.value, bool):
                return ir.Const(int(expr.value))
            if isinstance(expr.value, int):
                return ir.Const(expr.value)
            raise UnsupportedPythonError.for_node(
                expr, f"{type(expr.value).__name__} literals are not supported"
            )
        if isinstance(expr, pyast.Name):
            return self._compile_name(expr)
        if isinstance(expr, pyast.UnaryOp):
            return self._compile_unary(expr)
        if isinstance(expr, pyast.BinOp):
            return self._compile_binop(expr)
        if isinstance(expr, pyast.Compare):
            return self._compile_compare(expr)
        if isinstance(expr, pyast.BoolOp):
            return self._compile_test_value(expr)
        if isinstance(expr, pyast.Subscript):
            addr = self._subscript_address(expr)
            dst = self._temp()
            self._emit(ir.Load(dst, addr, line=expr.lineno))
            return dst
        if isinstance(expr, pyast.Call):
            return self._compile_call(expr, want_value=True)
        raise UnsupportedPythonError.for_node(expr)

    def _compile_name(self, expr: pyast.Name) -> ir.Value:
        name = expr.id
        if name in self._func_defs and name not in self._locals:
            return ir.FuncRef(name)
        if name in self._imports:
            raise UnsupportedPythonError.for_node(
                expr, f"module {name!r} cannot be used as a value"
            )
        symbol = self._lookup(name, expr)
        if symbol.kind in ("array", "mutex"):
            return symbol.address  # arrays decay; locks are opaque
        dst = self._temp()
        self._emit(ir.Load(dst, symbol.address, line=expr.lineno))
        return dst

    def _compile_unary(self, expr: pyast.UnaryOp) -> ir.Value:
        if isinstance(expr.op, pyast.Not):
            operand = self._compile_expr(expr.operand)
            dst = self._temp()
            self._emit(ir.UnOp(dst, "!", operand, line=expr.lineno))
            return dst
        if isinstance(expr.op, pyast.USub):
            operand = self._compile_expr(expr.operand)
            if isinstance(operand, ir.Const):
                return ir.Const(-operand.value)
            dst = self._temp()
            self._emit(ir.UnOp(dst, "-", operand, line=expr.lineno))
            return dst
        if isinstance(expr.op, pyast.Invert):
            operand = self._compile_expr(expr.operand)
            dst = self._temp()
            self._emit(ir.UnOp(dst, "~", operand, line=expr.lineno))
            return dst
        if isinstance(expr.op, pyast.UAdd):
            return self._compile_expr(expr.operand)
        raise UnsupportedPythonError.for_node(expr)

    def _compile_binop(self, expr: pyast.BinOp) -> ir.Value:
        if isinstance(expr.op, (pyast.FloorDiv, pyast.Mod)):
            lhs = self._compile_expr(expr.left)
            rhs = self._compile_expr(expr.right)
            quotient, remainder = self._emit_floor_divmod(lhs, rhs, expr.lineno)
            return quotient if isinstance(expr.op, pyast.FloorDiv) else remainder
        if isinstance(expr.op, pyast.Div):
            raise UnsupportedPythonError.for_node(
                expr, "true division yields floats; use // for integers"
            )
        op = _BINOP_MAP.get(type(expr.op))
        if op is None:
            raise UnsupportedPythonError.for_node(
                expr, f"operator {type(expr.op).__name__} is not supported"
            )
        lhs = self._compile_expr(expr.left)
        rhs = self._compile_expr(expr.right)
        dst = self._temp()
        self._emit(ir.BinOp(dst, op, lhs, rhs, line=expr.lineno))
        return dst

    def _emit_floor_divmod(
        self, lhs: ir.Value, rhs: ir.Value, line: int
    ) -> tuple[ir.Reg, ir.Reg]:
        """Python ``//`` and ``%`` floor toward negative infinity; the IR's
        ``/`` and ``%`` truncate toward zero (C semantics).  Adjust by one
        when the truncated remainder is non-zero and disagrees in sign with
        the divisor.  Division by zero traps first, like both languages."""
        trunc_q = self._temp()
        self._emit(ir.BinOp(trunc_q, "/", lhs, rhs, line=line))
        trunc_r = self._temp()
        self._emit(ir.BinOp(trunc_r, "%", lhs, rhs, line=line))
        r_nonzero = self._temp()
        self._emit(ir.BinOp(r_nonzero, "!=", trunc_r, ir.Const(0), line=line))
        r_negative = self._temp()
        self._emit(ir.BinOp(r_negative, "<", trunc_r, ir.Const(0), line=line))
        d_negative = self._temp()
        self._emit(ir.BinOp(d_negative, "<", rhs, ir.Const(0), line=line))
        signs_differ = self._temp()
        self._emit(ir.BinOp(signs_differ, "^", r_negative, d_negative, line=line))
        adjust = self._temp()
        self._emit(ir.BinOp(adjust, "&", r_nonzero, signs_differ, line=line))
        floor_q = self._temp()
        self._emit(ir.BinOp(floor_q, "-", trunc_q, adjust, line=line))
        correction = self._temp()
        self._emit(ir.BinOp(correction, "*", adjust, rhs, line=line))
        floor_r = self._temp()
        self._emit(ir.BinOp(floor_r, "+", trunc_r, correction, line=line))
        return floor_q, floor_r

    def _compile_compare(self, expr: pyast.Compare) -> ir.Value:
        if len(expr.ops) > 1:
            return self._compile_test_value(expr)
        op_type = type(expr.ops[0])
        op = _CMP_MAP.get(op_type)
        if op is None:
            raise UnsupportedPythonError.for_node(
                expr, f"comparison {op_type.__name__} is not supported"
            )
        lhs = self._compile_compare_operand(expr.left)
        rhs = self._compile_compare_operand(expr.comparators[0])
        dst = self._temp()
        self._emit(ir.BinOp(dst, op, lhs, rhs, line=expr.lineno))
        return dst

    def _compile_compare_operand(self, expr: pyast.expr) -> ir.Value:
        # Buffer cells hold character codes, so a one-character literal in a
        # comparison means its code point: s[0] == 'W'.
        if isinstance(expr, pyast.Constant) and isinstance(expr.value, str):
            if len(expr.value) != 1:
                raise UnsupportedPythonError.for_node(
                    expr,
                    "only one-character string literals compare "
                    "(as character codes)",
                )
            return ir.Const(ord(expr.value))
        return self._compile_expr(expr)

    # -- subscripts ----------------------------------------------------------

    def _subscript_address(self, expr: pyast.Subscript) -> ir.Value:
        if not isinstance(expr.value, pyast.Name):
            raise UnsupportedPythonError.for_node(
                expr.value, "subscript base must be a simple name"
            )
        if isinstance(expr.slice, pyast.Slice):
            raise UnsupportedPythonError.for_node(
                expr.slice, "slicing is not supported"
            )
        symbol = self._lookup(expr.value.id, expr.value)
        if symbol.kind == "mutex":
            raise UnsupportedPythonError.for_node(expr, "cannot index a lock")
        if symbol.kind == "array":
            base: ir.Value = symbol.address
        else:
            base = self._temp()
            self._emit(ir.Load(base, symbol.address, line=expr.lineno))
        index = self._compile_expr(expr.slice)
        index = self._normalize_index(index, symbol.size, expr.lineno)
        addr = self._temp()
        self._emit(ir.Gep(addr, base, index, line=expr.lineno))
        return addr

    def _normalize_index(
        self, index: ir.Value, size: Optional[int], line: int
    ) -> ir.Value:
        """Python wraps negative indices: xs[-1] is xs[len(xs)-1].  Emitted
        only when the length is statically known; unknown-length buffers
        (parameters, getenv results) trap negatives as out-of-bounds, which
        is the documented subset limit."""
        if size is None:
            return index
        if isinstance(index, ir.Const):
            if index.value < 0:
                return ir.Const(size + index.value)
            return index
        negative = self._temp()
        self._emit(ir.BinOp(negative, "<", index, ir.Const(0), line=line))
        wrap = self._temp()
        self._emit(ir.BinOp(wrap, "*", negative, ir.Const(size), line=line))
        adjusted = self._temp()
        self._emit(ir.BinOp(adjusted, "+", index, wrap, line=line))
        return adjusted

    # -- calls ---------------------------------------------------------------

    def _is_thread_call(self, node: pyast.expr) -> bool:
        return (
            isinstance(node, pyast.Call)
            and isinstance(node.func, pyast.Attribute)
            and node.func.attr == "Thread"
            and isinstance(node.func.value, pyast.Name)
            and node.func.value.id == "threading"
        )

    def _compile_thread_create(
        self, name: str, call: pyast.Call, stmt: pyast.stmt
    ) -> None:
        if call.args:
            raise UnsupportedPythonError.for_node(
                call, "Thread takes keyword arguments: target=, args="
            )
        target_name: Optional[str] = None
        arg_expr: Optional[pyast.expr] = None
        for kw in call.keywords:
            if kw.arg == "target" and isinstance(kw.value, pyast.Name):
                target_name = kw.value.id
            elif kw.arg == "args" and isinstance(kw.value, pyast.Tuple):
                if len(kw.value.elts) != 1:
                    raise UnsupportedPythonError.for_node(
                        kw.value, "thread args must be a one-element tuple"
                    )
                arg_expr = kw.value.elts[0]
            else:
                raise UnsupportedPythonError.for_node(
                    call, f"unsupported Thread keyword {kw.arg!r}"
                )
        if target_name is None or target_name not in self._func_defs:
            raise UnsupportedPythonError.for_node(
                call, "Thread target must name a module-level function"
            )
        if arg_expr is None:
            raise UnsupportedPythonError.for_node(
                call, "Thread requires args=(value,)"
            )
        params = self._func_defs[target_name].args.args
        if len(params) != 1:
            raise PythonCompileError(
                f"thread target {target_name!r} must take exactly one "
                f"parameter, it takes {len(params)}",
                call.lineno, call.col_offset,
            )
        symbol = self._assign_symbol(name, stmt)
        # Python evaluates the argument at construction; stash it in a
        # dedicated slot until t.start() spawns the thread.
        line = stmt.lineno
        value = self._compile_test_value(arg_expr)
        self._label_counter += 1
        arg_slot = ir.Reg(f"{name}.arg{self._label_counter}.addr")
        self._emit(ir.Alloc(arg_slot, ir.Const(1), heap=False,
                            name=f"{name}.arg", line=line))
        self._emit(ir.Store(arg_slot, value, line=line))
        self._emit(ir.Store(symbol.address, ir.Const(0), line=line))
        self._threads[name] = _PendingThread(target_name, arg_slot)
        symbol.size = None

    def _compile_call(self, call: pyast.Call, want_value: bool) -> ir.Value:
        if call.keywords:
            raise UnsupportedPythonError.for_node(
                call, "keyword arguments are not supported"
            )
        func = call.func
        if isinstance(func, pyast.Name):
            return self._compile_name_call(func.id, call, want_value)
        if isinstance(func, pyast.Attribute):
            return self._compile_attribute_call(func, call)
        raise UnsupportedPythonError.for_node(
            func, "call target must be a name or attribute"
        )

    def _compile_name_call(
        self, name: str, call: pyast.Call, want_value: bool
    ) -> ir.Value:
        line = call.lineno
        if name == "print":
            if len(call.args) != 1:
                raise UnsupportedPythonError.for_node(
                    call, "print takes exactly one argument"
                )
            arg = call.args[0]
            if isinstance(arg, pyast.Constant) and isinstance(arg.value, str):
                ref = ir.GlobalRef(self._module.intern_string(arg.value))
                dst = self._temp()
                self._emit(ir.Intrinsic(dst, "print_str", [ref], line=line))
                return ir.Const(0)
            value = self._compile_test_value(arg)
            dst = self._temp()
            self._emit(ir.Intrinsic(dst, "print_int", [value], line=line))
            return ir.Const(0)
        if name == "len":
            if len(call.args) != 1 or not isinstance(call.args[0], pyast.Name):
                raise UnsupportedPythonError.for_node(
                    call, "len takes one list name"
                )
            symbol = self._lookup(call.args[0].id, call.args[0])
            if symbol.size is None:
                raise UnsupportedPythonError.for_node(
                    call,
                    f"len({call.args[0].id}) is not statically known "
                    "(parameter or buffer)",
                )
            return ir.Const(symbol.size)
        if name == "range":
            raise UnsupportedPythonError.for_node(
                call, "range is only supported as a for-loop iterable"
            )
        if name in self._func_defs and name not in self._locals:
            want = len(self._func_defs[name].args.args)
            if len(call.args) != want:
                raise PythonCompileError(
                    f"{name}() takes {want} arguments, got {len(call.args)}",
                    line, call.col_offset,
                )
            args = [self._compile_test_value(a) for a in call.args]
            dst = self._temp()
            self._emit(ir.Call(dst, ir.FuncRef(name), args, line=line))
            return dst
        raise UnsupportedPythonError.for_node(
            call, f"call to unknown function {name!r}"
        )

    def _compile_attribute_call(
        self, func: pyast.Attribute, call: pyast.Call
    ) -> ir.Value:
        line = call.lineno
        if not isinstance(func.value, pyast.Name):
            raise UnsupportedPythonError.for_node(func)
        owner = func.value.id
        method = func.attr
        if owner == "os" and method == "getenv":
            if len(call.args) != 1 or not (
                isinstance(call.args[0], pyast.Constant)
                and isinstance(call.args[0].value, str)
            ):
                raise UnsupportedPythonError.for_node(
                    call, "os.getenv takes a string literal name"
                )
            ref = ir.GlobalRef(self._module.intern_string(call.args[0].value))
            dst = self._temp()
            self._emit(ir.Intrinsic(dst, "getenv", [ref], line=line))
            return dst
        if owner == "sys" and method == "exit":
            if len(call.args) > 1:
                raise UnsupportedPythonError.for_node(call)
            code = (
                self._compile_test_value(call.args[0])
                if call.args else ir.Const(0)
            )
            dst = self._temp()
            self._emit(ir.Intrinsic(dst, "exit", [code], line=line))
            return ir.Const(0)
        if owner in self._imports:
            raise UnsupportedPythonError.for_node(
                call, f"{owner}.{method} is not supported"
            )
        # Methods on program values: lock.acquire/release, thread.start/join.
        symbol = self._locals.get(owner) or self._globals.get(owner)
        if symbol is not None and symbol.kind == "mutex":
            if call.args:
                raise UnsupportedPythonError.for_node(
                    call, f"{method} takes no arguments"
                )
            if method == "acquire":
                self._emit(ir.MutexLock(symbol.address, line=line))
                return ir.Const(0)
            if method == "release":
                self._emit(ir.MutexUnlock(symbol.address, line=line))
                return ir.Const(0)
            raise UnsupportedPythonError.for_node(
                call, f"lock method {method!r} is not supported"
            )
        if owner in self._threads:
            pending = self._threads[owner]
            thread_symbol = self._locals[owner]
            if call.args:
                raise UnsupportedPythonError.for_node(
                    call, f"{method} takes no arguments"
                )
            if method == "start":
                arg = self._temp()
                self._emit(ir.Load(arg, pending.arg_slot, line=line))
                tid = self._temp()
                self._emit(ir.ThreadCreate(
                    tid, ir.FuncRef(pending.target), arg, line=line
                ))
                self._emit(ir.Store(thread_symbol.address, tid, line=line))
                return ir.Const(0)
            if method == "join":
                tid = self._temp()
                self._emit(ir.Load(tid, thread_symbol.address, line=line))
                dst = self._temp()
                self._emit(ir.ThreadJoin(dst, tid, line=line))
                return ir.Const(0)
            raise UnsupportedPythonError.for_node(
                call, f"thread method {method!r} is not supported"
            )
        raise UnsupportedPythonError.for_node(
            call, f"method call {owner}.{method} is not supported"
        )
